//! Equi-depth histograms — the "improved summary structures" tier of
//! statistics the paper contrasts with (Section 1 cites self-tuning and
//! error-bounded histograms as the classical mitigation for estimation
//! error; the bouquet side-steps them, but the *baselines* deserve a fair
//! estimator).
//!
//! A histogram refines a column's range-selectivity estimates from linear
//! interpolation over `[min, max]` to interpolation within equi-depth
//! buckets, which is exact for any piecewise-uniform data distribution.

use serde::{Deserialize, Serialize};

/// An equi-depth histogram: `bounds` has `buckets + 1` ascending entries;
/// each bucket holds the same fraction of rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    pub bounds: Vec<f64>,
}

impl EquiDepthHistogram {
    /// Build from a sample of values (the engine's data generator or an
    /// external profile). `buckets` must be ≥ 1.
    pub fn from_values(mut values: Vec<f64>, buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let mut bounds = Vec::with_capacity(buckets + 1);
        for b in 0..=buckets {
            let idx = (b * (n - 1)) / buckets;
            bounds.push(values[idx]);
        }
        // Collapse is fine (duplicate bounds = empty-width buckets); keep
        // monotonicity.
        Some(EquiDepthHistogram { bounds })
    }

    /// Build an exact histogram for a uniform distribution over `[lo, hi]`.
    pub fn uniform(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets >= 1 && hi >= lo);
        EquiDepthHistogram {
            bounds: (0..=buckets)
                .map(|b| lo + (hi - lo) * b as f64 / buckets as f64)
                .collect(),
        }
    }

    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Estimated selectivity of `col < c`.
    pub fn lt_selectivity(&self, c: f64) -> f64 {
        let nb = self.buckets() as f64;
        if c <= self.bounds[0] {
            return 0.0;
        }
        if c >= self.bounds[self.buckets()] {
            return 1.0;
        }
        // Find the bucket containing c.
        let mut acc = 0.0;
        for b in 0..self.buckets() {
            let (lo, hi) = (self.bounds[b], self.bounds[b + 1]);
            if c >= hi {
                acc += 1.0;
            } else {
                if hi > lo {
                    acc += (c - lo) / (hi - lo);
                }
                break;
            }
        }
        (acc / nb).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `lo <= col <= hi`.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.lt_selectivity(hi) - self.lt_selectivity(lo)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_matches_linear_interpolation() {
        let h = EquiDepthHistogram::uniform(0.0, 100.0, 10);
        assert!((h.lt_selectivity(25.0) - 0.25).abs() < 1e-12);
        assert!((h.lt_selectivity(99.0) - 0.99).abs() < 1e-12);
        assert_eq!(h.lt_selectivity(-5.0), 0.0);
        assert_eq!(h.lt_selectivity(500.0), 1.0);
    }

    #[test]
    fn skewed_data_beats_linear_interpolation() {
        // 90% of values in [0, 10), 10% in [10, 100).
        let mut values = Vec::new();
        for i in 0..900 {
            values.push(i as f64 / 90.0); // [0, 10)
        }
        for i in 0..100 {
            values.push(10.0 + i as f64 * 0.9); // [10, 100)
        }
        let h = EquiDepthHistogram::from_values(values, 10).unwrap();
        let est = h.lt_selectivity(10.0);
        assert!(
            (est - 0.9).abs() < 0.02,
            "histogram should see the skew: {est}"
        );
        // Linear interpolation over [0,100] would have said 0.1 — off by 9x.
    }

    #[test]
    fn from_values_handles_duplicates_and_small_inputs() {
        let h = EquiDepthHistogram::from_values(vec![5.0; 100], 4).unwrap();
        assert_eq!(h.buckets(), 4);
        assert_eq!(h.lt_selectivity(4.9), 0.0);
        assert_eq!(h.lt_selectivity(5.1), 1.0);
        assert!(EquiDepthHistogram::from_values(vec![], 4).is_none());
        assert!(EquiDepthHistogram::from_values(vec![1.0], 0).is_none());
        let single = EquiDepthHistogram::from_values(vec![1.0], 3).unwrap();
        assert_eq!(single.lt_selectivity(2.0), 1.0);
    }

    #[test]
    fn range_selectivity_is_cdf_difference() {
        let h = EquiDepthHistogram::uniform(0.0, 100.0, 8);
        assert!((h.range_selectivity(20.0, 70.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.range_selectivity(70.0, 20.0), 0.0);
    }

    #[test]
    fn bounds_are_monotone() {
        let vals: Vec<f64> = (0..1000).map(|i| ((i * 37) % 997) as f64).collect();
        let h = EquiDepthHistogram::from_values(vals, 16).unwrap();
        assert!(h.bounds.windows(2).all(|w| w[1] >= w[0]));
    }
}
