//! Synthetic TPC-DS catalog.
//!
//! Cardinalities approximate the TPC-DS specification at the given scale
//! factor (the paper uses SF 100 == 100 GB). The snowflake shape — large fact
//! tables (`store_sales`, `catalog_sales`, `web_sales`) surrounded by
//! dimension tables — is what produces the star/branch join graphs of the
//! paper's DS workload (Table 2).

use crate::schema::Catalog;
use crate::stats::ColumnStats as CS;

/// Build the TPC-DS catalog at scale factor `sf` (100.0 == the paper's 100 GB).
pub fn catalog(sf: f64) -> Catalog {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut c = Catalog::new(format!("tpcds-sf{sf}"));

    // Dimension cardinalities grow sub-linearly in TPC-DS; we use the spec's
    // SF-100 values scaled by sqrt for dimensions and linearly for facts.
    let dim = |base: f64| (base * (sf / 100.0).sqrt()).max(base.min(1000.0));
    let fact = |base: f64| base * sf / 100.0;

    c.add_table(
        "date_dim",
        73_049.0,
        vec![
            ("d_date_sk", CS::uniform(73_049.0, 0.0, 73_048.0), 8),
            ("d_year", CS::uniform(200.0, 1900.0, 2100.0), 8),
            ("d_moy", CS::uniform(12.0, 1.0, 12.0), 8),
            ("d_qoy", CS::uniform(4.0, 1.0, 4.0), 8),
        ],
    );
    c.add_table(
        "item",
        dim(204_000.0),
        vec![
            (
                "i_item_sk",
                CS::uniform(dim(204_000.0), 0.0, dim(204_000.0) - 1.0),
                8,
            ),
            ("i_category", CS::uniform(10.0, 0.0, 9.0), 12),
            ("i_manufact_id", CS::uniform(1_000.0, 0.0, 999.0), 8),
            ("i_brand_id", CS::uniform(1_000.0, 0.0, 999.0), 8),
            ("i_current_price", CS::uniform(100.0, 0.09, 99.99), 8),
        ],
    );
    c.add_table(
        "customer",
        dim(2_000_000.0),
        vec![
            (
                "c_customer_sk",
                CS::uniform(dim(2_000_000.0), 0.0, dim(2_000_000.0) - 1.0),
                8,
            ),
            (
                "c_current_addr_sk",
                CS::uniform(dim(1_000_000.0), 0.0, dim(1_000_000.0) - 1.0),
                8,
            ),
            (
                "c_current_cdemo_sk",
                CS::uniform(dim(1_920_800.0), 0.0, dim(1_920_800.0) - 1.0),
                8,
            ),
            ("c_current_hdemo_sk", CS::uniform(7_200.0, 0.0, 7_199.0), 8),
            ("c_birth_month", CS::uniform(12.0, 1.0, 12.0), 8),
        ],
    );
    c.add_table(
        "customer_address",
        dim(1_000_000.0),
        vec![
            (
                "ca_address_sk",
                CS::uniform(dim(1_000_000.0), 0.0, dim(1_000_000.0) - 1.0),
                8,
            ),
            ("ca_state", CS::uniform(51.0, 0.0, 50.0), 8),
            ("ca_zip", CS::uniform(10_000.0, 0.0, 9_999.0), 8),
            ("ca_gmt_offset", CS::uniform(6.0, -10.0, -5.0), 8),
        ],
    );
    c.add_table(
        "customer_demographics",
        1_920_800.0,
        vec![
            ("cd_demo_sk", CS::uniform(1_920_800.0, 0.0, 1_920_799.0), 8),
            ("cd_gender", CS::uniform(2.0, 0.0, 1.0), 4),
            ("cd_marital_status", CS::uniform(5.0, 0.0, 4.0), 4),
            ("cd_education_status", CS::uniform(7.0, 0.0, 6.0), 12),
        ],
    );
    c.add_table(
        "household_demographics",
        7_200.0,
        vec![
            ("hd_demo_sk", CS::uniform(7_200.0, 0.0, 7_199.0), 8),
            ("hd_dep_count", CS::uniform(10.0, 0.0, 9.0), 8),
            ("hd_buy_potential", CS::uniform(6.0, 0.0, 5.0), 12),
        ],
    );
    c.add_table(
        "store",
        dim(402.0).max(12.0),
        vec![
            (
                "s_store_sk",
                CS::uniform(dim(402.0).max(12.0), 0.0, dim(402.0).max(12.0) - 1.0),
                8,
            ),
            ("s_state", CS::uniform(9.0, 0.0, 8.0), 8),
            ("s_gmt_offset", CS::uniform(6.0, -10.0, -5.0), 8),
        ],
    );
    c.add_table(
        "call_center",
        dim(30.0).max(6.0),
        vec![
            (
                "cc_call_center_sk",
                CS::uniform(dim(30.0).max(6.0), 0.0, dim(30.0).max(6.0) - 1.0),
                8,
            ),
            ("cc_class", CS::uniform(3.0, 0.0, 2.0), 12),
        ],
    );
    c.add_table(
        "warehouse",
        dim(15.0).max(5.0),
        vec![
            (
                "w_warehouse_sk",
                CS::uniform(dim(15.0).max(5.0), 0.0, dim(15.0).max(5.0) - 1.0),
                8,
            ),
            ("w_state", CS::uniform(9.0, 0.0, 8.0), 8),
        ],
    );
    c.add_table(
        "promotion",
        dim(1_000.0).max(300.0),
        vec![
            (
                "p_promo_sk",
                CS::uniform(dim(1_000.0).max(300.0), 0.0, dim(1_000.0).max(300.0) - 1.0),
                8,
            ),
            ("p_channel_email", CS::uniform(2.0, 0.0, 1.0), 4),
        ],
    );
    c.add_table(
        "store_sales",
        fact(288_000_000.0),
        vec![
            ("ss_sold_date_sk", CS::uniform(1_823.0, 0.0, 73_048.0), 8),
            (
                "ss_item_sk",
                CS::uniform(dim(204_000.0), 0.0, dim(204_000.0) - 1.0),
                8,
            ),
            (
                "ss_customer_sk",
                CS::uniform(dim(2_000_000.0), 0.0, dim(2_000_000.0) - 1.0),
                8,
            ),
            ("ss_cdemo_sk", CS::uniform(1_920_800.0, 0.0, 1_920_799.0), 8),
            ("ss_hdemo_sk", CS::uniform(7_200.0, 0.0, 7_199.0), 8),
            (
                "ss_store_sk",
                CS::uniform(dim(402.0).max(12.0), 0.0, dim(402.0).max(12.0) - 1.0),
                8,
            ),
            (
                "ss_promo_sk",
                CS::uniform(dim(1_000.0).max(300.0), 0.0, dim(1_000.0).max(300.0) - 1.0),
                8,
            ),
            ("ss_sales_price", CS::uniform(20_000.0, 0.0, 200.0), 8),
        ],
    );
    c.add_table(
        "catalog_sales",
        fact(144_000_000.0),
        vec![
            ("cs_sold_date_sk", CS::uniform(1_823.0, 0.0, 73_048.0), 8),
            (
                "cs_item_sk",
                CS::uniform(dim(204_000.0), 0.0, dim(204_000.0) - 1.0),
                8,
            ),
            (
                "cs_bill_customer_sk",
                CS::uniform(dim(2_000_000.0), 0.0, dim(2_000_000.0) - 1.0),
                8,
            ),
            (
                "cs_bill_cdemo_sk",
                CS::uniform(1_920_800.0, 0.0, 1_920_799.0),
                8,
            ),
            (
                "cs_call_center_sk",
                CS::uniform(dim(30.0).max(6.0), 0.0, dim(30.0).max(6.0) - 1.0),
                8,
            ),
            (
                "cs_warehouse_sk",
                CS::uniform(dim(15.0).max(5.0), 0.0, dim(15.0).max(5.0) - 1.0),
                8,
            ),
            (
                "cs_promo_sk",
                CS::uniform(dim(1_000.0).max(300.0), 0.0, dim(1_000.0).max(300.0) - 1.0),
                8,
            ),
        ],
    );
    c.add_table(
        "web_sales",
        fact(72_000_000.0),
        vec![
            ("ws_sold_date_sk", CS::uniform(1_823.0, 0.0, 73_048.0), 8),
            (
                "ws_item_sk",
                CS::uniform(dim(204_000.0), 0.0, dim(204_000.0) - 1.0),
                8,
            ),
            (
                "ws_bill_customer_sk",
                CS::uniform(dim(2_000_000.0), 0.0, dim(2_000_000.0) - 1.0),
                8,
            ),
            ("ws_web_page_sk", CS::uniform(2_040.0, 0.0, 2_039.0), 8),
        ],
    );
    c.add_table(
        "catalog_returns",
        fact(14_400_000.0),
        vec![
            (
                "cr_returned_date_sk",
                CS::uniform(1_823.0, 0.0, 73_048.0),
                8,
            ),
            (
                "cr_item_sk",
                CS::uniform(dim(204_000.0), 0.0, dim(204_000.0) - 1.0),
                8,
            ),
            (
                "cr_returning_customer_sk",
                CS::uniform(dim(2_000_000.0), 0.0, dim(2_000_000.0) - 1.0),
                8,
            ),
        ],
    );

    c.index_everything();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_tables_dominate_dimensions() {
        let c = catalog(100.0);
        let ss = c.table("store_sales").unwrap().rows;
        let item = c.table("item").unwrap().rows;
        assert!(ss > 1000.0 * item);
    }

    #[test]
    fn snowflake_tables_present() {
        let c = catalog(100.0);
        for t in [
            "date_dim",
            "item",
            "customer",
            "customer_address",
            "customer_demographics",
            "household_demographics",
            "store",
            "call_center",
            "warehouse",
            "promotion",
            "store_sales",
            "catalog_sales",
            "web_sales",
            "catalog_returns",
        ] {
            assert!(c.table(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn everything_indexed() {
        let c = catalog(100.0);
        for t in c.tables() {
            assert_eq!(t.indexes.len(), t.columns.len());
        }
    }

    #[test]
    fn dimension_scaling_is_sublinear() {
        let a = catalog(1.0);
        let b = catalog(100.0);
        let ra = a.table("customer").unwrap().rows;
        let rb = b.table("customer").unwrap().rows;
        assert!(rb / ra < 100.0, "customer should scale sublinearly");
        assert!(rb > ra);
    }
}
