//! Statistics-level catalogs for the plan-bouquet reproduction.
//!
//! The bouquet machinery (POSP generation, isocost contours, cost-limited
//! execution) consumes the database only through *statistics*: relation
//! cardinalities, tuple widths, number of distinct values, and index
//! availability. This crate provides those statistics for synthetic
//! renditions of the TPC-H and TPC-DS schemas at arbitrary scale factors,
//! mirroring the environments used in the paper's evaluation (TPC-H at 1 GB,
//! TPC-DS at 100 GB, "indexes on all columns featuring in the queries").
//!
//! The tuple-level engine (`pb-engine`) generates actual rows that conform to
//! these statistics for its end-to-end experiments.

pub mod histogram;
pub mod schema;
pub mod stats;
pub mod tpcds;
pub mod tpch;

pub use histogram::EquiDepthHistogram;
pub use schema::{Catalog, Column, ColumnId, IndexInfo, Table, TableId};
pub use stats::{ColumnStats, Distribution};

/// Default page size used to convert row counts/widths into page counts,
/// matching PostgreSQL's 8 KiB heap pages.
pub const PAGE_SIZE: f64 = 8192.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_default_scale_has_expected_cardinalities() {
        let cat = tpch::catalog(1.0);
        assert_eq!(cat.table("lineitem").unwrap().rows as u64, 6_000_000);
        assert_eq!(cat.table("orders").unwrap().rows as u64, 1_500_000);
        assert_eq!(cat.table("part").unwrap().rows as u64, 200_000);
        assert_eq!(cat.table("region").unwrap().rows as u64, 5);
    }

    #[test]
    fn tpcds_scales_with_factor() {
        let small = tpcds::catalog(1.0);
        let big = tpcds::catalog(100.0);
        let s = small.table("store_sales").unwrap().rows;
        let b = big.table("store_sales").unwrap().rows;
        assert!(b > 50.0 * s, "store_sales should scale: {s} -> {b}");
    }
}
