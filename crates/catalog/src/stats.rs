//! Column statistics used by the cardinality estimator.
//!
//! The native optimizer baseline ("NAT") estimates selectivities from these
//! statistics under the attribute-value-independence (AVI) assumption — the
//! very assumption whose failure the paper exploits to manufacture estimation
//! errors (Section 6.7). The bouquet itself never consumes estimates for
//! error-prone predicates; it only needs the *ranges* of legal selectivities.

use serde::{Deserialize, Serialize};

use crate::histogram::EquiDepthHistogram;

/// Per-column statistics: distinct count, value bounds and a distribution tag
/// that the tuple engine's data generator honours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: f64,
    pub min: f64,
    pub max: f64,
    pub distribution: Distribution,
    /// Fraction of NULLs (kept for completeness; generators emit 0 here).
    pub null_frac: f64,
    /// Optional equi-depth histogram; refines range selectivities when
    /// present (populated by `pb-engine`'s `Database::analyze`).
    pub histogram: Option<EquiDepthHistogram>,
}

/// Value distribution shape for synthetic data generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    Uniform,
    /// Zipfian with the given skew parameter.
    Zipf(f64),
}

impl ColumnStats {
    pub fn uniform(ndv: f64, min: f64, max: f64) -> Self {
        ColumnStats {
            ndv,
            min,
            max,
            distribution: Distribution::Uniform,
            null_frac: 0.0,
            histogram: None,
        }
    }

    pub fn zipf(ndv: f64, min: f64, max: f64, skew: f64) -> Self {
        ColumnStats {
            ndv,
            min,
            max,
            distribution: Distribution::Zipf(skew),
            null_frac: 0.0,
            histogram: None,
        }
    }

    /// Selectivity of `col = constant` under the uniform-frequency assumption
    /// (Selinger's 1/NDV; the paper's "magic number" fallback corresponds to
    /// NDV-less columns where engines assume 1/10).
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv <= 0.0 {
            0.1
        } else {
            (1.0 / self.ndv).min(1.0)
        }
    }

    /// Selectivity of `col < constant`: histogram interpolation when a
    /// histogram is available, otherwise linear interpolation between the
    /// recorded bounds (PostgreSQL's scalarltsel).
    pub fn lt_selectivity(&self, constant: f64) -> f64 {
        if let Some(h) = &self.histogram {
            return h.lt_selectivity(constant);
        }
        if self.max <= self.min {
            return 0.5;
        }
        ((constant - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Range selectivity for `lo <= col <= hi`.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.lt_selectivity(hi) - self.lt_selectivity(lo)).clamp(0.0, 1.0)
    }

    /// Representative probe values for integrating this column's distribution
    /// against another column's CDF: equi-depth bucket midpoints when a
    /// histogram is available (each carries mass `1/buckets`), otherwise
    /// midpoints of a uniform 16-way split of `[min, max]`.
    pub fn probe_points(&self) -> Vec<f64> {
        if let Some(h) = &self.histogram {
            if h.bounds.len() >= 2 {
                return h.bounds.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
            }
        }
        if self.max <= self.min {
            return vec![self.min];
        }
        let n = 16usize;
        let step = (self.max - self.min) / n as f64;
        (0..n).map(|i| self.min + (i as f64 + 0.5) * step).collect()
    }

    /// Selectivity of the inequality join predicate `self < other` (per row
    /// pair): `P(l < r) = E_l[1 - F_r(l)]`, integrated over this column's
    /// equi-depth histogram (uniform fallback) against the other column's
    /// CDF. This is the estimator-side counterpart of the engine's exact
    /// sort-based count and inherits whatever error the histograms carry —
    /// which is exactly what makes inequality-join dimensions error-prone.
    pub fn lt_join_selectivity(&self, other: &ColumnStats) -> f64 {
        let pts = self.probe_points();
        let n = pts.len().max(1) as f64;
        let acc: f64 = pts.iter().map(|&m| 1.0 - other.lt_selectivity(m)).sum();
        (acc / n).clamp(0.0, 1.0)
    }

    /// Selectivity of `self > other`: `P(l > r) = E_l[F_r(l)]`.
    pub fn gt_join_selectivity(&self, other: &ColumnStats) -> f64 {
        let pts = self.probe_points();
        let n = pts.len().max(1) as f64;
        let acc: f64 = pts.iter().map(|&m| other.lt_selectivity(m)).sum();
        (acc / n).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_inverse_ndv() {
        let s = ColumnStats::uniform(200.0, 0.0, 199.0);
        assert!((s.eq_selectivity() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn eq_selectivity_magic_number_without_ndv() {
        let s = ColumnStats::uniform(0.0, 0.0, 0.0);
        assert_eq!(s.eq_selectivity(), 0.1);
    }

    #[test]
    fn lt_selectivity_interpolates_and_clamps() {
        let s = ColumnStats::uniform(100.0, 0.0, 100.0);
        assert!((s.lt_selectivity(25.0) - 0.25).abs() < 1e-12);
        assert_eq!(s.lt_selectivity(-5.0), 0.0);
        assert_eq!(s.lt_selectivity(500.0), 1.0);
    }

    #[test]
    fn range_selectivity_is_difference_of_cdfs() {
        let s = ColumnStats::uniform(100.0, 0.0, 100.0);
        assert!((s.range_selectivity(25.0, 75.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.range_selectivity(75.0, 25.0), 0.0);
    }

    #[test]
    fn histogram_overrides_linear_interpolation() {
        let mut s = ColumnStats::uniform(100.0, 0.0, 100.0);
        // A histogram that concentrates 3/4 of the mass below 10.
        s.histogram = Some(crate::histogram::EquiDepthHistogram {
            bounds: vec![0.0, 3.0, 6.0, 10.0, 100.0],
        });
        assert!((s.lt_selectivity(10.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_bounds_fall_back() {
        let s = ColumnStats::uniform(10.0, 5.0, 5.0);
        assert_eq!(s.lt_selectivity(7.0), 0.5);
    }

    #[test]
    fn lt_join_selectivity_uniform_identical_ranges_is_half() {
        // P(l < r) for two iid uniforms is 1/2; the midpoint integration
        // should land within a bucket-width of that.
        let a = ColumnStats::uniform(1000.0, 0.0, 1000.0);
        let b = ColumnStats::uniform(1000.0, 0.0, 1000.0);
        assert!((a.lt_join_selectivity(&b) - 0.5).abs() < 0.05);
        assert!((a.gt_join_selectivity(&b) - 0.5).abs() < 0.05);
    }

    #[test]
    fn lt_join_selectivity_disjoint_ranges_saturates() {
        let lo = ColumnStats::uniform(100.0, 0.0, 10.0);
        let hi = ColumnStats::uniform(100.0, 100.0, 200.0);
        assert!(lo.lt_join_selectivity(&hi) > 0.99);
        assert!(lo.gt_join_selectivity(&hi) < 0.01);
    }
}
