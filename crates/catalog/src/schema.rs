//! Schema metadata: catalogs, tables, columns, indexes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::stats::ColumnStats;
use crate::PAGE_SIZE;

/// Identifier of a table inside a [`Catalog`]. Stable across catalog rebuilds
/// with the same schema (assigned in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifier of a column inside a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId {
    pub table: TableId,
    pub column: u32,
}

/// Secondary-index metadata. The paper's "hard-nut" physical design places an
/// index on every column that appears in a query, which maximises the cost
/// gradient C_max/C_min across the selectivity space (Section 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexInfo {
    pub column: ColumnId,
    /// Whether the heap is clustered on this index (cheap range scans).
    pub clustered: bool,
    /// B-tree height estimate used by the cost model for lookup costs.
    pub height: u32,
}

/// Column metadata plus optimizer statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub id: ColumnId,
    pub stats: ColumnStats,
    /// Width in bytes, used for page-count and hash/sort memory estimates.
    pub width: u32,
}

/// Table metadata: cardinality, physical layout, columns, indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    pub id: TableId,
    /// Row count as f64 — the simulator works in continuous cardinalities.
    pub rows: f64,
    /// Total tuple width in bytes.
    pub row_width: u32,
    pub columns: Vec<Column>,
    pub indexes: Vec<IndexInfo>,
}

impl Table {
    /// Heap pages occupied by this table.
    pub fn pages(&self) -> f64 {
        (self.rows * self.row_width as f64 / PAGE_SIZE).max(1.0)
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Whether `column` has a secondary index.
    pub fn index_on(&self, column: ColumnId) -> Option<&IndexInfo> {
        self.indexes.iter().find(|ix| ix.column == column)
    }
}

/// A catalog of tables; the simulator's `pg_catalog`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: BTreeMap<String, TableId>,
    /// Human-readable catalog name (e.g. "tpch-sf1").
    pub name: String,
}

impl Catalog {
    pub fn new(name: impl Into<String>) -> Self {
        Catalog {
            tables: Vec::new(),
            by_name: BTreeMap::new(),
            name: name.into(),
        }
    }

    /// Register a table built by `build` against the id this catalog assigns.
    pub fn add_table(
        &mut self,
        name: &str,
        rows: f64,
        columns: Vec<(&str, ColumnStats, u32)>,
    ) -> TableId {
        let id = TableId(self.tables.len() as u32);
        let cols: Vec<Column> = columns
            .into_iter()
            .enumerate()
            .map(|(i, (cname, stats, width))| Column {
                name: cname.to_string(),
                id: ColumnId {
                    table: id,
                    column: i as u32,
                },
                stats,
                width,
            })
            .collect();
        let row_width = cols.iter().map(|c| c.width).sum::<u32>().max(8);
        self.tables.push(Table {
            name: name.to_string(),
            id,
            rows,
            row_width,
            columns: cols,
            indexes: Vec::new(),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Place an unclustered index on `table.column` (the paper's default
    /// physical design indexes every referenced column).
    pub fn add_index(&mut self, table: &str, column: &str) {
        let tid = self.by_name[table];
        let t = &mut self.tables[tid.0 as usize];
        let col = t
            .columns
            .iter()
            .find(|c| c.name == column)
            .unwrap_or_else(|| panic!("no column {table}.{column}"))
            .id;
        let height = (t.rows.max(2.0).log2() / 8.0).ceil().max(1.0) as u32;
        t.indexes.push(IndexInfo {
            column: col,
            clustered: false,
            height,
        });
    }

    /// Index every column of every table — the "hard-nut" configuration.
    pub fn index_everything(&mut self) {
        for t in &mut self.tables {
            let height = (t.rows.max(2.0).log2() / 8.0).ceil().max(1.0) as u32;
            t.indexes = t
                .columns
                .iter()
                .map(|c| IndexInfo {
                    column: c.id,
                    clustered: false,
                    height,
                })
                .collect();
        }
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.by_name.get(name).map(|id| &self.tables[id.0 as usize])
    }

    /// Mutable access to a column's statistics — used by experiments to
    /// simulate *stale* statistics (e.g. NDVs left over from a larger or
    /// differently-distributed database), one of the classical sources of
    /// selectivity estimation error the paper motivates with.
    pub fn column_stats_mut(&mut self, table: &str, column: &str) -> &mut ColumnStats {
        let tid = self.by_name[table];
        let t = &mut self.tables[tid.0 as usize];
        &mut t
            .columns
            .iter_mut()
            .find(|c| c.name == column)
            .unwrap_or_else(|| panic!("no column {table}.{column}"))
            .stats
    }

    pub fn table_by_id(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> Catalog {
        let mut c = Catalog::new("mini");
        c.add_table(
            "t",
            1000.0,
            vec![
                ("a", ColumnStats::uniform(100.0, 0.0, 99.0), 8),
                ("b", ColumnStats::uniform(10.0, 0.0, 9.0), 8),
            ],
        );
        c
    }

    #[test]
    fn add_and_lookup() {
        let c = mini();
        let t = c.table("t").unwrap();
        assert_eq!(t.rows, 1000.0);
        assert_eq!(t.columns.len(), 2);
        assert!(t.column("a").is_some());
        assert!(t.column("zz").is_none());
        assert!(c.table("nope").is_none());
    }

    #[test]
    fn pages_is_at_least_one() {
        let c = mini();
        assert!(c.table("t").unwrap().pages() >= 1.0);
    }

    #[test]
    fn index_everything_covers_all_columns() {
        let mut c = mini();
        c.index_everything();
        let t = c.table("t").unwrap();
        assert_eq!(t.indexes.len(), t.columns.len());
        for col in &t.columns {
            assert!(t.index_on(col.id).is_some());
        }
    }

    #[test]
    fn add_index_single_column() {
        let mut c = mini();
        c.add_index("t", "b");
        let t = c.table("t").unwrap();
        assert_eq!(t.indexes.len(), 1);
        assert_eq!(t.indexes[0].column, t.column("b").unwrap().id);
    }
}
