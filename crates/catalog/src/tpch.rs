//! Synthetic TPC-H catalog.
//!
//! Cardinalities follow the TPC-H specification at the given scale factor
//! (SF 1 == the paper's 1 GB default). Only the columns referenced by the
//! reproduction's query workload are modelled; every one of them is indexed,
//! matching the paper's "indexes on all columns featuring in the queries"
//! physical design.

use crate::schema::Catalog;
use crate::stats::ColumnStats as CS;

/// Build the TPC-H catalog at scale factor `sf` (1.0 == 1 GB).
pub fn catalog(sf: f64) -> Catalog {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut c = Catalog::new(format!("tpch-sf{sf}"));

    c.add_table(
        "region",
        5.0,
        vec![
            ("r_regionkey", CS::uniform(5.0, 0.0, 4.0), 8),
            ("r_name", CS::uniform(5.0, 0.0, 4.0), 26),
        ],
    );
    c.add_table(
        "nation",
        25.0,
        vec![
            ("n_nationkey", CS::uniform(25.0, 0.0, 24.0), 8),
            ("n_regionkey", CS::uniform(5.0, 0.0, 4.0), 8),
            ("n_name", CS::uniform(25.0, 0.0, 24.0), 26),
        ],
    );
    c.add_table(
        "supplier",
        10_000.0 * sf,
        vec![
            (
                "s_suppkey",
                CS::uniform(10_000.0 * sf, 0.0, 10_000.0 * sf - 1.0),
                8,
            ),
            ("s_nationkey", CS::uniform(25.0, 0.0, 24.0), 8),
            ("s_acctbal", CS::uniform(9_999.0, -999.99, 9_999.99), 8),
        ],
    );
    c.add_table(
        "customer",
        150_000.0 * sf,
        vec![
            (
                "c_custkey",
                CS::uniform(150_000.0 * sf, 0.0, 150_000.0 * sf - 1.0),
                8,
            ),
            ("c_nationkey", CS::uniform(25.0, 0.0, 24.0), 8),
            ("c_mktsegment", CS::uniform(5.0, 0.0, 4.0), 12),
            ("c_acctbal", CS::uniform(9_999.0, -999.99, 9_999.99), 8),
        ],
    );
    c.add_table(
        "part",
        200_000.0 * sf,
        vec![
            (
                "p_partkey",
                CS::uniform(200_000.0 * sf, 0.0, 200_000.0 * sf - 1.0),
                8,
            ),
            ("p_retailprice", CS::uniform(100_000.0, 900.0, 2_099.0), 8),
            ("p_brand", CS::uniform(25.0, 0.0, 24.0), 12),
            ("p_type", CS::uniform(150.0, 0.0, 149.0), 26),
            ("p_size", CS::uniform(50.0, 1.0, 50.0), 8),
            ("p_container", CS::uniform(40.0, 0.0, 39.0), 12),
        ],
    );
    c.add_table(
        "partsupp",
        800_000.0 * sf,
        vec![
            (
                "ps_partkey",
                CS::uniform(200_000.0 * sf, 0.0, 200_000.0 * sf - 1.0),
                8,
            ),
            (
                "ps_suppkey",
                CS::uniform(10_000.0 * sf, 0.0, 10_000.0 * sf - 1.0),
                8,
            ),
            ("ps_supplycost", CS::uniform(99_901.0, 1.0, 1_000.0), 8),
        ],
    );
    c.add_table(
        "orders",
        1_500_000.0 * sf,
        vec![
            (
                "o_orderkey",
                CS::uniform(1_500_000.0 * sf, 0.0, 1_500_000.0 * sf - 1.0),
                8,
            ),
            (
                "o_custkey",
                CS::uniform(150_000.0 * sf, 0.0, 150_000.0 * sf - 1.0),
                8,
            ),
            ("o_orderdate", CS::uniform(2_406.0, 0.0, 2_405.0), 8),
            (
                "o_totalprice",
                CS::uniform(1_500_000.0, 857.71, 555_285.16),
                8,
            ),
        ],
    );
    c.add_table(
        "lineitem",
        6_000_000.0 * sf,
        vec![
            (
                "l_orderkey",
                CS::uniform(1_500_000.0 * sf, 0.0, 1_500_000.0 * sf - 1.0),
                8,
            ),
            (
                "l_partkey",
                CS::uniform(200_000.0 * sf, 0.0, 200_000.0 * sf - 1.0),
                8,
            ),
            (
                "l_suppkey",
                CS::uniform(10_000.0 * sf, 0.0, 10_000.0 * sf - 1.0),
                8,
            ),
            ("l_shipdate", CS::uniform(2_526.0, 0.0, 2_525.0), 8),
            ("l_quantity", CS::uniform(50.0, 1.0, 50.0), 8),
            (
                "l_extendedprice",
                CS::uniform(933_900.0, 901.0, 104_949.5),
                8,
            ),
        ],
    );

    c.index_everything();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_tables_present() {
        let c = catalog(1.0);
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(c.table(t).is_some(), "missing table {t}");
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn scale_factor_scales_big_tables_not_nation() {
        let c10 = catalog(10.0);
        assert_eq!(c10.table("lineitem").unwrap().rows as u64, 60_000_000);
        assert_eq!(c10.table("nation").unwrap().rows as u64, 25);
    }

    #[test]
    fn every_column_is_indexed() {
        let c = catalog(1.0);
        for t in c.tables() {
            assert_eq!(t.indexes.len(), t.columns.len(), "table {}", t.name);
        }
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = catalog(0.0);
    }
}
