//! Declarative fault schedules.

use serde::{Deserialize, Serialize};

/// What goes wrong.
///
/// Each kind is consulted at a fixed hook point; a kind that has no hook in a
/// given component is simply never asked there, so one plan can combine
/// engine-level and executor-level faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// An operator dies mid-execution. In the tuple engine this fires at the
    /// Nth settled tuple, in the vectorized engine at the Nth batch, and in
    /// the cost-unit executor at the Nth budgeted execution — which then
    /// reports `waste_frac × budget` as work wasted before the fault.
    OperatorFailure { waste_frac: f64 },
    /// The ledger transiently over-charges: the triggered charge/settle (or,
    /// in the executor, the triggered abort's reported spend) is multiplied
    /// by `factor` (> 1 over-charges, < 1 under-charges).
    LedgerOverCharge { factor: f64 },
    /// Spilling a partial result fails.
    SpillFailure,
    /// A selectivity observation learned from an execution is multiplied by
    /// `scale` before it reaches the driver — corrupting `qrun` refinement.
    CorruptObservation { scale: f64 },
    /// The executor sees a budget skewed by `factor` relative to what the
    /// driver granted (a fast/slow clock), so aborts land at the wrong spend.
    BudgetClockSkew { factor: f64 },
    /// A cost spike beyond the configured δ band: actual execution cost is
    /// multiplied by `factor` for the triggered executions.
    PerturbationSpike { factor: f64 },
    /// Server: a worker thread panics mid-request. The containment drill —
    /// the in-flight request must come back as a typed error, the worker
    /// must be replaced, and the server must stay up.
    WorkerPanic,
    /// Server: the connection handler stalls `ms` before processing a
    /// request line (a slow-loris client holding its socket open).
    SlowClient { ms: u64 },
    /// Server: dispatch from the admission queue stalls `ms`, backing work
    /// up against the bounded queue so backpressure engages.
    QueueStall { ms: u64 },
    /// Server: the client vanishes before its response can be written. The
    /// request must still run to a terminal state reachable via `status`.
    ClientDisconnect,
}

impl FaultKind {
    /// Short stable label, used by the chaos survival table.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::OperatorFailure { .. } => "operator-failure",
            FaultKind::LedgerOverCharge { .. } => "ledger-overcharge",
            FaultKind::SpillFailure => "spill-failure",
            FaultKind::CorruptObservation { .. } => "corrupt-observation",
            FaultKind::BudgetClockSkew { .. } => "budget-clock-skew",
            FaultKind::PerturbationSpike { .. } => "perturbation-spike",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::SlowClient { .. } => "slow-client",
            FaultKind::QueueStall { .. } => "queue-stall",
            FaultKind::ClientDisconnect => "client-disconnect",
        }
    }
}

/// When a fault fires, counted in hook consultations of its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th consultation (1-based).
    Nth(u64),
    /// Fire on every `n`-th consultation.
    Every(u64),
    /// Fire each consultation independently with probability `p·2⁻⁶⁴`-ish —
    /// deterministic given the plan seed. `millis` is p in thousandths so the
    /// trigger stays `Eq`/hashable.
    PerMille(u32),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    pub kind: FaultKind,
    pub trigger: Trigger,
}

/// A deterministic, seeded schedule of faults.
///
/// The default plan is empty and inert: every injection hook becomes an exact
/// no-op, which is what makes "empty fault plan ⇒ bit-identical run" testable
/// rather than merely plausible.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty (inert) plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Add a spec, builder-style.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, trigger: Trigger) -> Self {
        self.specs.push(FaultSpec { kind, trigger });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_specs() {
        let p = FaultPlan::new(9)
            .with(FaultKind::SpillFailure, Trigger::Nth(1))
            .with(
                FaultKind::BudgetClockSkew { factor: 1.1 },
                Trigger::Every(2),
            );
        assert_eq!(p.specs.len(), 2);
        assert!(!p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn plans_round_trip_through_json() {
        let p = FaultPlan::new(3).with(
            FaultKind::CorruptObservation { scale: 10.0 },
            Trigger::PerMille(250),
        );
        let s = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
    }
}
