//! Tiny deterministic RNG primitives (splitmix64), dependency-free so the
//! fault layer can sit at the very bottom of the crate graph.

/// One splitmix64 step: advances `state` and returns the next 64-bit output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit word onto [0, 1).
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_well_spread() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        // Not trivially constant.
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_is_in_range() {
        let mut s = 7u64;
        for _ in 0..1000 {
            let u = unit_f64(splitmix64(&mut s));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
