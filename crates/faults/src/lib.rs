//! Typed errors and deterministic fault injection for the plan-bouquet stack.
//!
//! The paper's MSO guarantee assumes a well-behaved substrate: costs obey the
//! plan cost monotonicity (PCM) assumption, executions fail only by exceeding
//! their budget, and the driver itself never dies mid-contour. This crate
//! supplies the two ingredients needed to *test* that assumption set and to
//! survive its violation:
//!
//! * [`PbError`] — a workspace-wide error taxonomy replacing panics in
//!   non-test library code, and
//! * [`FaultPlan`] / [`FaultInjector`] — a seeded, fully deterministic fault
//!   schedule that the engine, the cost-unit executor and the bouquet drivers
//!   consult at well-defined hook points.
//!
//! Determinism contract: a given `(FaultPlan, hook-call sequence)` always
//! fires the same faults, and an **empty** plan is inert — every hook is an
//! exact no-op, so runs with `FaultInjector::none()` are bit-identical to
//! runs compiled before this crate existed.

mod cancel;
mod error;
mod inject;
mod plan;
mod rng;

pub use cancel::CancelToken;
pub use error::PbError;
pub use inject::FaultInjector;
pub use plan::{FaultKind, FaultPlan, FaultSpec, Trigger};
pub use rng::{splitmix64, unit_f64};
