//! The runtime injector: deterministic, interior-mutable, inert when empty.

use std::cell::Cell;

use crate::error::PbError;
use crate::plan::{FaultKind, FaultPlan, Trigger};
use crate::rng::{splitmix64, unit_f64};

/// One armed fault: the spec plus its consultation counter and RNG stream.
#[derive(Debug)]
struct Armed {
    kind: FaultKind,
    trigger: Trigger,
    count: Cell<u64>,
    rng: Cell<u64>,
}

impl Armed {
    /// Advance the consultation counter and decide whether this fault fires.
    fn fires(&self) -> bool {
        let n = self.count.get() + 1;
        self.count.set(n);
        match self.trigger {
            Trigger::Nth(k) => n == k,
            Trigger::Every(k) => k > 0 && n.is_multiple_of(k),
            Trigger::PerMille(pm) => {
                let mut s = self.rng.get();
                let w = splitmix64(&mut s);
                self.rng.set(s);
                unit_f64(w) * 1000.0 < f64::from(pm)
            }
        }
    }
}

/// Bit per [`FaultKind`] variant, for O(1) "nothing of this kind" checks so
/// that hooks on hot paths cost one load + branch when a kind is unused.
fn kind_bit(k: &FaultKind) -> u16 {
    match k {
        FaultKind::OperatorFailure { .. } => 1,
        FaultKind::LedgerOverCharge { .. } => 1 << 1,
        FaultKind::SpillFailure => 1 << 2,
        FaultKind::CorruptObservation { .. } => 1 << 3,
        FaultKind::BudgetClockSkew { .. } => 1 << 4,
        FaultKind::PerturbationSpike { .. } => 1 << 5,
        FaultKind::WorkerPanic => 1 << 6,
        FaultKind::SlowClient { .. } => 1 << 7,
        FaultKind::QueueStall { .. } => 1 << 8,
        FaultKind::ClientDisconnect => 1 << 9,
    }
}

/// Consults a [`FaultPlan`] at well-defined hook points.
///
/// The injector is deterministic: hooks advance per-spec counters (and, for
/// probabilistic triggers, a per-spec splitmix64 stream seeded from the plan
/// seed), so a fixed call sequence always produces the same faults. An
/// injector built from an empty plan never fires and never perturbs any
/// value passed through it.
#[derive(Debug)]
pub struct FaultInjector {
    armed: Vec<Armed>,
    mask: u16,
}

impl FaultInjector {
    /// The inert injector: every hook is an exact no-op.
    pub fn none() -> Self {
        FaultInjector {
            armed: Vec::new(),
            mask: 0,
        }
    }

    pub fn new(plan: &FaultPlan) -> Self {
        let mut mask = 0u16;
        let armed = plan
            .specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                mask |= kind_bit(&s.kind);
                Armed {
                    kind: s.kind.clone(),
                    trigger: s.trigger,
                    count: Cell::new(0),
                    rng: Cell::new(plan.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
                }
            })
            .collect();
        FaultInjector { armed, mask }
    }

    /// True when at least one fault is armed.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.mask != 0
    }

    #[inline]
    fn has(&self, bit: u16) -> bool {
        self.mask & bit != 0
    }

    // ---- engine-level hooks -------------------------------------------------

    /// Operator failure at the Nth settled tuple (tuple path) or Nth batch
    /// (vectorized path). Consulted once per tuple/batch.
    #[inline]
    pub fn tuple_failure(&self, site: &str) -> Option<PbError> {
        if !self.has(1) {
            return None;
        }
        self.operator_failure(site).map(|(_, e)| e)
    }

    /// Multiplicative factor applied to the triggered ledger charge/settle;
    /// `1.0` when nothing fires. Consulted once per commit.
    #[inline]
    pub fn ledger_factor(&self) -> f64 {
        if !self.has(1 << 1) {
            return 1.0;
        }
        let mut f = 1.0;
        for a in &self.armed {
            if let FaultKind::LedgerOverCharge { factor } = a.kind {
                if a.fires() {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Spill failure at the given site.
    #[inline]
    pub fn spill_failure(&self, site: &str) -> Option<PbError> {
        if !self.has(1 << 2) {
            return None;
        }
        for a in &self.armed {
            if matches!(a.kind, FaultKind::SpillFailure) && a.fires() {
                return Some(PbError::SpillFailure { site: site.into() });
            }
        }
        None
    }

    // ---- executor-level hooks ----------------------------------------------

    /// Operator failure for a whole budgeted execution: returns the fraction
    /// of the budget wasted before the fault, plus the error.
    #[inline]
    pub fn exec_failure(&self, site: &str) -> Option<(f64, PbError)> {
        if !self.has(1) {
            return None;
        }
        self.operator_failure(site)
    }

    fn operator_failure(&self, site: &str) -> Option<(f64, PbError)> {
        for a in &self.armed {
            if let FaultKind::OperatorFailure { waste_frac } = a.kind {
                if a.fires() {
                    return Some((
                        waste_frac.clamp(0.0, 1.0),
                        PbError::OperatorFailure { site: site.into() },
                    ));
                }
            }
        }
        None
    }

    /// Budget clock skew: the budget the executor actually honours.
    #[inline]
    pub fn skewed_budget(&self, budget: f64) -> f64 {
        if !self.has(1 << 4) {
            return budget;
        }
        let mut b = budget;
        for a in &self.armed {
            if let FaultKind::BudgetClockSkew { factor } = a.kind {
                if a.fires() {
                    b *= factor;
                }
            }
        }
        b
    }

    /// Cost-spike factor beyond the δ band; `1.0` when nothing fires.
    #[inline]
    pub fn spike_factor(&self) -> f64 {
        if !self.has(1 << 5) {
            return 1.0;
        }
        let mut f = 1.0;
        for a in &self.armed {
            if let FaultKind::PerturbationSpike { factor } = a.kind {
                if a.fires() {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Corrupt a learned selectivity observation.
    #[inline]
    pub fn corrupt_observation(&self, v: f64) -> f64 {
        if !self.has(1 << 3) {
            return v;
        }
        let mut x = v;
        for a in &self.armed {
            if let FaultKind::CorruptObservation { scale } = a.kind {
                if a.fires() {
                    x *= scale;
                }
            }
        }
        x
    }

    /// Factor applied to an abort's reported spend (executor-level ledger
    /// over-charge); `1.0` when nothing fires.
    #[inline]
    pub fn abort_charge_factor(&self) -> f64 {
        self.ledger_factor()
    }

    // ---- server-level hooks -------------------------------------------------

    /// Should the worker executing the current request panic? Consulted once
    /// per dispatched request, before execution begins.
    #[inline]
    pub fn worker_panic(&self) -> bool {
        if !self.has(1 << 6) {
            return false;
        }
        self.armed
            .iter()
            .any(|a| matches!(a.kind, FaultKind::WorkerPanic) && a.fires())
    }

    /// Milliseconds the connection handler should stall before processing a
    /// request line; `None` when nothing fires. Consulted once per line.
    #[inline]
    pub fn slow_client_ms(&self) -> Option<u64> {
        if !self.has(1 << 7) {
            return None;
        }
        for a in &self.armed {
            if let FaultKind::SlowClient { ms } = a.kind {
                if a.fires() {
                    return Some(ms);
                }
            }
        }
        None
    }

    /// Milliseconds queue dispatch should stall before handing the next
    /// request to a worker; `None` when nothing fires. Consulted once per
    /// dequeue.
    #[inline]
    pub fn queue_stall_ms(&self) -> Option<u64> {
        if !self.has(1 << 8) {
            return None;
        }
        for a in &self.armed {
            if let FaultKind::QueueStall { ms } = a.kind {
                if a.fires() {
                    return Some(ms);
                }
            }
        }
        None
    }

    /// Should the client's connection be dropped before its response is
    /// written? Consulted once per response.
    #[inline]
    pub fn client_disconnect(&self) -> bool {
        if !self.has(1 << 9) {
            return false;
        }
        self.armed
            .iter()
            .any(|a| matches!(a.kind, FaultKind::ClientDisconnect) && a.fires())
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    #[test]
    fn inert_injector_is_a_no_op() {
        let i = FaultInjector::none();
        assert!(!i.is_active());
        assert!(i.tuple_failure("x").is_none());
        assert!(i.exec_failure("x").is_none());
        assert!(i.spill_failure("x").is_none());
        // Neutral pass-throughs must be the *same bits*, not just close.
        for v in [0.0, -0.0, 1.5e300, f64::MIN_POSITIVE] {
            assert_eq!(i.skewed_budget(v).to_bits(), v.to_bits());
            assert_eq!(i.corrupt_observation(v).to_bits(), v.to_bits());
        }
        assert_eq!(i.ledger_factor(), 1.0);
        assert_eq!(i.spike_factor(), 1.0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let p = FaultPlan::new(1).with(
            FaultKind::OperatorFailure { waste_frac: 0.5 },
            Trigger::Nth(3),
        );
        let i = FaultInjector::new(&p);
        let fires: Vec<bool> = (0..6).map(|_| i.tuple_failure("op").is_some()).collect();
        assert_eq!(fires, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn every_trigger_is_periodic() {
        let p = FaultPlan::new(1).with(
            FaultKind::LedgerOverCharge { factor: 2.0 },
            Trigger::Every(2),
        );
        let i = FaultInjector::new(&p);
        let fs: Vec<f64> = (0..4).map(|_| i.ledger_factor()).collect();
        assert_eq!(fs, vec![1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn per_mille_is_deterministic_across_instances() {
        let p = FaultPlan::new(77).with(
            FaultKind::CorruptObservation { scale: 3.0 },
            Trigger::PerMille(500),
        );
        let a = FaultInjector::new(&p);
        let b = FaultInjector::new(&p);
        let xa: Vec<f64> = (0..32).map(|_| a.corrupt_observation(1.0)).collect();
        let xb: Vec<f64> = (0..32).map(|_| b.corrupt_observation(1.0)).collect();
        assert_eq!(xa, xb);
        // At 50% per-mille some but not all consultations fire.
        assert!(xa.contains(&3.0) && xa.contains(&1.0));
    }

    #[test]
    fn server_hooks_fire_on_schedule() {
        let p = FaultPlan::new(5)
            .with(FaultKind::WorkerPanic, Trigger::Nth(2))
            .with(FaultKind::SlowClient { ms: 25 }, Trigger::Nth(1))
            .with(FaultKind::QueueStall { ms: 40 }, Trigger::Every(2))
            .with(FaultKind::ClientDisconnect, Trigger::Nth(1));
        let i = FaultInjector::new(&p);
        assert!(!i.worker_panic());
        assert!(i.worker_panic());
        assert!(!i.worker_panic());
        assert_eq!(i.slow_client_ms(), Some(25));
        assert_eq!(i.slow_client_ms(), None);
        assert_eq!(i.queue_stall_ms(), None);
        assert_eq!(i.queue_stall_ms(), Some(40));
        assert!(i.client_disconnect());
        assert!(!i.client_disconnect());
    }

    #[test]
    fn inert_injector_server_hooks_are_no_ops() {
        let i = FaultInjector::none();
        assert!(!i.worker_panic());
        assert!(i.slow_client_ms().is_none());
        assert!(i.queue_stall_ms().is_none());
        assert!(!i.client_disconnect());
    }

    #[test]
    fn counters_are_per_spec() {
        let p = FaultPlan {
            seed: 0,
            specs: vec![
                FaultSpec {
                    kind: FaultKind::BudgetClockSkew { factor: 0.5 },
                    trigger: Trigger::Nth(1),
                },
                FaultSpec {
                    kind: FaultKind::PerturbationSpike { factor: 4.0 },
                    trigger: Trigger::Nth(2),
                },
            ],
        };
        let i = FaultInjector::new(&p);
        assert_eq!(i.skewed_budget(10.0), 5.0);
        assert_eq!(i.skewed_budget(10.0), 10.0);
        assert_eq!(i.spike_factor(), 1.0);
        assert_eq!(i.spike_factor(), 4.0);
    }
}
