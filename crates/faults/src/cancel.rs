//! Cooperative cancellation for long-running executions.
//!
//! The serving layer needs two things the per-query stack was never asked
//! for: per-request deadlines and a client-driven cancel RPC. Both reduce to
//! one primitive — a shared token the execution stack *polls* at bounded
//! intervals and the controller *trips* — so cancellation composes with the
//! checkpoint/resume machinery instead of fighting it: a tripped execution
//! surfaces [`PbError::Cancelled`] at its next poll point, every checkpoint
//! captured before that instant survives, and a resubmit resumes from them
//! rather than restarting.
//!
//! Poll cadence: the cost-unit simulator consults the token once per
//! budgeted execution (executions are closed-form and instantaneous), the
//! vectorized engine once per batch commit (≤ [`crate`]-external `BATCH`
//! rows of work past the trip point). Polling an untripped token with no
//! deadline is a single relaxed-ish atomic load; the deadline clock is read
//! only when a deadline exists.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::PbError;

#[derive(Debug, Default)]
struct Flag {
    cancelled: AtomicBool,
    /// Fixed at construction; `None` means no deadline.
    deadline: Option<Instant>,
}

/// Shared cancellation handle: cheap to clone (an `Arc`), cheap to poll.
///
/// Clones observe the same state — cancelling any clone cancels them all.
/// The default token never fires until [`CancelToken::cancel`] is called,
/// so threading one unconditionally costs nothing on un-cancelled runs.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Flag>,
}

impl CancelToken {
    /// A token with no deadline; fires only on an explicit [`Self::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Flag {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that fires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Trip the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has the token been tripped (explicitly or by its deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.cancel_error().is_some()
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// The typed error a cancelled execution surfaces, or `None` while the
    /// token is live. Explicit cancellation wins over the deadline so the
    /// reason reported to the client is stable once tripped.
    pub fn cancel_error(&self) -> Option<PbError> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(PbError::Cancelled("cancelled by request".into()));
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(PbError::Cancelled("deadline exceeded".into())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.cancel_error().is_none());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        match t.cancel_error() {
            Some(PbError::Cancelled(reason)) => assert_eq!(reason, "cancelled by request"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_fires() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        // The deadline is `now + 0`; by the time we poll it has passed.
        std::thread::sleep(Duration::from_millis(1));
        match t.cancel_error() {
            Some(PbError::Cancelled(reason)) => assert_eq!(reason, "deadline exceeded"),
            other => panic!("expected deadline cancellation, got {other:?}"),
        }
    }

    #[test]
    fn far_deadline_does_not_fire() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }
}
