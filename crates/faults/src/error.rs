//! The workspace-wide typed error taxonomy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Every way the plan-bouquet stack can fail without panicking.
///
/// Payloads are plain strings / integers so the type stays `Clone + Eq`-able
/// and serializable — error values travel inside run traces and chaos-campaign
/// reports, which must round-trip through JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PbError {
    /// A caller handed an object whose dimensionality does not match the ESS.
    DimensionMismatch { expected: usize, got: usize },
    /// Filesystem-level failure while persisting or loading an artefact.
    Io { path: String, message: String },
    /// An artefact file parsed but its contents are inconsistent, or failed
    /// to parse at all (truncated / corrupt).
    Corrupt { path: String, message: String },
    /// A configuration value is outside its legal range.
    InvalidConfig(String),
    /// Bouquet identification failed (degenerate cost span, empty contours…).
    Identification(String),
    /// The runtime monitor observed spend inconsistent with the granted
    /// budget, or the compile-time PIC monotonicity check failed — the PCM
    /// assumption underlying the MSO guarantee is broken.
    MonotonicityViolation(String),
    /// A plan demanded an index scan over a column with no index.
    UnindexedColumn(String),
    /// An operator faulted mid-execution (injected or real).
    OperatorFailure { site: String },
    /// A spill (partial-result reuse) could not be written or read back.
    SpillFailure { site: String },
    /// A named entity (table, column, relation…) is missing from a catalog
    /// or schema.
    MissingEntity { kind: String, name: String },
    /// The execution was cooperatively cancelled (client cancel RPC or a
    /// per-request deadline). Work already checkpointed survives: a resubmit
    /// resumes instead of restarting.
    Cancelled(String),
    /// The serving layer refused or lost the request (queue full, drain in
    /// progress, worker replaced mid-request…). Carries the admission-level
    /// reason; never raised by the execution stack itself.
    ServiceUnavailable(String),
    /// An internal invariant was violated; carries a diagnostic message.
    Internal(String),
}

impl fmt::Display for PbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            PbError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            PbError::Corrupt { path, message } => {
                write!(f, "corrupt artefact {path}: {message}")
            }
            PbError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            PbError::Identification(m) => write!(f, "bouquet identification failed: {m}"),
            PbError::MonotonicityViolation(m) => write!(f, "monotonicity violation: {m}"),
            PbError::UnindexedColumn(m) => write!(f, "index scan over unindexed column: {m}"),
            PbError::OperatorFailure { site } => write!(f, "operator failure at {site}"),
            PbError::SpillFailure { site } => write!(f, "spill failure at {site}"),
            PbError::MissingEntity { kind, name } => write!(f, "missing {kind}: {name}"),
            PbError::Cancelled(m) => write!(f, "execution cancelled: {m}"),
            PbError::ServiceUnavailable(m) => write!(f, "service unavailable: {m}"),
            PbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PbError {}

impl From<std::io::Error> for PbError {
    fn from(e: std::io::Error) -> Self {
        PbError::Io {
            path: String::new(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let e = PbError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 2");
        let e = PbError::OperatorFailure {
            site: "hash-join".into(),
        };
        assert_eq!(e.to_string(), "operator failure at hash-join");
    }

    #[test]
    fn errors_round_trip_through_json() {
        let errs = vec![
            PbError::DimensionMismatch {
                expected: 4,
                got: 1,
            },
            PbError::Corrupt {
                path: "b.json".into(),
                message: "eof".into(),
            },
            PbError::MonotonicityViolation("spend 3 > budget 2".into()),
            PbError::SpillFailure {
                site: "executor".into(),
            },
        ];
        for e in errs {
            let s = serde_json::to_string(&e).unwrap();
            let back: PbError = serde_json::from_str(&s).unwrap();
            assert_eq!(back, e);
        }
    }
}
