//! Sampled plan-diagram construction with probabilistic optimality bounds.
//!
//! The exhaustive diagram build invokes the DP optimizer at every ESS grid
//! point — the dominant cost of bouquet identification. Following the
//! *probably approximately optimal* line of work (Trummer & Koch), this
//! module replaces the sweep with deterministic seeded sampling plus
//! incumbent-bound refinement:
//!
//! 1. **Seed**: optimize at `n₀` uniformly sampled grid points; the distinct
//!    winners (compiled to [`CostProgram`]s) form the plan *pool*.
//! 2. **Refine**: in rounds, draw `m` fresh uniform points; at each, compare
//!    the pool's cheapest plan against the true optimum (one DP call,
//!    upper-bounded by the pool cost, so the memo is heavily pruned). A
//!    point where the pool is more than `(1+ε)` off is a *violation*; its
//!    true winner joins the pool. A violation-free round terminates.
//! 3. **Prune + re-validate**: the final sweep pays `|plans| × n` program
//!    evals, and a 3D+ diagram spreads its wins over dozens of marginally-
//!    distinct plans — so a greedy `(1+ε)`-cover over the probed points
//!    (the anorexic-reduction insight of Section 4.1, applied at diagram
//!    level) shrinks the pool to a handful of survivors, and fresh rounds
//!    (same `ε`/`m` math) certify the *pruned* set. If no clean round fits
//!    in the remaining round budget, the full pool — whose certificate
//!    already holds — is used instead.
//! 4. **Assemble**: evaluate each surviving program over the full grid
//!    (cheap compiled sweeps, no DP) and take the per-point argmin.
//!
//! **Confidence contract.** Suppose the assembled diagram's violation mass —
//! the fraction of grid points whose assembled optimal cost exceeds `(1+ε)`
//! times the true optimum — is greater than `ε`. A round of `m` independent
//! uniform probes misses all violations with probability at most
//! `(1−ε)^m ≤ e^(−εm)`, so with `m = ⌈ln(R/δ)/ε⌉` each round's miss
//! probability is at most `δ/R`, and a union bound over the at-most-`R`
//! rounds (refinement and validation combined) gives: **with probability
//! ≥ 1−δ, a converged build's violation mass is ≤ ε** — i.e. at least a
//! `1−ε` fraction of the grid is within `(1+ε)` of optimal. The terminating
//! round always measures exactly the plan set the diagram ships (the
//! survivor set when validation succeeds, the full pool otherwise), and
//! plan sets only grow within a phase, which only shrinks the violation
//! set. `pbq identify-sampled --verify` measures the realized violation
//! mass and MSO inflation against the exact diagram.
//!
//! Determinism: all randomness flows through [`SplitMix64`] streams derived
//! from the configured seed, DP probes run serially in sample order, and the
//! final sweep reuses the deterministic chunked machinery — the same seed
//! yields a bit-identical diagram at any worker count.

use std::collections::HashMap;

use pb_catalog::Catalog;
use pb_cost::{sample_distinct, CostMatrix, CostModel, CostProgram, Ess, Parallelism, SplitMix64};
use pb_faults::PbError;
use pb_plan::{PhysicalPlan, PlanFingerprint, QuerySpec};

use crate::diagram::{matrix_for_programs, PlanDiagram};
use crate::dp::Optimizer;

/// Tunables of the sampled build. `epsilon`/`delta` parameterize the
/// confidence contract (see the module docs); the sampling knobs default to
/// values that keep DP-call counts far below the grid size on 3D+ ESSes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SampledBuildConfig {
    /// Root seed for every sampling stream.
    pub seed: u64,
    /// Approximation slack: a point is a violation when the pool's best
    /// cost exceeds `(1+epsilon) ×` the true optimum.
    pub epsilon: f64,
    /// Failure probability budget for the whole build.
    pub delta: f64,
    /// Seed-phase sample count (`0` = auto: `max(64, n/32)`).
    pub initial_samples: usize,
    /// Refinement-round cap `R` (`0` = auto: 16).
    pub max_rounds: usize,
}

impl Default for SampledBuildConfig {
    fn default() -> Self {
        SampledBuildConfig {
            seed: 20_140_622, // the paper's publication date
            epsilon: 0.1,
            delta: 0.05,
            initial_samples: 0,
            max_rounds: 0,
        }
    }
}

/// Effort and outcome counters of one sampled build.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SampledBuildStats {
    pub grid_points: usize,
    /// DP invocations actually performed (the cost being amortized; the
    /// exhaustive build performs `grid_points` of them).
    pub optimizer_calls: usize,
    pub initial_samples: usize,
    pub samples_per_round: usize,
    /// Sampling rounds run — refinement plus pruned-set validation,
    /// including each phase's final violation-free round.
    pub rounds: usize,
    /// Plans discovered across all probes (the assembled diagram may keep
    /// fewer — pool plans that win nowhere on the grid are dropped).
    pub pool_size: usize,
    /// A refinement round completed without violations within the round cap.
    pub converged: bool,
    /// The sampling budget met or exceeded the grid size, so the build ran
    /// the exact exhaustive path instead (small grids).
    pub exhaustive_fallback: bool,
}

/// A sampled diagram plus the byproducts callers would otherwise recompute:
/// the kept-plan cost matrix over the full grid (bit-identical to
/// [`PlanDiagram::cost_matrix_with`] on the sampled diagram, since both
/// evaluate the same compiled programs) and the build stats.
#[derive(Debug, Clone)]
pub struct SampledDiagram {
    pub diagram: PlanDiagram,
    pub costs: CostMatrix,
    pub stats: SampledBuildStats,
}

impl PlanDiagram {
    /// Build a diagram by seeded sampling + incumbent-bound refinement
    /// instead of the exhaustive grid sweep. See the module docs for the
    /// (ε, δ) contract. Small grids (where the sampling budget would meet
    /// the grid size) transparently run the exact build.
    pub fn build_sampled(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
        cfg: &SampledBuildConfig,
        par: Parallelism,
    ) -> Result<SampledDiagram, PbError> {
        if !(cfg.epsilon > 0.0 && cfg.epsilon.is_finite()) {
            return Err(PbError::InvalidConfig(
                "sampled build: epsilon must be positive and finite".into(),
            ));
        }
        if !(cfg.delta > 0.0 && cfg.delta < 1.0) {
            return Err(PbError::InvalidConfig(
                "sampled build: delta must lie in (0, 1)".into(),
            ));
        }
        let n = ess.num_points();
        let max_rounds = if cfg.max_rounds == 0 {
            16
        } else {
            cfg.max_rounds
        };
        let n0 = if cfg.initial_samples == 0 {
            (n / 32).max(64)
        } else {
            cfg.initial_samples
        }
        .clamp(1, n);
        let per_round = ((max_rounds as f64 / cfg.delta).ln() / cfg.epsilon).ceil() as usize;

        // When sampling would touch most of the grid anyway the exhaustive
        // build is both cheaper and exact — use it.
        if n0 + max_rounds * per_round >= n {
            let diagram = Self::build_with(catalog, query, model, ess, par);
            let costs = diagram.cost_matrix_with(catalog, query, model, par);
            let pool_size = diagram.plans.len();
            return Ok(SampledDiagram {
                diagram,
                costs,
                stats: SampledBuildStats {
                    grid_points: n,
                    optimizer_calls: n,
                    initial_samples: n0,
                    samples_per_round: per_round,
                    rounds: 0,
                    pool_size,
                    converged: true,
                    exhaustive_fallback: true,
                },
            });
        }

        let opt = Optimizer::new(catalog, query, model);
        // Pool of discovered plans, in discovery order (ties in the final
        // argmin break toward earlier discovery — deterministic).
        let mut pool: Vec<(PhysicalPlan, CostProgram)> = Vec::new();
        let mut pool_ids: HashMap<PlanFingerprint, usize> = HashMap::new();
        let mut stats = SampledBuildStats {
            grid_points: n,
            optimizer_calls: 0,
            initial_samples: n0,
            samples_per_round: per_round,
            rounds: 0,
            pool_size: 0,
            converged: false,
            exhaustive_fallback: false,
        };

        let mut ix = Vec::new();
        let mut q = Vec::new();
        let mut stack = Vec::new();
        // Every linear index a DP probe touched, in probe order.
        let mut probed: Vec<usize> = Vec::new();
        // One DP probe at linear grid index `li`: returns (pool-best cost
        // before this probe, true optimal cost), growing the pool when the
        // true winner is new.
        let mut probe =
            |li: usize, probed: &mut Vec<usize>, stats: &mut SampledBuildStats| -> (f64, f64) {
                probed.push(li);
                ess.unlinear_into(li, &mut ix);
                ess.point_into(&ix, &mut q);
                let mut pool_best = f64::INFINITY;
                for (_, prog) in &pool {
                    let c = prog.eval_with(&q, &mut stack).cost;
                    if c < pool_best {
                        pool_best = c;
                    }
                }
                let best = opt.optimize_bounded(&q, pool_best);
                stats.optimizer_calls += 1;
                let fp = best.plan.fingerprint();
                if let std::collections::hash_map::Entry::Vacant(slot) = pool_ids.entry(fp) {
                    slot.insert(pool.len());
                    let prog = CostProgram::compile(catalog, query, model, &best.plan.root);
                    pool.push((best.plan, prog));
                }
                (pool_best, best.cost)
            };

        for li in sample_distinct(n, n0, cfg.seed) {
            probe(li, &mut probed, &mut stats);
        }

        let mut rng = SplitMix64::new(cfg.seed.wrapping_add(0xC0FF_EE00_5EED_5EED));
        for _ in 0..max_rounds {
            stats.rounds += 1;
            let mut violations = 0usize;
            for _ in 0..per_round {
                let li = rng.next_index(n);
                let (pool_best, opt_cost) = probe(li, &mut probed, &mut stats);
                if pool_best > (1.0 + cfg.epsilon) * opt_cost {
                    violations += 1;
                }
            }
            if violations == 0 {
                stats.converged = true;
                break;
            }
        }

        // Prune: the full-grid sweep below costs |plans|·n program evals,
        // and a 3D+ diagram spreads wins over dozens of marginally-distinct
        // plans — most within ε of each other wherever they win. Greedy
        // (1+ε)-cover over the probed points (in probe order, so the result
        // is deterministic): a plan joins the survivor set only where no
        // already-selected survivor is within `(1+ε)` of the pool optimum.
        // This is the anorexic-reduction insight (Section 4.1) applied at
        // the diagram level. Fresh validation rounds (same ε/m/round math)
        // then certify the pruned set — the exact quantity the assembled
        // diagram ships. A violation re-adds the true winner; if no clean
        // round fits in the remaining round budget, the full pool — whose
        // certificate already holds — is used instead.
        let mut survivors: Vec<usize> = Vec::new();
        if stats.converged && !pool.is_empty() {
            let mut is_survivor = vec![false; pool.len()];
            let mut seen = vec![false; n];
            for &li in &probed {
                if std::mem::replace(&mut seen[li], true) {
                    continue;
                }
                ess.unlinear_into(li, &mut ix);
                ess.point_into(&ix, &mut q);
                let mut pool_best = f64::INFINITY;
                let mut winner = 0usize;
                let mut selected_best = f64::INFINITY;
                for (id, (_, prog)) in pool.iter().enumerate() {
                    let c = prog.eval_with(&q, &mut stack).cost;
                    if c < pool_best {
                        pool_best = c;
                        winner = id;
                    }
                    if is_survivor[id] && c < selected_best {
                        selected_best = c;
                    }
                }
                if selected_best > (1.0 + cfg.epsilon) * pool_best {
                    is_survivor[winner] = true;
                }
            }

            let mut validated = false;
            while stats.rounds < max_rounds && !validated {
                stats.rounds += 1;
                let mut violations = 0usize;
                for _ in 0..per_round {
                    let li = rng.next_index(n);
                    ess.unlinear_into(li, &mut ix);
                    ess.point_into(&ix, &mut q);
                    let mut best = f64::INFINITY;
                    for (id, (_, prog)) in pool.iter().enumerate() {
                        if is_survivor[id] {
                            let c = prog.eval_with(&q, &mut stack).cost;
                            if c < best {
                                best = c;
                            }
                        }
                    }
                    let found = opt.optimize_bounded(&q, best);
                    stats.optimizer_calls += 1;
                    if best > (1.0 + cfg.epsilon) * found.cost {
                        violations += 1;
                        let fp = found.plan.fingerprint();
                        let id = match pool_ids.entry(fp) {
                            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                slot.insert(pool.len());
                                let prog =
                                    CostProgram::compile(catalog, query, model, &found.plan.root);
                                pool.push((found.plan, prog));
                                pool.len() - 1
                            }
                        };
                        if id >= is_survivor.len() {
                            is_survivor.resize(pool.len(), false);
                        }
                        is_survivor[id] = true;
                    }
                }
                validated = violations == 0;
            }
            if validated {
                survivors = (0..pool.len()).filter(|&id| is_survivor[id]).collect();
            }
        }
        if survivors.is_empty() {
            survivors = (0..pool.len()).collect();
        }
        stats.pool_size = pool.len();

        // Assemble: surviving programs swept over the full grid (no DP),
        // argmin per point, plans renumbered by first appearance in grid
        // order — the same numbering discipline as the exhaustive build.
        let pool_progs: Vec<CostProgram> =
            survivors.iter().map(|&sid| pool[sid].1.clone()).collect();
        let pool_matrix = matrix_for_programs(&pool_progs, ess, par);
        let winners = pool_matrix.argmin_per_point();
        let mut renumber: HashMap<u32, u32> = HashMap::new();
        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut optimal = Vec::with_capacity(n);
        let mut opt_cost = Vec::with_capacity(n);
        for (li, &w) in winners.iter().enumerate() {
            let id = *renumber.entry(w).or_insert_with(|| {
                plans.push(pool[survivors[w as usize]].0.clone());
                (plans.len() - 1) as u32
            });
            optimal.push(id);
            opt_cost.push(pool_matrix[w as usize][li]);
        }
        // Kept-plan cost matrix: rows lifted from the pool sweep in the new
        // plan order (bit-identical to recomputing them, same programs).
        let mut kept_rows = vec![0u32; plans.len()];
        for (&pool_id, &new_id) in &renumber {
            kept_rows[new_id as usize] = pool_id;
        }
        let mut costs = CostMatrix::new(n);
        for &pool_id in &kept_rows {
            costs.push_row(pool_matrix.row(pool_id as usize));
        }

        Ok(SampledDiagram {
            diagram: PlanDiagram {
                ess: ess.clone(),
                plans,
                optimal,
                opt_cost,
            },
            costs,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::EssDim;
    use pb_plan::{CmpOp, QueryBuilder, QuerySpec, SelSpec};

    fn setup_2d(res: usize) -> (pb_catalog::Catalog, QuerySpec, CostModel, Ess) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq2");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            res,
        );
        (cat.clone(), q, CostModel::postgresish(), ess)
    }

    fn cfg_small() -> SampledBuildConfig {
        SampledBuildConfig {
            seed: 7,
            epsilon: 0.1,
            delta: 0.1,
            initial_samples: 48,
            max_rounds: 8,
            // per-round = ceil(ln(8/0.1)/0.1) = 44 ⇒ budget 48+8·44 = 400
        }
    }

    #[test]
    fn sampled_build_is_deterministic_across_workers_and_repeats() {
        let (cat, q, m, ess) = setup_2d(24); // 576 points > 400 budget
        let a = PlanDiagram::build_sampled(&cat, &q, &m, &ess, &cfg_small(), Parallelism::serial())
            .expect("sampled build");
        assert!(!a.stats.exhaustive_fallback, "budget must stay sub-grid");
        for par in [Parallelism::serial(), Parallelism::new(4)] {
            let b = PlanDiagram::build_sampled(&cat, &q, &m, &ess, &cfg_small(), par)
                .expect("sampled build");
            assert_eq!(a.diagram.optimal, b.diagram.optimal);
            assert_eq!(a.stats, b.stats);
            for (x, y) in a.diagram.opt_cost.iter().zip(&b.diagram.opt_cost) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.costs.as_flat().iter().zip(b.costs.as_flat()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn sampled_costs_upper_bound_exact_pic_and_bound_violation_mass() {
        let (cat, q, m, ess) = setup_2d(24);
        let exact = PlanDiagram::build_with(&cat, &q, &m, &ess, Parallelism::serial());
        let cfg = cfg_small();
        let s = PlanDiagram::build_sampled(&cat, &q, &m, &ess, &cfg, Parallelism::serial())
            .expect("sampled build");
        assert!(s.stats.converged, "small TPC-H ESS must converge");
        let n = ess.num_points();
        let mut violations = 0usize;
        for li in 0..n {
            let sc = s.diagram.opt_cost[li];
            let ec = exact.opt_cost[li];
            // The pool is a subset of all plans: never cheaper than optimal.
            assert!(
                sc >= ec * (1.0 - 1e-9),
                "sampled PIC beats exact at {li}: {sc} < {ec}"
            );
            if sc > (1.0 + cfg.epsilon) * ec {
                violations += 1;
            }
        }
        assert!(
            (violations as f64) <= cfg.epsilon * n as f64,
            "violation mass {violations}/{n} exceeds epsilon {}",
            cfg.epsilon
        );
    }

    #[test]
    fn sampled_matrix_matches_recomputed_cost_matrix_bitwise() {
        let (cat, q, m, ess) = setup_2d(24);
        let s = PlanDiagram::build_sampled(&cat, &q, &m, &ess, &cfg_small(), Parallelism::serial())
            .expect("sampled build");
        let recomputed = s
            .diagram
            .cost_matrix_with(&cat, &q, &m, Parallelism::serial());
        assert_eq!(s.costs.len(), recomputed.len());
        for (a, b) in s.costs.as_flat().iter().zip(recomputed.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Diagram invariants: every point's winner matches its opt_cost.
        for li in 0..ess.num_points() {
            let pid = s.diagram.optimal[li] as usize;
            assert_eq!(s.costs[pid][li].to_bits(), s.diagram.opt_cost[li].to_bits());
        }
    }

    #[test]
    fn tiny_grids_fall_back_to_the_exact_build() {
        let (cat, q, m, ess) = setup_2d(8); // 64 points, far under any budget
        let s = PlanDiagram::build_sampled(
            &cat,
            &q,
            &m,
            &ess,
            &SampledBuildConfig::default(),
            Parallelism::serial(),
        )
        .expect("sampled build");
        assert!(s.stats.exhaustive_fallback);
        let exact = PlanDiagram::build_with(&cat, &q, &m, &ess, Parallelism::serial());
        assert_eq!(s.diagram.optimal, exact.optimal);
        for (a, b) in s.diagram.opt_cost.iter().zip(&exact.opt_cost) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_sampling_configs_are_rejected() {
        let (cat, q, m, ess) = setup_2d(8);
        for bad in [
            SampledBuildConfig {
                epsilon: 0.0,
                ..Default::default()
            },
            SampledBuildConfig {
                epsilon: f64::NAN,
                ..Default::default()
            },
            SampledBuildConfig {
                delta: 0.0,
                ..Default::default()
            },
            SampledBuildConfig {
                delta: 1.0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                PlanDiagram::build_sampled(&cat, &q, &m, &ess, &bad, Parallelism::serial()),
                Err(PbError::InvalidConfig(_))
            ));
        }
    }
}
