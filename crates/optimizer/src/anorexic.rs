//! Anorexic plan-diagram reduction (Harish, Darera, Haritsa — VLDB 2007).
//!
//! A plan may "swallow" another plan's region if, at every swallowed point,
//! the swallower's cost is within `(1 + λ)` of the optimal cost. With
//! λ = 20% this typically collapses diagrams with tens or hundreds of plans
//! to around ten — the paper leans on this to keep the isocost-contour plan
//! density ρ (and hence the MSO bound `4·(1+λ)·ρ`) small (Section 3.3).

use pb_cost::CostMatrix;

use crate::diagram::{PlanDiagram, PlanId};

/// Result of an anorexic reduction over a set of points.
#[derive(Debug, Clone)]
pub struct AnorexicReduction {
    pub lambda: f64,
    /// Retained plans (ids into the source diagram's `plans`).
    pub kept: Vec<PlanId>,
    /// Per reduced point (parallel to the input point list): the retained
    /// plan now assigned to it.
    pub assignment: Vec<PlanId>,
}

impl AnorexicReduction {
    /// Reduce a full diagram: every grid point must end up assigned to a
    /// retained plan whose cost is within `(1+λ)` of that point's optimum.
    pub fn reduce(diagram: &PlanDiagram, costs: &CostMatrix, lambda: f64) -> Self {
        let points: Vec<usize> = (0..diagram.ess.num_points()).collect();
        Self::reduce_points(diagram, costs, &points, lambda)
    }

    /// Reduce over an arbitrary subset of grid points (used per isocost
    /// contour by the bouquet). `costs[plan][point]` are absolute costs at
    /// *linear grid indices*; `points` selects the linear indices to cover.
    pub fn reduce_points(
        diagram: &PlanDiagram,
        costs: &CostMatrix,
        points: &[usize],
        lambda: f64,
    ) -> Self {
        assert!(lambda >= 0.0);
        let nplans = diagram.plans.len();
        let covers = |plan: PlanId, pt_pos: usize| -> bool {
            let li = points[pt_pos];
            costs[plan][li] <= (1.0 + lambda) * diagram.opt_cost[li] * (1.0 + 1e-12)
        };
        let kept = greedy_cover(nplans, points.len(), covers);
        // Assign each point the cheapest retained plan that covers it.
        let assignment: Vec<PlanId> = (0..points.len())
            .map(|pos| {
                *kept
                    .iter()
                    .filter(|&&p| covers(p, pos))
                    .min_by(|&&a, &&b| costs[a][points[pos]].total_cmp(&costs[b][points[pos]]))
                    .expect("greedy cover must cover every point")
            })
            .collect();
        AnorexicReduction {
            lambda,
            kept,
            assignment,
        }
    }

    pub fn plan_count(&self) -> usize {
        self.kept.len()
    }
}

/// Greedy set cover: repeatedly keep the plan covering the most uncovered
/// points. Guaranteed to terminate because every point is covered by its own
/// optimal plan (cost ratio 1 ≤ 1+λ).
pub fn greedy_cover(
    nplans: usize,
    npoints: usize,
    covers: impl Fn(PlanId, usize) -> bool,
) -> Vec<PlanId> {
    let mut uncovered: Vec<usize> = (0..npoints).collect();
    let mut kept: Vec<PlanId> = Vec::new();
    while !uncovered.is_empty() {
        let (best_plan, _) = (0..nplans)
            .filter(|p| !kept.contains(p))
            .map(|p| (p, uncovered.iter().filter(|&&pt| covers(p, pt)).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("ran out of plans with points still uncovered");
        let gain = uncovered
            .iter()
            .filter(|&&pt| covers(best_plan, pt))
            .count();
        assert!(
            gain > 0,
            "no plan covers the remaining points — corrupt cost data"
        );
        kept.push(best_plan);
        uncovered.retain(|&pt| !covers(best_plan, pt));
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, QuerySpec, SelSpec};

    fn setup() -> (pb_catalog::Catalog, QuerySpec, CostModel, Ess) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq2d");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            16,
        );
        (cat.clone(), q, CostModel::postgresish(), ess)
    }

    #[test]
    fn reduction_shrinks_plan_count_and_respects_lambda() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let red = AnorexicReduction::reduce(&d, &costs, 0.2);
        assert!(red.plan_count() <= d.plan_count());
        assert!(red.plan_count() >= 1);
        // λ-guarantee at every point.
        for (li, &p) in red.assignment.iter().enumerate() {
            assert!(
                costs[p][li] <= 1.2 * d.opt_cost[li] * (1.0 + 1e-9),
                "λ bound violated at {li}"
            );
        }
    }

    #[test]
    fn zero_lambda_keeps_optimal_assignment_quality() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let red = AnorexicReduction::reduce(&d, &costs, 0.0);
        for (li, &p) in red.assignment.iter().enumerate() {
            assert!(costs[p][li] <= d.opt_cost[li] * (1.0 + 1e-9));
        }
    }

    #[test]
    fn larger_lambda_never_keeps_more_plans() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let tight = AnorexicReduction::reduce(&d, &costs, 0.05);
        let loose = AnorexicReduction::reduce(&d, &costs, 0.5);
        assert!(loose.plan_count() <= tight.plan_count());
    }

    #[test]
    fn reduce_points_subset() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let subset: Vec<usize> = (0..ess.num_points()).step_by(7).collect();
        let red = AnorexicReduction::reduce_points(&d, &costs, &subset, 0.2);
        assert_eq!(red.assignment.len(), subset.len());
        for (pos, &p) in red.assignment.iter().enumerate() {
            let li = subset[pos];
            assert!(costs[p][li] <= 1.2 * d.opt_cost[li] * (1.0 + 1e-9));
        }
    }

    #[test]
    fn greedy_cover_minimal_example() {
        // 3 plans, 4 points; plan 2 covers everything.
        let covers = |p: usize, pt: usize| p == 2 || p == pt % 2;
        let kept = greedy_cover(3, 4, covers);
        assert_eq!(kept, vec![2]);
    }
}
