//! Bushy dynamic-programming join enumeration with interesting orders.
//!
//! The memo stores, per connected relation subset, the cheapest entry for
//! each delivered sort order (System-R interesting orders, with order
//! identity = equivalence class of join columns). Entries reference child
//! entries by `(mask, index)`, so no plan trees are built during
//! enumeration; the winning tree is reconstructed once at the end. This
//! keeps a single optimization in the tens of microseconds, which matters
//! because POSP generation calls the optimizer at thousands of grid points.

use std::collections::HashMap;

use pb_catalog::{Catalog, ColumnId};
use pb_cost::{CostModel, Coster, NodeCost};
use pb_plan::{JoinGraph, PhysicalPlan, PlanNode, QuerySpec, RelIdx};

/// Result of one optimization call: the optimal plan plus its estimates.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    pub plan: PhysicalPlan,
    pub cost: f64,
    pub rows: f64,
}

/// Equivalence classes of join columns (transitively merged through join
/// edges); sort orders are identified by class id.
#[derive(Debug, Clone)]
struct ColClasses {
    map: HashMap<(RelIdx, ColumnId), usize>,
}

impl ColClasses {
    fn build(query: &QuerySpec) -> Self {
        // Union-find over the (rel, col) endpoints of join edges.
        let mut keys: Vec<(RelIdx, ColumnId)> = Vec::new();
        let mut index = HashMap::new();
        let mut parent: Vec<usize> = Vec::new();
        let intern = |k: (RelIdx, ColumnId),
                      keys: &mut Vec<(RelIdx, ColumnId)>,
                      parent: &mut Vec<usize>,
                      index: &mut HashMap<(RelIdx, ColumnId), usize>| {
            *index.entry(k).or_insert_with(|| {
                keys.push(k);
                parent.push(keys.len() - 1);
                keys.len() - 1
            })
        };
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for j in &query.joins {
            // Inequality edges do not equate their endpoints — a sort order
            // on one side says nothing about the other — so they contribute
            // no equivalence-class merges (and no interesting orders).
            if !j.is_equi() {
                continue;
            }
            let a = intern((j.left_rel, j.left_col), &mut keys, &mut parent, &mut index);
            let b = intern(
                (j.right_rel, j.right_col),
                &mut keys,
                &mut parent,
                &mut index,
            );
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        // Canonicalise to root representative.
        let mut map = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            let r = find(&mut parent, i);
            map.insert(*k, r);
        }
        ColClasses { map }
    }

    fn class_of(&self, rel: RelIdx, col: ColumnId) -> Option<usize> {
        self.map.get(&(rel, col)).copied()
    }
}

/// Reference to a finalized memo entry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EntryRef {
    mask: u32,
    idx: usize,
}

/// Compact operator descriptor; trees are materialized only for the winner.
#[derive(Debug, Clone)]
enum EntryOp {
    SeqScan(RelIdx),
    IndexScan(RelIdx, usize),
    FullIndexScan(RelIdx, ColumnId),
    Hash {
        build: EntryRef,
        probe: EntryRef,
        edges: Vec<usize>,
    },
    Merge {
        left: EntryRef,
        right: EntryRef,
        edges: Vec<usize>,
        sort_left: bool,
        sort_right: bool,
    },
    Inl {
        outer: EntryRef,
        inner_rel: RelIdx,
        edges: Vec<usize>,
    },
    Bnl {
        outer: EntryRef,
        inner: EntryRef,
        edges: Vec<usize>,
    },
}

#[derive(Debug, Clone)]
struct DpEntry {
    order: Option<usize>,
    op: EntryOp,
    est: NodeCost,
}

/// The dynamic-programming optimizer, bound to (catalog, query, model).
///
/// Existential edges (anti-join / NOT EXISTS and semi-join / EXISTS) are
/// not freely reorderable with inner joins; following common practice the
/// DP enumerates the inner-join core and the existential operators are
/// applied on top in edge order, each against its relation's cheapest
/// access path. Inequality (`<` / `>`) edges *are* part of the core — they
/// connect the join graph like any inner edge — but they produce no sort
/// orders and only block-nested-loops can use one as its primary edge.
pub struct Optimizer<'a> {
    pub catalog: &'a Catalog,
    pub query: &'a QuerySpec,
    pub model: &'a CostModel,
    /// Join graph over the *inner* (non-existential) edges only.
    graph: JoinGraph,
    classes: ColClasses,
    /// (edge index, hanger relation) pairs for anti/semi edges, ascending
    /// by edge — the application order on top of the core.
    hangers: Vec<(usize, RelIdx)>,
    /// Bitmask of the inner-join core relations.
    core_mask: u32,
}

impl<'a> Optimizer<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a QuerySpec, model: &'a CostModel) -> Self {
        assert!(
            query.num_relations() <= 16,
            "DP enumeration limited to 16 relations"
        );
        // Identify existential hanger relations: the side of each anti/semi
        // edge that touches no other edge (the EXISTS / NOT EXISTS subquery
        // relation).
        let degree = |r: RelIdx| {
            query
                .joins
                .iter()
                .filter(|j| j.left_rel == r || j.right_rel == r)
                .count()
        };
        let mut hangers = Vec::new();
        let mut hanger_rels: u32 = 0;
        for (ji, j) in query.joins.iter().enumerate() {
            if j.existential() {
                let rel = if degree(j.right_rel) == 1 {
                    j.right_rel
                } else if degree(j.left_rel) == 1 {
                    j.left_rel
                } else {
                    panic!("anti/semi-join relation must hang off a single edge");
                };
                hangers.push((ji, rel));
                hanger_rels |= 1 << rel;
            }
        }
        let core_mask = (((1u64 << query.num_relations()) - 1) as u32) & !hanger_rels;
        assert!(
            core_mask != 0,
            "query must have at least one inner relation"
        );
        let inner_edges: Vec<(usize, usize)> = query
            .joins
            .iter()
            .filter(|j| !j.existential())
            .map(|j| j.rels())
            .collect();
        let graph = JoinGraph::new(query.num_relations(), inner_edges);
        assert!(
            graph.is_subset_connected(core_mask),
            "inner-join core must be connected"
        );
        Optimizer {
            catalog,
            query,
            model,
            graph,
            classes: ColClasses::build(query),
            hangers,
            core_mask,
        }
    }

    fn coster(&self) -> Coster<'a> {
        Coster::new(self.catalog, self.query, self.model)
    }

    /// Cross inner-join edges between disjoint subsets — equality edges
    /// first, then inequality edges, each group ascending by index. The
    /// stable equi-first partition keeps `edges[0]` usable as the lookup /
    /// merge key whenever any equality edge crosses the cut (and is the
    /// identity permutation for all-equality queries, preserving legacy
    /// plans byte-for-byte); inequality edges then cost as residuals.
    fn cross_edges(&self, a: u32, b: u32) -> Vec<usize> {
        let crossing: Vec<usize> = self
            .query
            .joins
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.existential())
            .filter(|(_, j)| {
                let (l, r) = (1u32 << j.left_rel, 1u32 << j.right_rel);
                (l & a != 0 && r & b != 0) || (l & b != 0 && r & a != 0)
            })
            .map(|(i, _)| i)
            .collect();
        let (equi, ineq): (Vec<usize>, Vec<usize>) = crossing
            .into_iter()
            .partition(|&i| self.query.joins[i].is_equi());
        equi.into_iter().chain(ineq).collect()
    }

    /// Access-path entries for a single relation at location `q`.
    fn access_paths(&self, rel: RelIdx, q: &[f64]) -> Vec<DpEntry> {
        let c = self.coster();
        let table = self.catalog.table_by_id(self.query.relations[rel].table);
        let mut out = vec![DpEntry {
            order: None,
            op: EntryOp::SeqScan(rel),
            est: c.seq_scan(rel, q),
        }];
        // Selection-driven index scans.
        for (i, s) in self.query.relations[rel].selections.iter().enumerate() {
            if table.index_on(s.column).is_some() {
                out.push(DpEntry {
                    order: self.classes.class_of(rel, s.column),
                    op: EntryOp::IndexScan(rel, i),
                    est: c.index_scan(rel, i, q),
                });
            }
        }
        // Order-producing full index scans on join columns.
        let mut seen_classes = Vec::new();
        for j in &self.query.joins {
            if let Some(col) = j.col_on(rel) {
                if let Some(cls) = self.classes.class_of(rel, col) {
                    if !seen_classes.contains(&cls) && table.index_on(col).is_some() {
                        seen_classes.push(cls);
                        out.push(DpEntry {
                            order: Some(cls),
                            op: EntryOp::FullIndexScan(rel, col),
                            est: c.full_index_scan(rel, q),
                        });
                    }
                }
            }
        }
        out
    }

    /// Keep only the cheapest entry per delivered order, and drop ordered
    /// entries that cannot beat re-sorting the overall cheapest entry.
    fn prune(&self, mut cands: Vec<DpEntry>) -> Vec<DpEntry> {
        cands.sort_by(|a, b| a.est.cost.total_cmp(&b.est.cost));
        let mut out: Vec<DpEntry> = Vec::new();
        for e in cands {
            if !out.iter().any(|kept| {
                kept.order == e.order
                    || kept.order.is_none() && {
                        // An unordered cheaper plan only dominates if adding an
                        // explicit sort still beats `e`.
                        let c = self.coster();
                        kept.est.cost + c.sort_cost(&kept.est) <= e.est.cost
                    }
            }) {
                out.push(e);
            }
        }
        out
    }

    /// Optimize the query at ESS location `q`; returns the cheapest plan.
    pub fn optimize(&self, q: &[f64]) -> OptimizedPlan {
        self.optimize_impl(q, f64::INFINITY)
            .expect("query join graph must be connected")
    }

    /// Like [`optimize`](Optimizer::optimize), but additionally drops memo
    /// entries whose estimated cost *strictly* exceeds `upper_bound`.
    ///
    /// Because every operator's cost is the sum of its inputs' costs plus
    /// non-negative terms, a subplan estimated above the bound can only grow
    /// on its way to the root, so when `upper_bound` is the cost of *some*
    /// valid complete plan at `q` (e.g. the previous grid point's winner,
    /// recosted here) the pruned search returns exactly the same plan and
    /// cost as the unpruned one: pruned entries are strictly worse than the
    /// winner and memo slots are cost-ascending, so pruning removes a slot
    /// suffix and cannot shift the indices or relative order of surviving
    /// entries. Ties with the bound are kept. Should a caller ever pass a
    /// bound below the optimum (possible only if abstract recosting of a
    /// foreign plan undercuts every plan the DP enumerates at `q`), the
    /// search detects the empty memo and transparently falls back to the
    /// unpruned path — output is identical to [`optimize`] in every case.
    pub fn optimize_bounded(&self, q: &[f64], upper_bound: f64) -> OptimizedPlan {
        if upper_bound.is_finite() {
            if let Some(best) = self.optimize_impl(q, upper_bound) {
                return best;
            }
        }
        self.optimize(q)
    }

    fn optimize_impl(&self, q: &[f64], upper_bound: f64) -> Option<OptimizedPlan> {
        let n = self.query.num_relations();
        let full: u32 = self.core_mask;
        let c = self.coster();
        let all: u32 = ((1u64 << n) - 1) as u32;
        let mut memo: Vec<Vec<DpEntry>> = vec![Vec::new(); (all as usize) + 1];
        // `prune` returns entries in ascending cost order, so the bound
        // removes a strictly-worse suffix (ties survive).
        let bound_prune = |slot: &mut Vec<DpEntry>| {
            if upper_bound.is_finite() {
                slot.retain(|e| e.est.cost <= upper_bound);
            }
        };

        for rel in 0..n {
            let mut slot = self.prune(self.access_paths(rel, q));
            bound_prune(&mut slot);
            memo[1usize << rel] = slot;
        }

        // DPsize over connected subsets of the inner-join core.
        for mask in 1..=full {
            if mask & !self.core_mask != 0 {
                continue;
            }
            if mask.count_ones() < 2 || !self.graph.is_subset_connected(mask) {
                continue;
            }
            let mut cands: Vec<DpEntry> = Vec::new();
            // Enumerate unordered partitions {s1, s2}; orientation handled
            // per operator below.
            let mut s1 = (mask - 1) & mask;
            while s1 != 0 {
                let s2 = mask & !s1;
                if s1 < s2
                    && self.graph.is_subset_connected(s1)
                    && self.graph.is_subset_connected(s2)
                {
                    let edges = self.cross_edges(s1, s2);
                    if !edges.is_empty() {
                        self.join_candidates(&c, &memo, s1, s2, &edges, q, &mut cands);
                        self.join_candidates(&c, &memo, s2, s1, &edges, q, &mut cands);
                    }
                }
                s1 = (s1 - 1) & mask;
            }
            let mut slot = self.prune(cands);
            bound_prune(&mut slot);
            memo[mask as usize] = slot;
        }

        let best = memo[full as usize]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.est.cost.total_cmp(&b.1.est.cost))
            .map(|(i, _)| i)?;
        let mut root = self.build_tree(
            &memo,
            EntryRef {
                mask: full,
                idx: best,
            },
        );
        let mut est = memo[full as usize][best].est;
        // Apply existential operators on top, each against its relation's
        // cheapest access path, in edge order.
        for &(edge, rel) in &self.hangers {
            let right_entries = &memo[1usize << rel];
            let ridx = right_entries
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.est.cost.total_cmp(&b.1.est.cost))
                .map(|(i, _)| i)?;
            let right = self.build_tree(
                &memo,
                EntryRef {
                    mask: 1 << rel,
                    idx: ridx,
                },
            );
            if self.query.joins[edge].semi {
                est = c.semi_join(&est, &right_entries[ridx].est, &[edge], q);
                root = PlanNode::SemiJoin {
                    left: Box::new(root),
                    right: Box::new(right),
                    edges: vec![edge],
                };
            } else {
                est = c.anti_join(&est, &right_entries[ridx].est, &[edge], q);
                root = PlanNode::AntiJoin {
                    left: Box::new(root),
                    right: Box::new(right),
                    edges: vec![edge],
                };
            }
        }
        // Aggregation, if the query groups.
        if !self.query.group_by.is_empty() {
            est = c.hash_aggregate(&est, q);
            root = PlanNode::HashAggregate {
                input: Box::new(root),
            };
        }
        Some(OptimizedPlan {
            plan: PhysicalPlan::new(root),
            cost: est.cost,
            rows: est.rows,
        })
    }

    /// Generate join candidates with `left_mask` as the left/outer/build side.
    #[allow(clippy::too_many_arguments)]
    fn join_candidates(
        &self,
        c: &Coster,
        memo: &[Vec<DpEntry>],
        left_mask: u32,
        right_mask: u32,
        edges: &[usize],
        q: &[f64],
        cands: &mut Vec<DpEntry>,
    ) {
        let lefts = &memo[left_mask as usize];
        let rights = &memo[right_mask as usize];
        if lefts.is_empty() || rights.is_empty() {
            return;
        }
        let cheapest = |entries: &[DpEntry]| -> usize {
            entries
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.est.cost.total_cmp(&b.1.est.cost))
                .map(|(i, _)| i)
                .unwrap()
        };
        let li = cheapest(lefts);
        let ri = cheapest(rights);
        let lref = EntryRef {
            mask: left_mask,
            idx: li,
        };
        let rref = EntryRef {
            mask: right_mask,
            idx: ri,
        };
        let l = &lefts[li].est;
        let r = &rights[ri].est;

        // Hash, merge and index-NL joins all key on the primary edge, so
        // they require an equality there; `cross_edges` sorts equalities
        // first, so a non-equi `edges[0]` means *every* crossing edge is an
        // inequality and only block-nested-loops below can evaluate it.
        let primary_is_equi = self.query.joins[edges[0]].is_equi();

        // Hash join: left side builds.
        if primary_is_equi {
            cands.push(DpEntry {
                order: None,
                op: EntryOp::Hash {
                    build: lref,
                    probe: rref,
                    edges: edges.to_vec(),
                },
                est: c.hash_join(l, r, edges, q),
            });
        }

        // Sort-merge join on the primary edge's class: try (cheapest +
        // explicit sort) and (pre-ordered entry, no sort) on each side.
        let merge_class = if primary_is_equi {
            let j = &self.query.joins[edges[0]];
            self.classes.class_of(j.left_rel, j.left_col)
        } else {
            None
        };
        if let Some(cls) = merge_class {
            let pick = |entries: &[DpEntry]| -> Vec<(usize, bool)> {
                let mut v = vec![(cheapest(entries), true)];
                if let Some((i, _)) = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.order == Some(cls))
                    .min_by(|a, b| a.1.est.cost.total_cmp(&b.1.est.cost))
                {
                    v.push((i, false));
                }
                v
            };
            for (lidx, sort_l) in pick(lefts) {
                for (ridx, sort_r) in pick(rights) {
                    cands.push(DpEntry {
                        order: Some(cls),
                        op: EntryOp::Merge {
                            left: EntryRef {
                                mask: left_mask,
                                idx: lidx,
                            },
                            right: EntryRef {
                                mask: right_mask,
                                idx: ridx,
                            },
                            edges: edges.to_vec(),
                            sort_left: sort_l,
                            sort_right: sort_r,
                        },
                        est: c.merge_join(
                            &lefts[lidx].est,
                            &rights[ridx].est,
                            edges,
                            q,
                            sort_l,
                            sort_r,
                        ),
                    });
                }
            }
        }

        // Index nested-loops: right side must be a single base relation; the
        // lookup key is the first cross edge. Preserves the outer's order, so
        // every outer memo entry is a candidate.
        if primary_is_equi && right_mask.count_ones() == 1 {
            let inner_rel = right_mask.trailing_zeros() as usize;
            let inner_table = self
                .catalog
                .table_by_id(self.query.relations[inner_rel].table);
            let lookup_col = self.query.joins[edges[0]].col_on(inner_rel);
            if lookup_col.is_some_and(|col| inner_table.index_on(col).is_some()) {
                for (lidx, le) in lefts.iter().enumerate() {
                    cands.push(DpEntry {
                        order: le.order,
                        op: EntryOp::Inl {
                            outer: EntryRef {
                                mask: left_mask,
                                idx: lidx,
                            },
                            inner_rel,
                            edges: edges.to_vec(),
                        },
                        est: c.index_nl_join(&le.est, inner_rel, edges, q),
                    });
                }
            }
        }

        // Block nested-loops (materialized inner).
        cands.push(DpEntry {
            order: None,
            op: EntryOp::Bnl {
                outer: lref,
                inner: rref,
                edges: edges.to_vec(),
            },
            est: c.block_nl_join(l, r, edges, q),
        });
    }

    fn build_tree(&self, memo: &[Vec<DpEntry>], r: EntryRef) -> PlanNode {
        let e = &memo[r.mask as usize][r.idx];
        match &e.op {
            EntryOp::SeqScan(rel) => PlanNode::SeqScan { rel: *rel },
            EntryOp::IndexScan(rel, sel_idx) => PlanNode::IndexScan {
                rel: *rel,
                sel_idx: *sel_idx,
            },
            EntryOp::FullIndexScan(rel, col) => PlanNode::FullIndexScan {
                rel: *rel,
                column: *col,
            },
            EntryOp::Hash {
                build,
                probe,
                edges,
            } => PlanNode::HashJoin {
                build: Box::new(self.build_tree(memo, *build)),
                probe: Box::new(self.build_tree(memo, *probe)),
                edges: edges.clone(),
            },
            EntryOp::Merge {
                left,
                right,
                edges,
                sort_left,
                sort_right,
            } => PlanNode::SortMergeJoin {
                left: Box::new(self.build_tree(memo, *left)),
                right: Box::new(self.build_tree(memo, *right)),
                edges: edges.clone(),
                sort_left: *sort_left,
                sort_right: *sort_right,
            },
            EntryOp::Inl {
                outer,
                inner_rel,
                edges,
            } => PlanNode::IndexNLJoin {
                outer: Box::new(self.build_tree(memo, *outer)),
                inner_rel: *inner_rel,
                edges: edges.clone(),
            },
            EntryOp::Bnl {
                outer,
                inner,
                edges,
            } => PlanNode::BlockNLJoin {
                outer: Box::new(self.build_tree(memo, *outer)),
                inner: Box::new(self.build_tree(memo, *inner)),
                edges: edges.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_query() -> (pb_catalog::Catalog, QuerySpec) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        (cat.clone(), qb.build())
    }

    #[test]
    fn optimizer_produces_complete_plan() {
        let (cat, q) = eq_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let best = opt.optimize(&[0.01]);
        assert_eq!(best.plan.root.rels_mask(), 0b111);
        assert!(best.cost > 0.0 && best.cost.is_finite());
        assert!(best.rows > 0.0);
    }

    #[test]
    fn optimizer_cost_matches_abstract_recosting() {
        let (cat, q) = eq_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let c = Coster::new(&cat, &q, &m);
        for s in [1e-4, 1e-3, 1e-2, 0.1, 1.0] {
            let best = opt.optimize(&[s]);
            let recost = c.plan_cost(&best.plan.root, &[s]);
            assert!(
                (best.cost - recost).abs() < 1e-6 * best.cost,
                "s={s}: dp={} recost={}",
                best.cost,
                recost
            );
        }
    }

    #[test]
    fn plan_changes_across_the_selectivity_range() {
        let (cat, q) = eq_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let lo = opt.optimize(&[1e-4]).plan.fingerprint();
        let hi = opt.optimize(&[1.0]).plan.fingerprint();
        assert_ne!(lo, hi, "POSP must contain more than one plan");
    }

    #[test]
    fn optimization_is_deterministic() {
        let (cat, q) = eq_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let a = opt.optimize(&[0.037]);
        let b = opt.optimize(&[0.037]);
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint());
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn optimal_cost_is_monotone_in_selectivity() {
        let (cat, q) = eq_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let mut last = 0.0;
        for i in 0..30 {
            let s = 1e-4 * 1e4f64.powf(i as f64 / 29.0);
            let cost = opt.optimize(&[s.min(1.0)]).cost;
            assert!(
                cost >= last * (1.0 - 1e-9),
                "PIC not monotone at s={s}: {cost} < {last}"
            );
            last = cost;
        }
    }

    /// Exhaustive cross-check on a 2-relation query: the DP optimum must not
    /// be beaten by any hand-enumerable alternative.
    #[test]
    fn dp_beats_every_handwritten_two_way_plan() {
        let cat = tpch::catalog(0.1);
        let mut qb = QueryBuilder::new(&cat, "two");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        let q = qb.build();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let c = Coster::new(&cat, &q, &m);

        let scans_p = vec![
            PlanNode::SeqScan { rel: 0 },
            PlanNode::IndexScan { rel: 0, sel_idx: 0 },
        ];
        let scans_l = vec![PlanNode::SeqScan { rel: 1 }];
        for s in [1e-4, 0.01, 0.3, 1.0] {
            let best = opt.optimize(&[s]);
            let mut alternatives: Vec<PlanNode> = Vec::new();
            for sp in &scans_p {
                for sl in &scans_l {
                    alternatives.push(PlanNode::HashJoin {
                        build: Box::new(sp.clone()),
                        probe: Box::new(sl.clone()),
                        edges: vec![0],
                    });
                    alternatives.push(PlanNode::HashJoin {
                        build: Box::new(sl.clone()),
                        probe: Box::new(sp.clone()),
                        edges: vec![0],
                    });
                    alternatives.push(PlanNode::SortMergeJoin {
                        left: Box::new(sp.clone()),
                        right: Box::new(sl.clone()),
                        edges: vec![0],
                        sort_left: true,
                        sort_right: true,
                    });
                    alternatives.push(PlanNode::BlockNLJoin {
                        outer: Box::new(sp.clone()),
                        inner: Box::new(sl.clone()),
                        edges: vec![0],
                    });
                }
                alternatives.push(PlanNode::IndexNLJoin {
                    outer: Box::new(sp.clone()),
                    inner_rel: 1,
                    edges: vec![0],
                });
            }
            for alt in &alternatives {
                let alt_cost = c.plan_cost(alt, &[s]);
                assert!(
                    best.cost <= alt_cost * (1.0 + 1e-9),
                    "s={s}: DP {} beaten by {:?} at {}",
                    best.cost,
                    alt,
                    alt_cost
                );
            }
        }
    }

    #[test]
    fn five_way_chain_optimizes_quickly_and_correctly() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "chain5");
        let r = qb.rel("region");
        let n = qb.rel("nation");
        let s = qb.rel("supplier");
        let c_ = qb.rel("customer");
        let o = qb.rel("orders");
        qb.join(r, "r_regionkey", n, "n_regionkey", SelSpec::Fixed(0.2));
        qb.join(n, "n_nationkey", s, "s_nationkey", SelSpec::ErrorProne(0));
        qb.join(s, "s_nationkey", c_, "c_nationkey", SelSpec::ErrorProne(1));
        qb.join(
            c_,
            "c_custkey",
            o,
            "o_custkey",
            SelSpec::Fixed(1.0 / 150_000.0),
        );
        let q = qb.build();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let best = opt.optimize(&[0.01, 0.001]);
        assert_eq!(best.plan.root.rels_mask(), 0b11111);
        assert!(best.cost.is_finite());
    }
}

#[cfg(test)]
mod agg_tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn agg_query() -> (pb_catalog::Catalog, QuerySpec) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "agg");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.group_by(p, "p_brand");
        (cat.clone(), qb.build())
    }

    #[test]
    fn aggregate_appears_at_the_root_only() {
        let (cat, q) = agg_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let best = opt.optimize(&[0.01]);
        assert!(matches!(best.plan.root, PlanNode::HashAggregate { .. }));
        let mut agg_count = 0;
        best.plan.root.visit(&mut |n| {
            if matches!(n, PlanNode::HashAggregate { .. }) {
                agg_count += 1;
            }
        });
        assert_eq!(agg_count, 1);
        // Output cardinality is bounded by the grouping column's NDV (25).
        assert!(best.rows <= 25.0 + 1e-9, "rows = {}", best.rows);
    }

    #[test]
    fn aggregate_cost_stays_monotone_and_recostable() {
        let (cat, q) = agg_query();
        let m = CostModel::postgresish();
        let opt = Optimizer::new(&cat, &q, &m);
        let c = Coster::new(&cat, &q, &m);
        let mut last = 0.0;
        for i in 0..12 {
            let s = 1e-4 * 1e4f64.powf(i as f64 / 11.0);
            let best = opt.optimize(&[s.min(1.0)]);
            assert!(best.cost >= last * (1.0 - 1e-9), "PCM with aggregate");
            last = best.cost;
            let recost = c.plan_cost(&best.plan.root, &[s.min(1.0)]);
            assert!((recost - best.cost).abs() < 1e-6 * best.cost);
        }
    }
}
