//! Cost-based query optimizer with selectivity injection.
//!
//! This crate supplies the optimizer half of the substrate the paper builds
//! on (its PostgreSQL implementation instruments the optimizer to accept
//! injected selectivities; here injection is native):
//!
//! * [`Optimizer`] — bushy dynamic programming over connected subgraphs with
//!   interesting-order tracking (System-R style), returning the optimal
//!   physical plan for a query at any ESS location.
//! * [`diagram`] — plan diagrams / POSP generation: exhaustive optimization
//!   over an ESS grid (parallelised; the paper notes POSP generation is
//!   "embarrassingly parallel", Section 4.2).
//! * [`anorexic`] — cost-bounded plan-diagram reduction ("anorexic
//!   reduction", Harish et al. VLDB 2007), the technique the bouquet uses to
//!   keep isocost-contour plan density ρ small (Section 3.3).
//! * [`seer`] — a SEER-style globally-safe replacement baseline
//!   (Harish et al. PVLDB 2008), compared against in Section 6.

pub mod anorexic;
pub mod diagram;
pub mod dp;
pub mod sampled;
pub mod seer;

pub use anorexic::AnorexicReduction;
pub use diagram::{matrix_for_programs, IncrementalDiagramStats, PlanDiagram, PlanId};
pub use dp::{OptimizedPlan, Optimizer};
pub use sampled::{SampledBuildConfig, SampledBuildStats, SampledDiagram};
pub use seer::SeerReduction;
