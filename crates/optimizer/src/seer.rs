//! SEER-style robust plan selection (Harish, Darera, Haritsa — PVLDB 2008).
//!
//! SEER reduces the plan diagram with a *global safety* condition: plan `P'`
//! may replace plan `P` only if `P'` is within `(1+λ)` of `P` at **every**
//! location of the ESS — not merely at the swallowed points. The replacement
//! therefore never harms any (qe, qa) combination by more than λ, but — as
//! the paper's evaluation shows (Section 6.2) — it also cannot repair the
//! native optimizer's worst cases, because the comparative yardstick is the
//! plan at the *estimated* location, not the optimal plan at the *actual*
//! location.

use pb_cost::CostMatrix;

use crate::diagram::{PlanDiagram, PlanId};

/// A SEER reduction: per grid point, the (possibly replaced) plan the
/// optimizer would now run when it *estimates* that location.
#[derive(Debug, Clone)]
pub struct SeerReduction {
    pub lambda: f64,
    pub kept: Vec<PlanId>,
    /// Per linear grid index: plan executed when qe = that point.
    pub assignment: Vec<PlanId>,
}

impl SeerReduction {
    /// Compute the reduction. Safety of `P' replaces P` is checked across
    /// the full grid via the cost matrix (`costs[plan][point]`).
    pub fn reduce(diagram: &PlanDiagram, costs: &CostMatrix, lambda: f64) -> Self {
        assert!(lambda >= 0.0);
        let nplans = diagram.plans.len();
        let npoints = diagram.ess.num_points();
        let region_sizes = diagram.region_sizes();

        // safe[(a, b)] = plan `a` can globally replace plan `b`.
        let globally_safe = |a: PlanId, b: PlanId| -> bool {
            (0..npoints).all(|li| costs[a][li] <= (1.0 + lambda) * costs[b][li] * (1.0 + 1e-12))
        };

        // Process plans from the largest region down. A plan is kept if no
        // already-kept plan can safely replace it; otherwise it is replaced
        // by the first (largest-region) safe keeper. Replacements are always
        // single-hop, so the λ-safety bound never compounds across chains.
        let mut order: Vec<PlanId> = (0..nplans).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(region_sizes[p]));
        let mut replacement: Vec<PlanId> = (0..nplans).collect();
        let mut keepers: Vec<PlanId> = Vec::new();
        for &p in &order {
            match keepers.iter().find(|&&k| globally_safe(k, p)) {
                Some(&k) => replacement[p] = k,
                None => keepers.push(p),
            }
        }
        let assignment: Vec<PlanId> = diagram
            .optimal
            .iter()
            .map(|&p| replacement[p as usize])
            .collect();
        let mut kept: Vec<PlanId> = assignment.clone();
        kept.sort_unstable();
        kept.dedup();
        SeerReduction {
            lambda,
            kept,
            assignment,
        }
    }

    pub fn plan_count(&self) -> usize {
        self.kept.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, QuerySpec, SelSpec};

    fn setup() -> (pb_catalog::Catalog, QuerySpec, CostModel, Ess) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq2d");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            16,
        );
        (cat.clone(), q, CostModel::postgresish(), ess)
    }

    #[test]
    fn seer_never_harms_by_more_than_lambda() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let seer = SeerReduction::reduce(&d, &costs, 0.2);
        // Global safety: at every (qe, qa), the SEER plan chosen at qe costs
        // at most (1+λ)× the native plan chosen at qe.
        for qe in 0..ess.num_points() {
            let native = d.optimal[qe] as usize;
            let chosen = seer.assignment[qe];
            for (qa, (cc, cn)) in costs[chosen].iter().zip(&costs[native]).enumerate() {
                assert!(
                    *cc <= 1.2 * cn * (1.0 + 1e-9),
                    "harm beyond λ at qe={qe} qa={qa}"
                );
            }
        }
    }

    #[test]
    fn seer_reduces_or_keeps_plan_count() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let seer = SeerReduction::reduce(&d, &costs, 0.2);
        assert!(seer.plan_count() <= d.plan_count());
        assert!(!seer.kept.is_empty());
    }

    #[test]
    fn assignment_only_uses_kept_plans() {
        let (cat, q, m, ess) = setup();
        let d = PlanDiagram::build(&cat, &q, &m, &ess);
        let costs = d.cost_matrix(&cat, &q, &m);
        let seer = SeerReduction::reduce(&d, &costs, 0.2);
        for &p in &seer.assignment {
            assert!(seer.kept.contains(&p));
        }
    }
}
