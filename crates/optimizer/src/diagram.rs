//! Plan diagrams: exhaustive optimization over the ESS grid.
//!
//! A plan diagram (Harish et al., VLDB 2007) maps every grid point of the
//! error-prone selectivity space to its optimal plan and optimal cost. The
//! distinct plans form the *parametric optimal set of plans* (POSP) and the
//! per-point optimal costs form the *POSP infimum curve* (PIC) that the
//! bouquet discretizes (paper, Sections 1 and 4.2).

use std::collections::HashMap;

use pb_catalog::Catalog;
use pb_cost::{
    run_chunked, CostMatrix, CostModel, CostProgram, Coster, Ess, Parallelism,
    PARALLEL_MIN_MATRIX_CELLS,
};
use pb_plan::{PhysicalPlan, PlanFingerprint, QuerySpec};

use crate::dp::Optimizer;

/// Evaluate a set of compiled plan programs at every grid point of `ess`,
/// producing a `programs × points` [`CostMatrix`]. Work is chunked over the
/// flattened program × point space (so per-plan cost skew balances across
/// workers) and gated serial below [`PARALLEL_MIN_MATRIX_CELLS`] cells —
/// the per-phase gate, since a matrix cell costs ~100ns while a diagram
/// point costs a full DP invocation. Output is bit-identical at any worker
/// count. Shared by the exhaustive cost-matrix phase and the sampled
/// build's pool-matrix sweep.
pub fn matrix_for_programs(progs: &[CostProgram], ess: &Ess, par: Parallelism) -> CostMatrix {
    let n = ess.num_points();
    let d = ess.d();
    let total = progs.len() * n;
    let par = par.for_cells(total, PARALLEL_MIN_MATRIX_CELLS);
    let points = ess.points_flat();
    let chunks = run_chunked(par, total, |_, range| {
        let mut stack = Vec::new();
        range
            .map(|i| {
                let li = i % n;
                progs[i / n]
                    .eval_with(&points[li * d..(li + 1) * d], &mut stack)
                    .cost
            })
            .collect::<Vec<f64>>()
    });
    let mut flat = Vec::with_capacity(total);
    for chunk in chunks {
        flat.extend(chunk);
    }
    CostMatrix::from_flat(n, flat)
}

/// Index into a diagram's `plans` vector.
pub type PlanId = usize;

/// What an incremental rebuild actually had to redo, chunk by chunk (the
/// chunking mirrors [`pb_cost::run_chunked`]'s fixed boundaries). A point
/// "changed" when the drifted optimum's plan fingerprint differs from the
/// cached winner's; unchanged points still run the DP, but bounded by the
/// recosted cached winner, which prunes almost everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IncrementalDiagramStats {
    pub chunks_total: usize,
    pub chunks_changed: usize,
    pub points_total: usize,
    pub points_changed: usize,
    /// The cached diagram was unusable (ESS or shape mismatch) and the
    /// build fell back to a full from-scratch rebuild.
    pub full_rebuild: bool,
}

/// Optimal plan + cost at every grid point of an ESS.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PlanDiagram {
    pub ess: Ess,
    /// Distinct optimal plans (the POSP set).
    pub plans: Vec<PhysicalPlan>,
    /// Per linear grid index: which plan is optimal.
    pub optimal: Vec<u32>,
    /// Per linear grid index: the optimal (PIC) cost.
    pub opt_cost: Vec<f64>,
}

impl PlanDiagram {
    /// Build the diagram by optimizing at every grid point, using all
    /// available cores (the task is embarrassingly parallel).
    pub fn build(catalog: &Catalog, query: &QuerySpec, model: &CostModel, ess: &Ess) -> Self {
        Self::build_with(catalog, query, model, ess, Parallelism::auto())
    }

    /// Build with an explicit worker policy. Output is identical for every
    /// worker count: workers claim fixed-boundary chunks of the linear grid
    /// order, chunks are merged back in grid order, and plans are numbered
    /// by first appearance in that order — exactly the sequential numbering.
    ///
    /// Within each chunk the previous point's winning plan (compiled once
    /// into a [`CostProgram`]) is recosted at the next point and fed to
    /// [`Optimizer::optimize_bounded`] as an incumbent upper bound, pruning
    /// strictly-worse memo entries early. The output stays byte-identical
    /// to the unpruned build (see [`build_with_unpruned`]
    /// (PlanDiagram::build_with_unpruned) and `tests/compiled_cost.rs`).
    pub fn build_with(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
        par: Parallelism,
    ) -> Self {
        Self::build_impl(catalog, query, model, ess, par, true)
    }

    /// The historical exhaustive build: no incumbent bound is passed to the
    /// DP. Kept as the reference implementation for equality tests and for
    /// measuring the pruning win.
    pub fn build_with_unpruned(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
        par: Parallelism,
    ) -> Self {
        Self::build_impl(catalog, query, model, ess, par, false)
    }

    fn build_impl(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
        par: Parallelism,
        pruned: bool,
    ) -> Self {
        let n = ess.num_points();
        // Small grids run serially: thread hand-off costs more than it saves.
        let par = par.for_grid(n);
        // Per chunk: (fingerprint, plan-at-local-first-occurrence, cost).
        let chunks = run_chunked(par, n, |_, range| {
            let opt = Optimizer::new(catalog, query, model);
            let mut seen: HashMap<PlanFingerprint, ()> = HashMap::new();
            let mut out = Vec::with_capacity(range.len());
            let mut ix = Vec::new();
            let mut q = Vec::new();
            let mut stack = Vec::new();
            // The incumbent: previous point's winner, compiled for cheap
            // recosting. Chunk-local, so chunk boundaries (which depend only
            // on the item count) fully determine the bounds each point sees.
            let mut incumbent: Option<(PlanFingerprint, CostProgram)> = None;
            for li in range {
                ess.unlinear_into(li, &mut ix);
                ess.point_into(&ix, &mut q);
                let bound = match &incumbent {
                    Some((_, prog)) => prog.eval_with(&q, &mut stack).cost,
                    None => f64::INFINITY,
                };
                let best = opt.optimize_bounded(&q, bound);
                let fp = best.plan.fingerprint();
                if pruned && incumbent.as_ref().is_none_or(|(ifp, _)| *ifp != fp) {
                    incumbent = Some((
                        fp,
                        CostProgram::compile(catalog, query, model, &best.plan.root),
                    ));
                }
                let plan = if seen.insert(fp, ()).is_none() {
                    Some(best.plan)
                } else {
                    None
                };
                out.push((fp, plan, best.cost));
            }
            out
        });

        // Merge in chunk (= grid) order. The first chunk containing a
        // fingerprint carries its plan, because each worker records the plan
        // at the fingerprint's first occurrence within its own chunk.
        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut ids: HashMap<PlanFingerprint, u32> = HashMap::new();
        let mut optimal = Vec::with_capacity(n);
        let mut opt_cost = Vec::with_capacity(n);
        for chunk_res in chunks {
            for (fp, plan, cost) in chunk_res {
                let id = *ids.entry(fp).or_insert_with(|| {
                    plans.push(plan.expect("first occurrence carries the plan"));
                    (plans.len() - 1) as u32
                });
                optimal.push(id);
                opt_cost.push(cost);
            }
        }
        PlanDiagram {
            ess: ess.clone(),
            plans,
            optimal,
            opt_cost,
        }
    }

    /// Single-threaded build (useful for tests and small grids).
    pub fn build_serial(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
    ) -> Self {
        let opt = Optimizer::new(catalog, query, model);
        let n = ess.num_points();
        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut ids: HashMap<PlanFingerprint, u32> = HashMap::new();
        let mut optimal = Vec::with_capacity(n);
        let mut opt_cost = Vec::with_capacity(n);
        for li in 0..n {
            let ix = ess.unlinear(li);
            let best = opt.optimize(&ess.point(&ix));
            let fp = best.plan.fingerprint();
            let id = *ids.entry(fp).or_insert_with(|| {
                plans.push(best.plan.clone());
                (plans.len() - 1) as u32
            });
            optimal.push(id);
            opt_cost.push(best.cost);
        }
        PlanDiagram {
            ess: ess.clone(),
            plans,
            optimal,
            opt_cost,
        }
    }

    /// Rebuild the diagram after a catalog / cost-model drift, reusing a
    /// previously computed diagram for the *same ESS* as a per-point
    /// incumbent oracle: at each grid point the cached winner is recosted
    /// under the drifted statistics (one compiled-program evaluation) and
    /// fed to [`Optimizer::optimize_bounded`] as the upper bound. Points
    /// whose winner survived prune almost the entire memo; points whose
    /// winner changed pay (at most) a full DP. Either way
    /// `optimize_bounded` is exact for any bound, so the result is
    /// **bitwise identical** to a from-scratch [`build_with`]
    /// (PlanDiagram::build_with) under the new statistics — enforced in
    /// tests. If the cached diagram's ESS (or shape) does not match, the
    /// incremental path is unsound and we fall back to a full rebuild,
    /// reported in the stats.
    pub fn build_incremental(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
        prev: &PlanDiagram,
        par: Parallelism,
    ) -> (Self, IncrementalDiagramStats) {
        let n = ess.num_points();
        if prev.ess != *ess
            || prev.optimal.len() != n
            || prev.opt_cost.len() != n
            || prev.plans.is_empty()
            || prev.optimal.iter().any(|&p| p as usize >= prev.plans.len())
        {
            let d = Self::build_with(catalog, query, model, ess, par);
            return (
                d,
                IncrementalDiagramStats {
                    chunks_total: 0,
                    chunks_changed: 0,
                    points_total: n,
                    points_changed: n,
                    full_rebuild: true,
                },
            );
        }
        let par = par.for_grid(n);
        let prev_progs: Vec<CostProgram> = prev
            .plans
            .iter()
            .map(|p| CostProgram::compile(catalog, query, model, &p.root))
            .collect();
        let chunks = run_chunked(par, n, |_, range| {
            let opt = Optimizer::new(catalog, query, model);
            let mut seen: HashMap<PlanFingerprint, ()> = HashMap::new();
            let mut out = Vec::with_capacity(range.len());
            let mut ix = Vec::new();
            let mut q = Vec::new();
            let mut stack = Vec::new();
            let mut changed = 0usize;
            for li in range {
                ess.unlinear_into(li, &mut ix);
                ess.point_into(&ix, &mut q);
                let cached = prev.optimal[li] as usize;
                let bound = prev_progs[cached].eval_with(&q, &mut stack).cost;
                let best = opt.optimize_bounded(&q, bound);
                let fp = best.plan.fingerprint();
                if fp != prev.plans[cached].fingerprint() {
                    changed += 1;
                }
                let plan = if seen.insert(fp, ()).is_none() {
                    Some(best.plan)
                } else {
                    None
                };
                out.push((fp, plan, best.cost));
            }
            (out, changed)
        });

        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut ids: HashMap<PlanFingerprint, u32> = HashMap::new();
        let mut optimal = Vec::with_capacity(n);
        let mut opt_cost = Vec::with_capacity(n);
        let mut stats = IncrementalDiagramStats {
            chunks_total: chunks.len(),
            chunks_changed: 0,
            points_total: n,
            points_changed: 0,
            full_rebuild: false,
        };
        for (chunk_res, changed) in chunks {
            if changed > 0 {
                stats.chunks_changed += 1;
                stats.points_changed += changed;
            }
            for (fp, plan, cost) in chunk_res {
                let id = *ids.entry(fp).or_insert_with(|| {
                    plans.push(plan.expect("first occurrence carries the plan"));
                    (plans.len() - 1) as u32
                });
                optimal.push(id);
                opt_cost.push(cost);
            }
        }
        (
            PlanDiagram {
                ess: ess.clone(),
                plans,
                optimal,
                opt_cost,
            },
            stats,
        )
    }

    /// Number of distinct POSP plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Number of grid points owned by each plan.
    pub fn region_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.plans.len()];
        for &p in &self.optimal {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Minimum and maximum optimal cost over the grid — C_min and C_max of
    /// the PIC. By PCM these occur at the origin and terminus corners.
    pub fn cost_bounds(&self) -> (f64, f64) {
        let cmin = self.opt_cost[self.ess.linear(&self.ess.origin())];
        let cmax = self.opt_cost[self.ess.linear(&self.ess.terminus())];
        (cmin, cmax)
    }

    /// ASCII rendering of a 2D plan diagram: one letter per grid cell, row 0
    /// at the bottom (selectivities grow up and right, as in the paper's
    /// figures). Plans beyond 26 wrap through the alphabet.
    pub fn render_2d(&self) -> String {
        assert_eq!(self.ess.d(), 2, "render_2d requires a 2D diagram");
        let (rx, ry) = (self.ess.res[0], self.ess.res[1]);
        let mut out = String::new();
        for y in (0..ry).rev() {
            for x in 0..rx {
                let pid = self.optimal[self.ess.linear(&[x, y])] as usize;
                out.push((b'A' + (pid % 26) as u8) as char);
            }
            out.push('\n');
        }
        out
    }

    /// Cost of every plan at every grid point (row-major `[plan][point]`),
    /// computed in parallel. This is the input to anorexic reduction and to
    /// exact NAT worst-case metrics.
    pub fn cost_matrix(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
    ) -> CostMatrix {
        self.cost_matrix_with(catalog, query, model, Parallelism::auto())
    }

    /// Cost matrix with an explicit worker policy. Every POSP plan is
    /// compiled once into a [`CostProgram`], then handed to
    /// [`matrix_for_programs`]: grid points are materialized once into a
    /// flat buffer and workers evaluate cells with a reusable stack — the
    /// inner loop performs no allocation and no tree walk. Parallelism is
    /// gated on the plans × points cell count (the phase's actual work
    /// volume), not the grid size. Results are bit-identical to
    /// [`cost_matrix_reference`](PlanDiagram::cost_matrix_reference).
    pub fn cost_matrix_with(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        par: Parallelism,
    ) -> CostMatrix {
        let progs: Vec<CostProgram> = self
            .plans
            .iter()
            .map(|p| CostProgram::compile(catalog, query, model, &p.root))
            .collect();
        matrix_for_programs(&progs, &self.ess, par)
    }

    /// Reference cost matrix via the recursive [`Coster`] tree walk
    /// (serial). Kept to pin the compiled path bit-for-bit and to measure
    /// its speedup.
    pub fn cost_matrix_reference(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
    ) -> CostMatrix {
        let c = Coster::new(catalog, query, model);
        let n = self.ess.num_points();
        let mut m = CostMatrix::new(n);
        let mut row = Vec::with_capacity(n);
        for plan in &self.plans {
            row.clear();
            for li in 0..n {
                row.push(c.plan_cost(&plan.root, &self.ess.point(&self.ess.unlinear(li))));
            }
            m.push_row(&row);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::EssDim;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn setup_1d() -> (pb_catalog::Catalog, QuerySpec, CostModel, Ess) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 64);
        (cat.clone(), q, CostModel::postgresish(), ess)
    }

    #[test]
    fn diagram_has_multiple_posp_plans() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        assert!(
            d.plan_count() >= 3,
            "1D EQ diagram should have several POSP plans, got {}",
            d.plan_count()
        );
        assert_eq!(d.optimal.len(), 64);
        assert_eq!(d.region_sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn pic_is_monotone_1d() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        for w in d.opt_cost.windows(2) {
            assert!(w[1] >= w[0] * (1.0 - 1e-9), "PIC not monotone: {w:?}");
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (cat, q, m, ess) = setup_1d();
        let a = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let b = PlanDiagram::build(&cat, &q, &m, &ess);
        assert_eq!(a.opt_cost, b.opt_cost);
        assert_eq!(a.plan_count(), b.plan_count());
        // Plan assignment must agree modulo plan-id renumbering.
        for li in 0..ess.num_points() {
            assert_eq!(
                a.plans[a.optimal[li] as usize].fingerprint(),
                b.plans[b.optimal[li] as usize].fingerprint()
            );
        }
    }

    #[test]
    fn cost_bounds_are_grid_extremes() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let (cmin, cmax) = d.cost_bounds();
        assert!(cmin > 0.0 && cmax > cmin);
        let lo = d.opt_cost.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = d.opt_cost.iter().cloned().fold(0.0, f64::max);
        assert!((cmin - lo).abs() < 1e-9 * lo);
        assert!((cmax - hi).abs() < 1e-9 * hi);
    }

    #[test]
    fn render_2d_shape_and_regions() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq2");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![EssDim::new("a", 1e-4, 1.0), EssDim::new("b", 1e-8, 5e-6)],
            12,
        );
        let d = PlanDiagram::build_serial(&cat, &q, &CostModel::postgresish(), &ess);
        let art = d.render_2d();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
        // More than one plan letter appears.
        let letters: std::collections::BTreeSet<char> =
            art.chars().filter(|c| c.is_alphabetic()).collect();
        assert!(letters.len() >= 2, "{art}");
    }

    #[test]
    fn cost_matrix_diag_matches_opt_cost() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let cm = d.cost_matrix(&cat, &q, &m);
        assert_eq!(cm.len(), d.plan_count());
        for li in 0..ess.num_points() {
            let pid = d.optimal[li] as usize;
            assert!(
                (cm[pid][li] - d.opt_cost[li]).abs() < 1e-6 * d.opt_cost[li],
                "matrix disagrees with diagram at point {li}"
            );
            // Optimality: no plan is cheaper than the diagram's optimum.
            for row in cm.rows() {
                assert!(row[li] >= d.opt_cost[li] * (1.0 - 1e-9));
            }
        }
    }

    #[test]
    fn compiled_matrix_matches_tree_walk_bitwise() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let compiled = d.cost_matrix_with(&cat, &q, &m, Parallelism::new(3));
        let reference = d.cost_matrix_reference(&cat, &q, &m);
        assert_eq!(compiled.len(), reference.len());
        for (a, b) in compiled.as_flat().iter().zip(reference.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn incremental_rebuild_matches_fresh_build_bitwise_under_drift() {
        let (cat, q, m, ess) = setup_1d();
        let prev = PlanDiagram::build_with(&cat, &q, &m, &ess, Parallelism::serial());
        // Mild statistics drift: same schema, slightly larger base tables.
        let drifted = tpch::catalog(1.05);
        for par in [Parallelism::serial(), Parallelism::new(4)] {
            let fresh = PlanDiagram::build_with(&drifted, &q, &m, &ess, par);
            let (inc, stats) = PlanDiagram::build_incremental(&drifted, &q, &m, &ess, &prev, par);
            assert!(!stats.full_rebuild);
            assert_eq!(stats.points_total, ess.num_points());
            assert_eq!(inc.optimal, fresh.optimal);
            assert_eq!(inc.plan_count(), fresh.plan_count());
            for (a, b) in inc.opt_cost.iter().zip(&fresh.opt_cost) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in inc.plans.iter().zip(&fresh.plans) {
                assert_eq!(a.fingerprint(), b.fingerprint());
            }
        }
    }

    #[test]
    fn incremental_rebuild_with_no_drift_reports_zero_changes() {
        let (cat, q, m, ess) = setup_1d();
        let prev = PlanDiagram::build_with(&cat, &q, &m, &ess, Parallelism::serial());
        let (inc, stats) =
            PlanDiagram::build_incremental(&cat, &q, &m, &ess, &prev, Parallelism::serial());
        assert!(!stats.full_rebuild);
        assert_eq!(stats.points_changed, 0);
        assert_eq!(stats.chunks_changed, 0);
        assert_eq!(inc.optimal, prev.optimal);
        for (a, b) in inc.opt_cost.iter().zip(&prev.opt_cost) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn incremental_rebuild_falls_back_on_grid_mismatch() {
        let (cat, q, m, ess) = setup_1d();
        let prev = PlanDiagram::build_with(&cat, &q, &m, &ess, Parallelism::serial());
        let other = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 32);
        let fresh = PlanDiagram::build_with(&cat, &q, &m, &other, Parallelism::serial());
        let (inc, stats) =
            PlanDiagram::build_incremental(&cat, &q, &m, &other, &prev, Parallelism::serial());
        assert!(stats.full_rebuild);
        assert_eq!(inc.optimal, fresh.optimal);
        for (a, b) in inc.opt_cost.iter().zip(&fresh.opt_cost) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pruned_build_matches_unpruned_bitwise() {
        let (cat, q, m, ess) = setup_1d();
        for par in [Parallelism::serial(), Parallelism::new(4)] {
            let pruned = PlanDiagram::build_with(&cat, &q, &m, &ess, par);
            let unpruned = PlanDiagram::build_with_unpruned(&cat, &q, &m, &ess, par);
            assert_eq!(pruned.optimal, unpruned.optimal);
            assert_eq!(pruned.plan_count(), unpruned.plan_count());
            for (a, b) in pruned.opt_cost.iter().zip(&unpruned.opt_cost) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in pruned.plans.iter().zip(&unpruned.plans) {
                assert_eq!(a.fingerprint(), b.fingerprint());
            }
        }
    }
}
