//! Plan diagrams: exhaustive optimization over the ESS grid.
//!
//! A plan diagram (Harish et al., VLDB 2007) maps every grid point of the
//! error-prone selectivity space to its optimal plan and optimal cost. The
//! distinct plans form the *parametric optimal set of plans* (POSP) and the
//! per-point optimal costs form the *POSP infimum curve* (PIC) that the
//! bouquet discretizes (paper, Sections 1 and 4.2).

use std::collections::HashMap;

use pb_catalog::Catalog;
use pb_cost::{run_chunked, CostModel, Coster, Ess, Parallelism};
use pb_plan::{PhysicalPlan, PlanFingerprint, QuerySpec};

use crate::dp::Optimizer;

/// Index into a diagram's `plans` vector.
pub type PlanId = usize;

/// Optimal plan + cost at every grid point of an ESS.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PlanDiagram {
    pub ess: Ess,
    /// Distinct optimal plans (the POSP set).
    pub plans: Vec<PhysicalPlan>,
    /// Per linear grid index: which plan is optimal.
    pub optimal: Vec<u32>,
    /// Per linear grid index: the optimal (PIC) cost.
    pub opt_cost: Vec<f64>,
}

impl PlanDiagram {
    /// Build the diagram by optimizing at every grid point, using all
    /// available cores (the task is embarrassingly parallel).
    pub fn build(catalog: &Catalog, query: &QuerySpec, model: &CostModel, ess: &Ess) -> Self {
        Self::build_with(catalog, query, model, ess, Parallelism::auto())
    }

    /// Build with an explicit worker policy. Output is identical for every
    /// worker count: workers claim fixed-boundary chunks of the linear grid
    /// order, chunks are merged back in grid order, and plans are numbered
    /// by first appearance in that order — exactly the sequential numbering.
    pub fn build_with(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
        par: Parallelism,
    ) -> Self {
        let n = ess.num_points();
        // Per chunk: (fingerprint, plan-at-local-first-occurrence, cost).
        let chunks = run_chunked(par, n, |_, range| {
            let opt = Optimizer::new(catalog, query, model);
            let mut seen: HashMap<PlanFingerprint, ()> = HashMap::new();
            let mut out = Vec::with_capacity(range.len());
            for li in range {
                let ix = ess.unlinear(li);
                let best = opt.optimize(&ess.point(&ix));
                let fp = best.plan.fingerprint();
                let plan = if seen.insert(fp, ()).is_none() {
                    Some(best.plan)
                } else {
                    None
                };
                out.push((fp, plan, best.cost));
            }
            out
        });

        // Merge in chunk (= grid) order. The first chunk containing a
        // fingerprint carries its plan, because each worker records the plan
        // at the fingerprint's first occurrence within its own chunk.
        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut ids: HashMap<PlanFingerprint, u32> = HashMap::new();
        let mut optimal = Vec::with_capacity(n);
        let mut opt_cost = Vec::with_capacity(n);
        for chunk_res in chunks {
            for (fp, plan, cost) in chunk_res {
                let id = *ids.entry(fp).or_insert_with(|| {
                    plans.push(plan.expect("first occurrence carries the plan"));
                    (plans.len() - 1) as u32
                });
                optimal.push(id);
                opt_cost.push(cost);
            }
        }
        PlanDiagram {
            ess: ess.clone(),
            plans,
            optimal,
            opt_cost,
        }
    }

    /// Single-threaded build (useful for tests and small grids).
    pub fn build_serial(
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        ess: &Ess,
    ) -> Self {
        let opt = Optimizer::new(catalog, query, model);
        let n = ess.num_points();
        let mut plans: Vec<PhysicalPlan> = Vec::new();
        let mut ids: HashMap<PlanFingerprint, u32> = HashMap::new();
        let mut optimal = Vec::with_capacity(n);
        let mut opt_cost = Vec::with_capacity(n);
        for li in 0..n {
            let ix = ess.unlinear(li);
            let best = opt.optimize(&ess.point(&ix));
            let fp = best.plan.fingerprint();
            let id = *ids.entry(fp).or_insert_with(|| {
                plans.push(best.plan.clone());
                (plans.len() - 1) as u32
            });
            optimal.push(id);
            opt_cost.push(best.cost);
        }
        PlanDiagram {
            ess: ess.clone(),
            plans,
            optimal,
            opt_cost,
        }
    }

    /// Number of distinct POSP plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Number of grid points owned by each plan.
    pub fn region_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.plans.len()];
        for &p in &self.optimal {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Minimum and maximum optimal cost over the grid — C_min and C_max of
    /// the PIC. By PCM these occur at the origin and terminus corners.
    pub fn cost_bounds(&self) -> (f64, f64) {
        let cmin = self.opt_cost[self.ess.linear(&self.ess.origin())];
        let cmax = self.opt_cost[self.ess.linear(&self.ess.terminus())];
        (cmin, cmax)
    }

    /// ASCII rendering of a 2D plan diagram: one letter per grid cell, row 0
    /// at the bottom (selectivities grow up and right, as in the paper's
    /// figures). Plans beyond 26 wrap through the alphabet.
    pub fn render_2d(&self) -> String {
        assert_eq!(self.ess.d(), 2, "render_2d requires a 2D diagram");
        let (rx, ry) = (self.ess.res[0], self.ess.res[1]);
        let mut out = String::new();
        for y in (0..ry).rev() {
            for x in 0..rx {
                let pid = self.optimal[self.ess.linear(&[x, y])] as usize;
                out.push((b'A' + (pid % 26) as u8) as char);
            }
            out.push('\n');
        }
        out
    }

    /// Cost of every plan at every grid point (row-major `[plan][point]`),
    /// computed in parallel. This is the input to anorexic reduction and to
    /// exact NAT worst-case metrics.
    pub fn cost_matrix(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
    ) -> Vec<Vec<f64>> {
        self.cost_matrix_with(catalog, query, model, Parallelism::auto())
    }

    /// Cost matrix with an explicit worker policy. Work is chunked over the
    /// flattened plans × grid space so skew between plans (deep trees cost
    /// more to re-cost) still balances across workers.
    pub fn cost_matrix_with(
        &self,
        catalog: &Catalog,
        query: &QuerySpec,
        model: &CostModel,
        par: Parallelism,
    ) -> Vec<Vec<f64>> {
        let n = self.ess.num_points();
        let total = self.plans.len() * n;
        let ess = &self.ess;
        let chunks = run_chunked(par, total, |_, range| {
            let c = Coster::new(catalog, query, model);
            range
                .map(|i| {
                    let plan = &self.plans[i / n];
                    c.plan_cost(&plan.root, &ess.point(&ess.unlinear(i % n)))
                })
                .collect::<Vec<f64>>()
        });
        let mut flat = Vec::with_capacity(total);
        for chunk in chunks {
            flat.extend(chunk);
        }
        flat.chunks(n.max(1)).map(|row| row.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::EssDim;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn setup_1d() -> (pb_catalog::Catalog, QuerySpec, CostModel, Ess) {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 64);
        (cat.clone(), q, CostModel::postgresish(), ess)
    }

    #[test]
    fn diagram_has_multiple_posp_plans() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        assert!(
            d.plan_count() >= 3,
            "1D EQ diagram should have several POSP plans, got {}",
            d.plan_count()
        );
        assert_eq!(d.optimal.len(), 64);
        assert_eq!(d.region_sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn pic_is_monotone_1d() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        for w in d.opt_cost.windows(2) {
            assert!(w[1] >= w[0] * (1.0 - 1e-9), "PIC not monotone: {w:?}");
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (cat, q, m, ess) = setup_1d();
        let a = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let b = PlanDiagram::build(&cat, &q, &m, &ess);
        assert_eq!(a.opt_cost, b.opt_cost);
        assert_eq!(a.plan_count(), b.plan_count());
        // Plan assignment must agree modulo plan-id renumbering.
        for li in 0..ess.num_points() {
            assert_eq!(
                a.plans[a.optimal[li] as usize].fingerprint(),
                b.plans[b.optimal[li] as usize].fingerprint()
            );
        }
    }

    #[test]
    fn cost_bounds_are_grid_extremes() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let (cmin, cmax) = d.cost_bounds();
        assert!(cmin > 0.0 && cmax > cmin);
        let lo = d.opt_cost.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = d.opt_cost.iter().cloned().fold(0.0, f64::max);
        assert!((cmin - lo).abs() < 1e-9 * lo);
        assert!((cmax - hi).abs() < 1e-9 * hi);
    }

    #[test]
    fn render_2d_shape_and_regions() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "eq2");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![EssDim::new("a", 1e-4, 1.0), EssDim::new("b", 1e-8, 5e-6)],
            12,
        );
        let d = PlanDiagram::build_serial(&cat, &q, &CostModel::postgresish(), &ess);
        let art = d.render_2d();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
        // More than one plan letter appears.
        let letters: std::collections::BTreeSet<char> =
            art.chars().filter(|c| c.is_alphabetic()).collect();
        assert!(letters.len() >= 2, "{art}");
    }

    #[test]
    fn cost_matrix_diag_matches_opt_cost() {
        let (cat, q, m, ess) = setup_1d();
        let d = PlanDiagram::build_serial(&cat, &q, &m, &ess);
        let cm = d.cost_matrix(&cat, &q, &m);
        assert_eq!(cm.len(), d.plan_count());
        for li in 0..ess.num_points() {
            let pid = d.optimal[li] as usize;
            assert!(
                (cm[pid][li] - d.opt_cost[li]).abs() < 1e-6 * d.opt_cost[li],
                "matrix disagrees with diagram at point {li}"
            );
            // Optimality: no plan is cheaper than the diagram's optimum.
            for row in &cm {
                assert!(row[li] >= d.opt_cost[li] * (1.0 - 1e-9));
            }
        }
    }
}
