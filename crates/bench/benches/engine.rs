//! Tuple-engine benchmarks: data generation, full plan execution, budgeted
//! (aborting) execution, and spill-mode prefix execution — the primitives of
//! the Table 3 run-time experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_bouquet::{Bouquet, BouquetConfig};
use pb_engine::{Database, Engine};
use pb_executor::learnable_node;
use pb_workloads::h_q8a_2d;

fn bench_engine(c: &mut Criterion) {
    let w = h_q8a_2d(0.01);
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
    let engine = Engine::new(&db, &w.query, &w.model.p);
    let plan = &b.plan(b.plan_ids()[0]).root;
    let full_cost = engine.execute(plan, f64::INFINITY).cost();

    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("generate_sf0.01", |bch| {
        bch.iter(|| {
            black_box(
                Database::generate(&w.catalog, 42, &[])
                    .expect("generate")
                    .catalog
                    .len(),
            )
        })
    });
    g.bench_function("full_execution", |bch| {
        bch.iter(|| black_box(engine.execute(black_box(plan), f64::INFINITY).cost()))
    });
    g.bench_function("budgeted_abort_10pct", |bch| {
        bch.iter(|| black_box(engine.execute(black_box(plan), full_cost * 0.1).cost()))
    });
    let resolved = vec![false; w.d()];
    if let Some((node, _)) = learnable_node(plan, &w.query, &resolved) {
        let spilled = node.clone().spilled();
        g.bench_function("spilled_prefix_execution", |bch| {
            bch.iter(|| black_box(engine.execute(black_box(&spilled), f64::INFINITY).cost()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
