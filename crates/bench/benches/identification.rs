//! Compile-time benchmarks: plan-diagram construction (serial vs parallel),
//! contour-band exploration, anorexic reduction, and full bouquet
//! identification — the Section 6.1 cost centres.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_bouquet::{band, Bouquet, BouquetConfig};
use pb_cost::{CostProgram, Coster, Parallelism};
use pb_optimizer::{AnorexicReduction, PlanDiagram};
use pb_workloads::by_name;

fn bench_diagram(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let mut g = c.benchmark_group("plan_diagram_2304pts");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            black_box(PlanDiagram::build_serial(
                &w.catalog, &w.query, &w.model, &w.ess,
            ))
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| black_box(PlanDiagram::build(&w.catalog, &w.query, &w.model, &w.ess)))
    });
    g.bench_function("contour_band", |b| {
        b.iter(|| black_box(band::explore(&w, 2.0).optimizer_calls))
    });
    g.finish();
}

fn bench_anorexic(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let d = PlanDiagram::build(&w.catalog, &w.query, &w.model, &w.ess);
    let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
    c.bench_function("anorexic_reduction_full_diagram", |b| {
        b.iter(|| black_box(AnorexicReduction::reduce(&d, &costs, 0.2).plan_count()))
    });
}

/// Compiled-program evaluation vs the recursive tree walk: one POSP plan
/// re-costed at every ESS grid point of the TPC-H 2D workload.
fn bench_cost_paths(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let d = PlanDiagram::build(&w.catalog, &w.query, &w.model, &w.ess);
    let plan = &d.plans[d.optimal[0] as usize].root;
    let coster = Coster::new(&w.catalog, &w.query, &w.model);
    let prog = CostProgram::compile(&w.catalog, &w.query, &w.model, plan);
    let points = w.ess.points_flat();
    let dims = w.ess.d();
    let n = w.ess.num_points();

    let mut g = c.benchmark_group("plan_recost_grid");
    g.bench_function("tree_walk", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for li in 0..n {
                acc += coster.plan_cost(plan, &points[li * dims..(li + 1) * dims]);
            }
            black_box(acc)
        })
    });
    g.bench_function("compiled_program", |b| {
        let mut stack = Vec::new();
        b.iter(|| {
            let mut acc = 0.0;
            for li in 0..n {
                acc += prog
                    .eval_with(&points[li * dims..(li + 1) * dims], &mut stack)
                    .cost;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Incumbent-bound-pruned diagram build vs the plain DP everywhere, both
/// serial (isolates the pruning win from parallel speedup).
fn bench_pruned_build(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let mut g = c.benchmark_group("diagram_build_serial");
    g.sample_size(10);
    g.bench_function("unpruned", |b| {
        b.iter(|| {
            black_box(PlanDiagram::build_with_unpruned(
                &w.catalog,
                &w.query,
                &w.model,
                &w.ess,
                Parallelism::serial(),
            ))
        })
    });
    g.bench_function("bound_pruned", |b| {
        b.iter(|| {
            black_box(PlanDiagram::build_with(
                &w.catalog,
                &w.query,
                &w.model,
                &w.ess,
                Parallelism::serial(),
            ))
        })
    });
    g.finish();
}

fn bench_identify(c: &mut Criterion) {
    let mut g = c.benchmark_group("bouquet_identify");
    g.sample_size(10);
    for name in ["EQ_1D", "2D_H_Q8A", "3D_H_Q5"] {
        let w = by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Bouquet::identify(&w, &BouquetConfig::default())
                        .unwrap()
                        .rho(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_diagram,
    bench_anorexic,
    bench_cost_paths,
    bench_pruned_build,
    bench_identify
);
criterion_main!(benches);
