//! Compile-time benchmarks: plan-diagram construction (serial vs parallel),
//! contour-band exploration, anorexic reduction, and full bouquet
//! identification — the Section 6.1 cost centres.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_bouquet::{band, Bouquet, BouquetConfig};
use pb_optimizer::{AnorexicReduction, PlanDiagram};
use pb_workloads::by_name;

fn bench_diagram(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let mut g = c.benchmark_group("plan_diagram_2304pts");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            black_box(PlanDiagram::build_serial(
                &w.catalog, &w.query, &w.model, &w.ess,
            ))
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| black_box(PlanDiagram::build(&w.catalog, &w.query, &w.model, &w.ess)))
    });
    g.bench_function("contour_band", |b| {
        b.iter(|| black_box(band::explore(&w, 2.0).optimizer_calls))
    });
    g.finish();
}

fn bench_anorexic(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let d = PlanDiagram::build(&w.catalog, &w.query, &w.model, &w.ess);
    let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
    c.bench_function("anorexic_reduction_full_diagram", |b| {
        b.iter(|| black_box(AnorexicReduction::reduce(&d, &costs, 0.2).plan_count()))
    });
}

fn bench_identify(c: &mut Criterion) {
    let mut g = c.benchmark_group("bouquet_identify");
    g.sample_size(10);
    for name in ["EQ_1D", "2D_H_Q8A", "3D_H_Q5"] {
        let w = by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Bouquet::identify(&w, &BouquetConfig::default())
                        .unwrap()
                        .rho(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_diagram, bench_anorexic, bench_identify);
criterion_main!(benches);
