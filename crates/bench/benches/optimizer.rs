//! Optimizer micro-benchmarks: single optimization latency (the unit of
//! POSP-generation work) and abstract plan recosting throughput (the unit of
//! metric-evaluation and anorexic-reduction work).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_workloads::{by_name, eq_1d};

fn bench_optimize(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimize_at_point");
    for name in ["EQ_1D", "3D_H_Q5", "4D_H_Q8", "5D_DS_Q19"] {
        let w = by_name(name).unwrap();
        let opt = w.optimizer();
        let q = w.ess.point_at_fractions(&vec![0.5; w.d()]);
        g.bench_function(name, |b| {
            b.iter(|| black_box(opt.optimize(black_box(&q)).cost))
        });
    }
    g.finish();
}

fn bench_recost(c: &mut Criterion) {
    let mut g = c.benchmark_group("abstract_plan_costing");
    for name in ["EQ_1D", "5D_DS_Q19"] {
        let w = by_name(name).unwrap();
        let opt = w.optimizer();
        let coster = w.coster();
        let q_hi = w.ess.point_at_fractions(&vec![0.9; w.d()]);
        let q_lo = w.ess.point_at_fractions(&vec![0.1; w.d()]);
        let plan = opt.optimize(&q_hi).plan;
        g.bench_function(name, |b| {
            b.iter(|| black_box(coster.plan_cost(black_box(&plan.root), black_box(&q_lo))))
        });
    }
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let w = eq_1d();
    let est = pb_cost::Estimator::new(&w.catalog);
    let lo: Vec<f64> = w.ess.dims.iter().map(|d| d.lo).collect();
    let hi: Vec<f64> = w.ess.dims.iter().map(|d| d.hi).collect();
    c.bench_function("avi_estimate_point", |b| {
        b.iter(|| black_box(est.estimate_point(black_box(&w.query), &lo, &hi)))
    });
}

criterion_group!(benches, bench_optimize, bench_recost, bench_estimator);
criterion_main!(benches);
