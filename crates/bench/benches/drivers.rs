//! Run-time driver benchmarks: per-query discovery cost of the basic
//! (Figure 7) and optimized (Figure 13) drivers at shallow / mid / deep
//! true locations, plus the full-grid metric evaluation used by the
//! Figures 14–17 experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_bouquet::eval::run_profile;
use pb_bouquet::{Bouquet, BouquetConfig};
use pb_workloads::by_name;

fn bench_drivers(c: &mut Criterion) {
    let w = by_name("3D_H_Q5").unwrap();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let mut g = c.benchmark_group("discovery_run");
    for (label, f) in [("shallow", 0.1), ("mid", 0.5), ("deep", 0.9)] {
        let qa = w.ess.point_at_fractions(&vec![f; w.d()]);
        g.bench_function(format!("basic_{label}"), |bch| {
            bch.iter(|| black_box(b.run_basic(black_box(&qa)).expect("run").total_cost))
        });
        g.bench_function(format!("optimized_{label}"), |bch| {
            bch.iter(|| black_box(b.run_optimized(black_box(&qa)).expect("run").total_cost))
        });
    }
    g.finish();
}

fn bench_grid_profile(c: &mut Criterion) {
    let w = by_name("2D_H_Q8A").unwrap();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let mut g = c.benchmark_group("grid_profile_2304pts");
    g.sample_size(10);
    g.bench_function("basic_driver", |bch| {
        bch.iter(|| black_box(run_profile(&b, false).expect("profile").len()))
    });
    g.bench_function("optimized_driver", |bch| {
        bch.iter(|| black_box(run_profile(&b, true).expect("profile").len()))
    });
    g.finish();
}

criterion_group!(benches, bench_drivers, bench_grid_profile);
criterion_main!(benches);
