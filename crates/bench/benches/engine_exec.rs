//! Vectorized vs tuple-at-a-time execution benchmarks. Both paths run the
//! same plans on the same database so the criterion report directly shows
//! the batch-kernel speedup, for full runs and for budget-aborted runs
//! (where the vectorized path has to detect the crossing batch and replay
//! it tuple-exactly).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_engine::{Database, Engine};
use pb_plan::PlanNode;
use pb_workloads::h_q8a_2d;

fn bench_engine_exec(c: &mut Criterion) {
    let w = h_q8a_2d(0.01);
    let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
    let engine = Engine::new(&db, &w.query, &w.model.p);
    // part ⋈ lineitem ⋈ orders as a hash-join chain: the bread-and-butter
    // plan shape where columnar batching pays the most.
    let plan = PlanNode::HashJoin {
        build: Box::new(PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        }),
        probe: Box::new(PlanNode::SeqScan { rel: 2 }),
        edges: vec![1],
    };
    let full_cost = engine.execute_tuple(&plan, f64::INFINITY).cost();
    assert_eq!(
        engine.execute_tuple(&plan, f64::INFINITY),
        engine.execute_vectorized(&plan, f64::INFINITY),
        "engines must agree before we benchmark them"
    );

    let mut g = c.benchmark_group("engine_exec");
    g.sample_size(20);
    g.bench_function("tuple_full", |bch| {
        bch.iter(|| black_box(engine.execute_tuple(black_box(&plan), f64::INFINITY).cost()))
    });
    g.bench_function("vectorized_full", |bch| {
        bch.iter(|| {
            black_box(
                engine
                    .execute_vectorized(black_box(&plan), f64::INFINITY)
                    .cost(),
            )
        })
    });
    g.bench_function("tuple_abort_20pct", |bch| {
        bch.iter(|| {
            black_box(
                engine
                    .execute_tuple(black_box(&plan), full_cost * 0.2)
                    .cost(),
            )
        })
    });
    g.bench_function("vectorized_abort_20pct", |bch| {
        bch.iter(|| {
            black_box(
                engine
                    .execute_vectorized(black_box(&plan), full_cost * 0.2)
                    .cost(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_exec);
criterion_main!(benches);
