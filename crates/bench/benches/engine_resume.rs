//! Checkpoint/resume benchmarks: the contour-style budget ladder (the same
//! plan re-granted ever larger budgets until it completes) executed cold —
//! every rung restarts from scratch — against resumed, where each rung
//! fast-forwards through the completed operator prefix of the previous one.
//! The criterion report directly shows the re-execution waste recovered.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pb_engine::{Database, Engine, ResumeBook};
use pb_plan::PlanNode;
use pb_workloads::h_q8a_2d;

/// Ascending contour-style budget fractions ending in completion.
const LADDER: [f64; 5] = [0.02, 0.1, 0.4, 0.75, 1.0];

fn bench_engine_resume(c: &mut Criterion) {
    let w = h_q8a_2d(0.01);
    let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
    let engine = Engine::new(&db, &w.query, &w.model.p);
    let plan = PlanNode::HashJoin {
        build: Box::new(PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        }),
        probe: Box::new(PlanNode::SeqScan { rel: 2 }),
        edges: vec![1],
    };
    let full_cost = engine.execute(&plan, f64::INFINITY).cost();

    // Sanity: with resume the ladder must pay strictly less than cold.
    {
        let mut book = ResumeBook::new();
        let mut reused_total = 0.0;
        for frac in LADDER {
            let budget = full_cost * frac;
            let plain = engine.execute(&plan, budget);
            let (resumed, reused) = engine.execute_resumable(&plan, budget, &mut book);
            assert_eq!(plain, resumed, "resume must be outcome-identical");
            reused_total += reused;
        }
        assert!(reused_total > 0.0, "reuse must engage on the ladder");
    }

    let mut g = c.benchmark_group("engine_resume");
    g.sample_size(20);
    g.bench_function("ladder_cold", |bch| {
        bch.iter(|| {
            let mut spent = 0.0;
            for frac in LADDER {
                spent += engine.execute(black_box(&plan), full_cost * frac).cost();
            }
            black_box(spent)
        })
    });
    g.bench_function("ladder_resumed", |bch| {
        bch.iter(|| {
            let mut book = ResumeBook::new();
            let mut paid = 0.0;
            for frac in LADDER {
                let (out, reused) =
                    engine.execute_resumable(black_box(&plan), full_cost * frac, &mut book);
                paid += out.cost() - reused;
            }
            black_box(paid)
        })
    });
    // The pure fast-forward path: replaying an already-completed plan.
    g.bench_function("completed_replay", |bch| {
        let mut book = ResumeBook::new();
        engine.execute_resumable(&plan, f64::INFINITY, &mut book);
        bch.iter(|| {
            black_box(
                engine
                    .execute_resumable(black_box(&plan), f64::INFINITY, &mut book)
                    .0
                    .cost(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_resume);
criterion_main!(benches);
