//! Benchmark/reproduction harness library.
//!
//! Shared helpers for the `repro` binary (which regenerates every table and
//! figure of the paper) and the Criterion benches: table rendering, result
//! serialization, and the engine-backed bouquet driver used for the Table 3
//! run-time experiment.

pub mod calibration;
pub mod chaos;
pub mod engine_driver;
pub mod regress;
pub mod serve;
pub mod table;

pub use engine_driver::{
    engine_run_bouquet, engine_run_bouquet_with, engine_run_nat, EngineRunReport,
};
pub use table::Table;

pub mod experiments;
