//! Figure 19: the commercial-engine ("COM") validation of Section 6.8.
//!
//! COM's API cannot inject join selectivities, so the paper's COM queries
//! use selection-predicate dimensions only (settable by changing query
//! constants). We reproduce both properties: the error dimensions of
//! `3D_H_Q5B` / `4D_H_Q8B` are base-relation selections, and the costing is
//! done by the commercial cost-model personality.

use std::fmt::Write as _;

use pb_bouquet::eval::{evaluate, EvalConfig};
use pb_workloads::{h_q5b_3d_com, h_q8b_4d_com};

use crate::table::{fnum, Table};

pub fn fig19() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 19 — commercial engine personality (Section 6.8)\n\
         (paper shape: NAT and SEER still suffer large MSO/ASO; BOU provides\n\
          order-of-magnitude improvements with a small bouquet and MH < 0 or tiny)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "metric",
        "NAT",
        "SEER",
        "PARQO",
        "BOU basic",
        "BOU opt",
    ]);
    for w in [h_q5b_3d_com(), h_q8b_4d_com()] {
        let ev = evaluate(&w, &EvalConfig::default()).expect("evaluate");
        t.row(vec![
            ev.name.clone(),
            "MSO".into(),
            fnum(ev.nat.mso),
            fnum(ev.seer.mso),
            fnum(ev.parqo.mso),
            format!("{:.1}", ev.bou_basic.mso),
            format!("{:.1}", ev.bou_opt.as_ref().unwrap().mso),
        ]);
        t.row(vec![
            ev.name.clone(),
            "ASO".into(),
            fnum(ev.nat.aso),
            fnum(ev.seer.aso),
            fnum(ev.parqo.aso),
            format!("{:.2}", ev.bou_basic.aso),
            format!("{:.2}", ev.bou_opt.as_ref().unwrap().aso),
        ]);
        t.row(vec![
            ev.name.clone(),
            "MH".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.2}", ev.bou_basic_harm.max_harm),
            format!("{:.2}", ev.bou_opt_harm.as_ref().unwrap().max_harm),
        ]);
        t.row(vec![
            ev.name.clone(),
            "plans".into(),
            format!("{}", ev.posp_cardinality),
            format!("{}", ev.seer_cardinality),
            format!("{}", ev.parqo_cardinality),
            format!("{}", ev.bouquet_cardinality),
            format!("{}", ev.bouquet_cardinality),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "=> the robustness shape is not an artifact of one engine personality."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_bouquet::{Bouquet, BouquetConfig};

    #[test]
    fn com_bouquets_respect_bounds_and_beat_nat() {
        for w in [h_q5b_3d_com(), h_q8b_4d_com()] {
            let ev = evaluate(&w, &EvalConfig::default()).expect("evaluate");
            let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
            assert!(
                ev.bou_basic.mso <= b.mso_bound() * (1.0 + 1e-9),
                "{}",
                w.name
            );
            assert!(ev.nat.mso > 10.0 * ev.bou_basic.mso, "{}", w.name);
        }
    }

    #[test]
    fn fig19_renders() {
        let s = fig19();
        assert!(s.contains("3D_H_Q5B"));
        assert!(s.contains("4D_H_Q8B"));
    }
}
