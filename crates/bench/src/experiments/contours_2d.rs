//! 2D geometry exhibits: Figure 6 (contours and coverage regions) and
//! Figure 12 (the optimized driver's Manhattan discovery walk).

use std::fmt::Write as _;

use pb_bouquet::{Bouquet, BouquetConfig};
use pb_workloads::h_q8a_2d;

use crate::table::fnum;

fn bouquet_2d() -> (pb_bouquet::Workload, Bouquet) {
    let w = h_q8a_2d(1.0);
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    (w, b)
}

/// Figure 6: isocost contours in a 2D ESS; for a mid contour, the per-plan
/// coverage regions (every plan covers a unique sliver — the reason all
/// contour plans may need to execute).
pub fn fig6() -> String {
    let (w, b) = bouquet_2d();
    let ess = &w.ess;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — 2D isocost contours of {} and per-plan coverage\n",
        w.name
    );
    let _ = writeln!(out, "contours (budget | #frontier points | plans):");
    for c in &b.contours {
        let _ = writeln!(
            out,
            "  IC{:<2} {:>10} | {:>3} pts | {:?}",
            c.id,
            fnum(c.step_cost),
            c.points.len(),
            c.plan_set
                .iter()
                .map(|p| format!("P{}", p + 1))
                .collect::<Vec<_>>()
        );
    }
    // Pick the densest contour for the coverage exhibit.
    let k = b
        .contours
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.density())
        .map(|(i, _)| i)
        .unwrap();
    let c = &b.contours[k];
    let cov = c.coverage(&b.costs, ess.num_points());
    let _ = writeln!(
        out,
        "\ncoverage within IC{} (budget {}):",
        c.id,
        fnum(c.budget)
    );
    let inside: Vec<usize> = (0..ess.num_points())
        .filter(|&li| b.diagram.opt_cost[li] <= c.step_cost)
        .collect();
    for (p, pts) in &cov {
        // Points this plan alone covers (the hashed regions of Fig 6b).
        let unique = inside
            .iter()
            .filter(|&&li| {
                pts.contains(&li)
                    && cov
                        .iter()
                        .filter(|(q, _)| q != p)
                        .all(|(_, other)| !other.contains(&li))
            })
            .count();
        let covered_inside = inside.iter().filter(|&&li| pts.contains(&li)).count();
        let _ = writeln!(
            out,
            "  P{:<3} covers {:>4}/{} interior points, {:>3} exclusively",
            p + 1,
            covered_inside,
            inside.len(),
            unique
        );
    }
    let all_covered = inside
        .iter()
        .all(|&li| cov.iter().any(|(_, pts)| pts.contains(&li)));
    let _ = writeln!(
        out,
        "every interior point covered by some contour plan: {all_covered}"
    );
    out
}

/// Figure 12: the optimized driver's qrun trajectory — spill-focused
/// single-dimension learning yields a Manhattan profile from the origin to
/// qa, with early contour changes once the PIC at qrun crosses the budget.
pub fn fig12() -> String {
    let (w, b) = bouquet_2d();
    let ess = &w.ess;
    let qa = ess.point_at_fractions(&[0.85, 0.8]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 12 — optimized-driver discovery walk on {} (qa = [{:.3e}, {:.3e}])\n",
        w.name, qa[0], qa[1]
    );
    let run = b.run_optimized(&qa).unwrap();
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>12} {:>12} {:>7} {:>5}  learned",
        "exec", "IC", "budget", "spent", "spill", "done"
    );
    for (i, e) in run.trace.iter().enumerate() {
        let learned = e
            .learned
            .map(|(d, v)| format!("dim{} -> {:.3e}", d, v))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>12} {:>12} {:>7} {:>5}  {}",
            i + 1,
            format!("IC{}", e.contour),
            fnum(e.budget),
            fnum(e.spent),
            if e.spilled { "yes" } else { "no" },
            if e.completed { "yes" } else { "no" },
            learned
        );
    }
    let opt = b.pic_cost(&qa);
    let _ = writeln!(
        out,
        "\ntotal cost {} vs optimal {} -> SubOpt(∗,qa) = {:.2} (bound {:.1})",
        fnum(run.total_cost),
        fnum(opt),
        run.suboptimality(opt),
        b.mso_bound()
    );
    let basic = b.run_basic(&qa).unwrap();
    let _ = writeln!(
        out,
        "basic driver at the same qa: {} executions, cost {} (SubOpt {:.2})",
        basic.trace.len(),
        fnum(basic.total_cost),
        basic.suboptimality(opt)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reports_contours_and_full_coverage() {
        let s = fig6();
        assert!(s.contains("IC1"));
        assert!(s.contains("every interior point covered by some contour plan: true"));
    }

    #[test]
    fn fig12_walk_completes_within_bound() {
        let s = fig12();
        assert!(s.contains("SubOpt(∗,qa)"));
        assert!(s.contains("yes"), "the walk should complete");
    }
}
