//! Section 3.4: robustness under bounded cost-modeling errors.
//!
//! "Unbounded estimation errors, bounded modeling errors": the executor's
//! actual costs are the modeled costs perturbed by a deterministic adversary
//! inside the δ band. The paper proves `MSO ≤ MSO_perfect · (1+δ)²`; with
//! δ = 0.4 (the observed PostgreSQL average) the inflation is at most ~2×.

use std::fmt::Write as _;

use pb_bouquet::theory::model_error_inflation;
use pb_bouquet::{Bouquet, BouquetConfig};
use pb_cost::CostPerturbation;
use pb_workloads::by_name;

use crate::table::Table;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 3.4 — bounded modeling errors: MSO ≤ MSO_perfect · (1+δ)²\n"
    );
    let w = by_name("3D_DS_Q96").unwrap();
    let mut t = Table::new(vec![
        "δ",
        "measured MSO",
        "perfect-model MSO",
        "inflation",
        "(1+δ)² cap",
        "within cap",
    ]);
    // Perfect-model baseline.
    let base = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let base_mso = grid_mso(&base);
    for delta in [0.0, 0.2, 0.4, 0.8] {
        let cfg = BouquetConfig {
            perturbation: CostPerturbation::with_delta(delta, 17),
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        let mso = grid_mso(&b);
        let inflation = mso / base_mso;
        let cap = model_error_inflation(delta);
        t.row(vec![
            format!("{delta:.1}"),
            format!("{mso:.2}"),
            format!("{base_mso:.2}"),
            format!("{inflation:.2}"),
            format!("{cap:.2}"),
            format!("{}", inflation <= cap * (1.0 + 1e-9)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "MSO here is measured against the *actual* (perturbed) optimal cost at\n\
         each location, exactly as the Section 3.4 analysis defines it."
    );
    out
}

/// Worst-case sub-optimality of the basic driver over the grid, with the
/// denominator being the actual (perturbed) optimal cost at each point.
fn grid_mso(b: &Bouquet) -> f64 {
    let w = &b.workload;
    let ess = &w.ess;
    let coster = w.coster();
    let ex = pb_executor::Executor::with_perturbation(coster, b.config.perturbation);
    let mut worst = 0.0f64;
    for li in 0..ess.num_points() {
        let qa = ess.point(&ess.unlinear(li));
        let run = b.run_basic(&qa).unwrap();
        assert!(run.completed());
        // Actual optimal cost: cheapest POSP plan under perturbation.
        let opt_actual = (0..b.costs.len())
            .map(|p| ex.actual_cost(&b.diagram.plans[p].root, &qa))
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(run.total_cost / opt_actual);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_deltas_within_cap() {
        let s = run();
        // every data row's last column must be "true"
        let falses = s
            .lines()
            .filter(|l| l.trim_end().ends_with("false"))
            .count();
        assert_eq!(falses, 0, "some δ exceeded the (1+δ)² cap:\n{s}");
    }
}
