//! The benchmark-suite exhibits: Table 1, Table 2, Figures 14–18.
//!
//! The ten error spaces are evaluated once and cached; every exhibit then
//! renders its view of the shared results.

use std::fmt::Write as _;
use std::sync::OnceLock;

use pb_bouquet::eval::{evaluate, EvalConfig, WorkloadEvaluation};
use pb_workloads::{benchmark_suite, specs};

use crate::table::{fnum, Table};

static EVALS: OnceLock<Vec<WorkloadEvaluation>> = OnceLock::new();

/// Evaluate (once) the full Table 2 suite.
pub fn suite_evaluations() -> &'static [WorkloadEvaluation] {
    EVALS.get_or_init(|| {
        benchmark_suite()
            .iter()
            .map(|w| evaluate(w, &EvalConfig::default()).expect("evaluate"))
            .collect()
    })
}

/// Table 2: workload specifications (join-graph geometry and cost gradient).
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — query workload specifications\n\
         (C_max/C_min measured on our cost substrate; paper values for reference)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "join-graph (#relations)",
        "dims",
        "Cmax/Cmin (ours)",
        "Cmax/Cmin (paper)",
    ]);
    for (ev, spec) in suite_evaluations().iter().zip(specs()) {
        t.row(vec![
            ev.name.clone(),
            format!("{:?}({})", spec.shape, spec.relations).to_lowercase(),
            format!("{}", ev.dims),
            format!("{:.0}", ev.cmax / ev.cmin),
            format!("{:.0}", spec.paper_cost_ratio),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Table 1: MSO guarantees, POSP versus anorexic reduction.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — performance guarantees (Equation 8), POSP vs anorexic λ=20%\n\
         (paper shape: anorexic reduction shrinks ρ by ~an order of magnitude,\n\
          e.g. 5D_DS_Q19: ρ 159→8, bound 379→30.4)\n"
    );
    let mut t = Table::new(vec![
        "error space",
        "ρ POSP",
        "MSO bound (POSP)",
        "ρ anorexic",
        "MSO bound (anorexic)",
    ]);
    for ev in suite_evaluations() {
        let g = &ev.guarantees;
        t.row(vec![
            ev.name.clone(),
            format!("{}", g.rho_posp),
            format!("{:.1}", g.bound_posp),
            format!("{}", g.rho_anorexic),
            format!("{:.1}", g.bound_anorexic),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Figure 14: worst-case sub-optimality (MSO), NAT vs SEER vs BOU.
pub fn fig14() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 14 — MSO (log scale in the paper)\n\
         (paper shape: NAT 10^3..10^7, SEER similar to NAT, BOU < 10 absolute;\n\
          flagship 5D_DS_Q19: 10^6 -> ~10)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "NAT",
        "SEER",
        "PARQO",
        "BOU basic",
        "BOU opt",
        "bound",
    ]);
    for ev in suite_evaluations() {
        t.row(vec![
            ev.name.clone(),
            fnum(ev.nat.mso),
            fnum(ev.seer.mso),
            fnum(ev.parqo.mso),
            format!("{:.1}", ev.bou_basic.mso),
            format!(
                "{:.1}",
                ev.bou_opt.as_ref().map(|m| m.mso).unwrap_or(f64::NAN)
            ),
            format!("{:.1}", ev.guarantees.bound_anorexic),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Figure 15: average-case sub-optimality (ASO).
pub fn fig15() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 15 — ASO (log scale in the paper)\n\
         (paper shape: BOU comparable or better than NAT, typically < 4 absolute;\n\
          SEER again similar to NAT)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "NAT",
        "SEER",
        "PARQO",
        "BOU basic",
        "BOU opt",
    ]);
    for ev in suite_evaluations() {
        t.row(vec![
            ev.name.clone(),
            fnum(ev.nat.aso),
            fnum(ev.seer.aso),
            fnum(ev.parqo.aso),
            format!("{:.2}", ev.bou_basic.aso),
            format!(
                "{:.2}",
                ev.bou_opt.as_ref().map(|m| m.aso).unwrap_or(f64::NAN)
            ),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Figure 16: spatial distribution of robustness enhancement for 5D_DS_Q19.
pub fn fig16() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 16 — distribution of enhanced robustness, 5D_DS_Q19\n\
         (paper shape: ~90% of locations improve by two or more orders of magnitude)\n"
    );
    let ev = suite_evaluations()
        .iter()
        .find(|e| e.name == "5D_DS_Q19")
        .expect("flagship query in suite");
    let mut t = Table::new(vec![
        "improvement factor (NAT worst / BOU)",
        "% of ESS locations",
    ]);
    for (label, frac) in &ev.distribution.buckets {
        t.row(vec![label.clone(), format!("{:.1}", frac * 100.0)]);
    }
    let _ = writeln!(out, "{}", t.render());
    let ge100: f64 = ev
        .distribution
        .buckets
        .iter()
        .filter(|(l, _)| l.contains("100") || l.contains("1000"))
        .map(|(_, f)| f)
        .sum();
    let _ = writeln!(
        out,
        ">= two orders of magnitude improvement: {:.1}%",
        ge100 * 100.0
    );
    out
}

/// Figure 17: MaxHarm.
pub fn fig17() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 17 — MaxHarm (linear scale)\n\
         (paper shape: BOU can be up to ~4x worse than NAT's worst case, but\n\
          harm occurs at under 1% of locations; SEER's harm is bounded by λ)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "MH (basic)",
        "harmed locations %",
        "MH (opt)",
    ]);
    for ev in suite_evaluations() {
        t.row(vec![
            ev.name.clone(),
            format!("{:.2}", ev.bou_basic_harm.max_harm),
            format!("{:.2}", ev.bou_basic_harm.harm_fraction * 100.0),
            format!(
                "{:.2}",
                ev.bou_opt_harm
                    .as_ref()
                    .map(|h| h.max_harm)
                    .unwrap_or(f64::NAN)
            ),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Figure 18: plan cardinalities — POSP vs SEER vs bouquet.
pub fn fig18() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 18 — plan cardinalities (log scale in the paper)\n\
         (paper shape: POSP tens-to-hundreds, SEER lower, BOU ~10 or fewer,\n\
          roughly independent of dimensionality)\n"
    );
    let mut t = Table::new(vec!["query", "POSP", "SEER", "bouquet", "ρ", "contours"]);
    for ev in suite_evaluations() {
        t.row(vec![
            ev.name.clone(),
            format!("{}", ev.posp_cardinality),
            format!("{}", ev.seer_cardinality),
            format!("{}", ev.bouquet_cardinality),
            format!("{}", ev.guarantees.rho_anorexic),
            format!("{}", ev.num_contours),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One heavyweight test validating every suite exhibit's headline shape
    /// (the evaluations are cached, so this costs one pass over the suite).
    #[test]
    fn suite_reproduces_paper_shapes() {
        let evals = suite_evaluations();
        assert_eq!(evals.len(), 10);
        for ev in evals {
            // Figure 14 shape: NAT's MSO is orders of magnitude above BOU's.
            assert!(
                ev.nat.mso > 50.0 * ev.bou_basic.mso.min(10.0),
                "{}: NAT {} vs BOU {}",
                ev.name,
                ev.nat.mso,
                ev.bou_basic.mso
            );
            // SEER does not materially improve MSO (within 1 order of NAT).
            assert!(ev.seer.mso > ev.nat.mso / 30.0, "{}", ev.name);
            // BOU respects its guarantee.
            assert!(
                ev.bou_basic.mso <= ev.guarantees.bound_anorexic * (1.0 + 1e-9),
                "{}: {} > {}",
                ev.name,
                ev.bou_basic.mso,
                ev.guarantees.bound_anorexic
            );
            // Bouquet cardinality stays small (paper: ~10 or fewer).
            assert!(ev.bouquet_cardinality <= 25, "{}", ev.name);
            // Table 1 shape: anorexic bound no worse than POSP bound.
            assert!(ev.guarantees.rho_anorexic <= ev.guarantees.rho_posp);
        }
        // Paper headline: BOU ASO typically within 4x of the PIC — allow a
        // little slack and require it for at least 7 of 10 queries.
        let small_aso = evals.iter().filter(|e| e.bou_basic.aso <= 6.0).count();
        assert!(small_aso >= 7, "only {small_aso} queries with small ASO");
    }

    #[test]
    fn exhibits_render() {
        for f in [table1, table2, fig14, fig15, fig16, fig17, fig18] {
            let s = f();
            assert!(s.lines().count() > 5);
        }
    }
}
