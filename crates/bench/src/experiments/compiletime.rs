//! Section 6.1: compile-time overheads — contour-band exploration versus
//! exhaustive POSP generation.

use std::fmt::Write as _;
use std::time::Instant;

use pb_bouquet::band;
use pb_workloads::by_name;

use crate::table::Table;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 6.1 — compile-time overheads: contour-band POSP vs exhaustive grid\n\
         (paper: contour-focused exploration plus embarrassing parallelism keeps\n\
          even 5D identification practical; ≤10 contours per query)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "grid points",
        "band optimizer calls",
        "fraction",
        "contours",
        "band time",
        "exhaustive time (parallel)",
    ]);
    for name in ["2D_H_Q8A", "3D_H_Q5", "3D_DS_Q96", "4D_DS_Q7", "5D_DS_Q19"] {
        let w = by_name(name).unwrap();
        let t0 = Instant::now();
        let res = band::explore(&w, 2.0);
        let band_time = t0.elapsed();
        let t1 = Instant::now();
        let _ = w.diagram();
        let full_time = t1.elapsed();
        t.row(vec![
            name.to_string(),
            format!("{}", res.grid_points),
            format!("{}", res.optimizer_calls),
            format!("{:.2}", res.call_fraction()),
            format!("{}", res.grading.len()),
            format!("{band_time:.2?}"),
            format!("{full_time:.2?}"),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "(band exploration is single-threaded here; the exhaustive diagram uses\n\
         all cores — both remain sub-second-to-seconds at these resolutions)\n"
    );

    // At the default (coarse) resolutions the contour bands blanket much of
    // the grid; the savings the paper relies on appear as the grid refines,
    // because the bands are (D−1)-dimensional.
    let _ = writeln!(out, "band savings vs grid resolution (2D_H_Q8A):");
    let mut t2 = Table::new(vec!["resolution", "grid points", "band calls", "fraction"]);
    for res in [24usize, 48, 96, 160] {
        let mut w = by_name("2D_H_Q8A").unwrap();
        w.ess = pb_cost::Ess::uniform(w.ess.dims.clone(), res);
        let r = band::explore(&w, 2.0);
        t2.row(vec![
            format!("{res}x{res}"),
            format!("{}", r.grid_points),
            format!("{}", r.optimizer_calls),
            format!("{:.2}", r.call_fraction()),
        ]);
    }
    let _ = writeln!(out, "{}", t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_always_saves_calls() {
        let s = run();
        let mut checked = 0;
        for line in s.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() < 3 || !cells[0].contains("_Q") {
                continue;
            }
            let (Ok(grid), Ok(calls)) = (cells[1].parse::<usize>(), cells[2].parse::<usize>())
            else {
                continue;
            };
            assert!(calls < grid, "{line}");
            checked += 1;
        }
        assert!(
            checked >= 5,
            "expected at least five data rows, saw {checked}"
        );
    }
}
