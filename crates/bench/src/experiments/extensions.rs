//! Extension exhibits beyond the paper's own tables/figures:
//!
//! * `reopt` — the Section 7 claim that POP/Rio-style mid-query
//!   re-optimization "could be arbitrarily poor", made executable.
//! * `pcmflip` — the Section 2 exception (existential operators violate
//!   PCM) and its axis-flip remedy.
//! * `maintenance` — the Section 8 future-work item (incremental bouquet
//!   maintenance under database scale-up), implemented.

use std::fmt::Write as _;

use pb_bouquet::baselines::reopt_worst_profile;
use pb_bouquet::flip::{dim_directions, flip_decreasing};
use pb_bouquet::{maintenance, Bouquet, BouquetConfig};
use pb_workloads::{anti_2d, by_name, h_q8a_2d};

use crate::table::{fnum, Table};

/// Section 7: re-optimization improves on NAT but carries no guarantee.
pub fn reopt() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 7 extension — mid-query re-optimization (POP/Rio-style) vs bouquet\n\
         (paper's claim: re-optimizers may be arbitrarily poor wrt both P_oe and P_oa)\n"
    );
    let mut t = Table::new(vec![
        "query",
        "NAT MSO",
        "REOPT MSO (sampled qe)",
        "BOU MSO",
        "BOU guarantee",
    ]);
    for name in ["2D_H_Q8A", "3D_H_Q5"] {
        let w = by_name(name).unwrap();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let nat_mso = (0..w.ess.num_points())
            .map(|li| {
                b.costs
                    .rows()
                    .map(|row| row[li] / b.diagram.opt_cost[li])
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        let reopt = reopt_worst_profile(&w, &b.diagram.opt_cost);
        let reopt_mso = reopt.iter().cloned().fold(0.0f64, f64::max);
        let bou = pb_bouquet::eval::run_profile(&b, false).expect("profile");
        let bou_mso = bou.iter().cloned().fold(0.0f64, f64::max);
        t.row(vec![
            name.to_string(),
            fnum(nat_mso),
            fnum(reopt_mso),
            format!("{bou_mso:.1}"),
            format!("{:.1}", b.mso_bound()),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "re-optimization repairs much of NAT's worst case but still exceeds the\n\
         bouquet guarantee by 1-2 orders of magnitude: its exploratory spend is\n\
         the prefix of whatever plan the estimate seduced it into, with no\n\
         budget ladder to cap it."
    );
    out
}

/// Section 2 extension: PCM violation by an existential operator, detected
/// and repaired by flipping the offending axis.
pub fn pcmflip() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 2 extension — existential operators break PCM; axis flip repairs it\n\
         (paper: 'the basic bouquet technique can be utilized by the simple\n\
          expedient of plotting the ESS with (1-s) instead of s')\n"
    );
    let w = anti_2d();
    let dirs = dim_directions(&w, 2, 4);
    let _ = writeln!(out, "query: part ⋈ lineitem with NOT EXISTS(partsupp)");
    for (d, dir) in dirs.iter().enumerate() {
        let _ = writeln!(out, "  dim {d} ({}): {:?}", w.ess.dims[d].name, dir);
    }
    match Bouquet::identify(&w, &BouquetConfig::default()) {
        Err(e) => {
            let _ = writeln!(out, "\nraw space identification: REJECTED — {e}");
        }
        Ok(_) => {
            let _ = writeln!(out, "\nraw space identification: unexpectedly succeeded!");
        }
    }
    let (flipped, flips) = flip_decreasing(&w).expect("flip");
    let _ = writeln!(out, "flipped dimensions: {flips:?}");
    let b = Bouquet::identify(&flipped, &BouquetConfig::default()).expect("flipped identify");
    let mut mso = 0.0f64;
    for li in 0..flipped.ess.num_points() {
        let qa = flipped.ess.point(&flipped.ess.unlinear(li));
        mso = mso.max(
            b.run_basic(&qa)
                .expect("run")
                .suboptimality(b.pic_cost_at(li)),
        );
    }
    let _ = writeln!(
        out,
        "flipped space: {} contours, bouquet {}, measured MSO {:.2} <= guarantee {:.1}",
        b.stats.num_contours,
        b.stats.bouquet_cardinality,
        mso,
        b.mso_bound()
    );
    out
}

/// Section 8 extension: incremental maintenance under database scale-up.
pub fn maintenance_exhibit() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 8 extension — incremental bouquet maintenance under scale-up\n\
         (paper: 'developing incremental bouquet maintenance strategies is an\n\
          interesting future research challenge')\n"
    );
    let old_w = h_q8a_2d(1.0);
    let old = Bouquet::identify(&old_w, &BouquetConfig::default()).unwrap();
    let mut t = Table::new(vec![
        "scale-up",
        "optimizer calls (maintenance)",
        "vs full rebuild",
        "reused plans",
        "new plans",
        "contours",
    ]);
    for factor in [2.0, 4.0, 8.0] {
        let new_w = h_q8a_2d(factor);
        let (maintained, rep) =
            maintenance::rescale(&old, new_w.catalog.clone(), Some(new_w.clone())).unwrap();
        t.row(vec![
            format!("{factor}x"),
            format!("{}", rep.optimizer_calls),
            format!("{:.0}%", rep.effort_fraction() * 100.0),
            format!("{}", rep.reused_plans),
            format!("{}", rep.new_plans),
            format!("{}", maintained.stats.num_contours),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "frontier points are re-optimized exactly; interior costs come from\n\
         recosting the inherited plans — the budgets and coverage argument only\n\
         depend on frontier costs, so the guarantees carry over."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_extension_exhibits_render() {
        for f in [reopt, pcmflip, maintenance_exhibit] {
            let s = f();
            assert!(s.lines().count() > 5, "{s}");
        }
    }

    #[test]
    fn pcmflip_reports_rejection_then_success() {
        let s = pcmflip();
        assert!(s.contains("REJECTED"));
        assert!(s.contains("<= guarantee"));
    }
}
