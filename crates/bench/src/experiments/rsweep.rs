//! Theorems 1 and 2: the isocost common ratio r.
//!
//! Theorem 1 bounds the 1D MSO by r²/(r−1), minimized at r = 2 (doubling);
//! Theorem 2 shows 4 is the best any deterministic algorithm can do. This
//! experiment sweeps r on the EQ workload and reports measured MSO against
//! the closed-form bound, plus the adversarial lower-bound simulation.

use std::fmt::Write as _;

use pb_bouquet::theory::{adversarial_mso, mso_bound_1d};
use pb_bouquet::{Bouquet, BouquetConfig};
use pb_workloads::eq_1d;

use crate::table::Table;

pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Theorems 1 & 2 — choice of the isocost common ratio r\n\
         (bound r²/(r−1) is minimized at r=2 where it equals 4; no\n\
          deterministic online algorithm can guarantee below 4)\n"
    );
    let w = eq_1d();
    let mut t = Table::new(vec![
        "r",
        "theoretical bound (1+λ)r²/(r−1)",
        "measured MSO (basic)",
        "within",
        "adversarial LB sim",
    ]);
    for r in [1.3, 1.5, 2.0, 3.0, 4.0] {
        let cfg = BouquetConfig {
            r,
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        let mut mso = 0.0f64;
        for li in 0..w.ess.num_points() {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            mso = mso.max(run.suboptimality(b.pic_cost_at(li)));
        }
        let bound = (1.0 + cfg.lambda) * mso_bound_1d(r);
        let budgets: Vec<f64> = (0..40).map(|k| r.powi(k)).collect();
        t.row(vec![
            format!("{r:.1}"),
            format!("{bound:.2}"),
            format!("{mso:.2}"),
            format!("{}", mso <= bound * (1.0 + 1e-9)),
            format!("{:.3}", adversarial_mso(&budgets)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "the adversarial column shows every budget progression pays ≥ 4 in the\n\
         worst case, with doubling achieving exactly 4 — Theorem 2's optimum."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_r_within_its_bound_and_doubling_best() {
        let s = run();
        assert!(!s.contains(" false "), "some r violated its bound:\n{s}");
        // Extract measured MSO per r; r=2.0 should be the minimum.
        let mut msos = Vec::new();
        for line in s.lines() {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() >= 4 {
                if let (Ok(r), Ok(m)) = (cells[0].parse::<f64>(), cells[2].parse::<f64>()) {
                    msos.push((r, m));
                }
            }
        }
        assert!(msos.len() >= 5);
        let at2 = msos
            .iter()
            .find(|(r, _)| (*r - 2.0).abs() < 0.01)
            .unwrap()
            .1;
        let best = msos.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
        // Theorem 1 is about the *guarantee*: the bound r²/(r−1) is uniquely
        // minimized at r = 2. The measured MSO on one finite workload can
        // dip below for other ratios (grid effects); doubling must still be
        // competitive with the empirical best.
        assert!(at2 <= best * 1.5, "doubling {at2} vs best {best}");
        for r in [1.3f64, 1.5, 3.0, 4.0] {
            assert!(
                mso_bound_1d(r) > mso_bound_1d(2.0),
                "bound must be uniquely minimized at r = 2"
            );
        }
    }
}
