//! The paper's 1D introduction (Figures 2–5) on the EQ query.

use std::fmt::Write as _;

use pb_bouquet::{Bouquet, BouquetConfig};
use pb_workloads::eq_1d;

use crate::table::{fnum, Table};

/// Figure 2: POSP plans on the p_retailprice dimension with the selectivity
/// range over which each is optimal.
pub fn fig2() -> String {
    let w = eq_1d();
    let d = w.diagram();
    let ess = &w.ess;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2 — POSP plans of EQ on the p_retailprice dimension\n\
         (paper: 5 plans P1..P5 mixing NL/MJ/HJ; ranges are optimality intervals)\n"
    );
    // Walk the 1D grid and report contiguous optimality ranges.
    let mut t = Table::new(vec!["plan", "optimal range (selectivity)", "operator tree"]);
    let mut start = 0usize;
    for li in 1..=ess.num_points() {
        if li == ess.num_points() || d.optimal[li] != d.optimal[start] {
            let pid = d.optimal[start] as usize;
            let lo = ess.sel_at(0, start);
            let hi = ess.sel_at(0, li - 1);
            let tree = d.plans[pid]
                .root
                .explain(&w.query, &w.catalog)
                .trim_end()
                .replace('\n', " | ");
            t.row(vec![
                format!("P{}", pid + 1),
                format!("({:.4}%, {:.4}%]", lo * 100.0, hi * 100.0),
                tree,
            ]);
            start = li;
        }
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(out, "distinct POSP plans: {}", d.plan_count());
    out
}

/// Figure 3: the PIC discretized by doubling isocost steps; the intersection
/// selectivities and associated plans form the bouquet.
pub fn fig3() -> String {
    let w = eq_1d();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let ess = &w.ess;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — PIC of EQ discretized with doubling isocost steps\n\
         (paper: 7 steps IC1..IC7, bouquet {{P1,P2,P3,P5}})\n"
    );
    let mut t = Table::new(vec![
        "step",
        "cost(IC_k)",
        "sel at PIC∩IC_k",
        "bouquet plan",
    ]);
    for c in &b.contours {
        let li = c.points[0];
        t.row(vec![
            format!("IC{}", c.id),
            fnum(c.step_cost),
            format!("{:.4}%", ess.sel_at(0, ess.unlinear(li)[0]) * 100.0),
            format!("P{}", c.assignment[0] + 1),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let bouquet: Vec<String> = b.plan_ids().iter().map(|p| format!("P{}", p + 1)).collect();
    let _ = writeln!(
        out,
        "bouquet = {{{}}}  (|bouquet| = {}, POSP = {})",
        bouquet.join(", "),
        b.stats.bouquet_cardinality,
        b.stats.posp_cardinality
    );
    let (cmin, cmax) = (b.stats.cmin, b.stats.cmax);
    let _ = writeln!(
        out,
        "C_min = {}  C_max = {}  (ratio {:.1})",
        fnum(cmin),
        fnum(cmax),
        cmax / cmin
    );
    out
}

/// Figure 4: bouquet runtime profile vs the native optimizer's worst-case
/// profile; the headline MSO/ASO comparison of the introduction.
pub fn fig4() -> String {
    let w = eq_1d();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let ess = &w.ess;
    let n = ess.num_points();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — bouquet performance profile on EQ (log-log in the paper)\n\
         (paper: basic bouquet MSO 3.6 / ASO 2.4; optimized 3.1 / 1.7;\n\
          native optimizer worst-case suboptimality ~100, ASO 1.8)\n"
    );
    // Native worst-case profile: max over POSP plans of c_P(qa)/PIC(qa).
    let mut nat_worst = vec![0.0f64; n];
    for li in 0..n {
        let mut worst = 1.0f64;
        for row in b.costs.rows() {
            worst = worst.max(row[li] / b.diagram.opt_cost[li]);
        }
        nat_worst[li] = worst;
    }
    let mut basic = Vec::with_capacity(n);
    let mut optd = Vec::with_capacity(n);
    for li in 0..n {
        let qa = ess.point(&ess.unlinear(li));
        basic.push(
            b.run_basic(&qa)
                .expect("run")
                .suboptimality(b.diagram.opt_cost[li]),
        );
        optd.push(
            b.run_optimized(&qa)
                .expect("run")
                .suboptimality(b.diagram.opt_cost[li]),
        );
    }
    let mut t = Table::new(vec![
        "sel%",
        "PIC cost",
        "NAT worst",
        "BOU basic",
        "BOU optimized",
    ]);
    for li in (0..n).step_by(n / 16) {
        t.row(vec![
            format!("{:.4}", ess.sel_at(0, li) * 100.0),
            fnum(b.diagram.opt_cost[li]),
            format!("{:.2}", nat_worst[li]),
            format!("{:.2}", basic[li]),
            format!("{:.2}", optd[li]),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let stats = |v: &[f64]| {
        (
            v.iter().cloned().fold(0.0f64, f64::max),
            v.iter().sum::<f64>() / v.len() as f64,
        )
    };
    let (nat_mso, nat_aso) = stats(&nat_worst);
    let (bas_mso, bas_aso) = stats(&basic);
    let (opt_mso, opt_aso) = stats(&optd);
    let _ = writeln!(out, "NAT:        MSO = {nat_mso:8.2}  ASO = {nat_aso:5.2}");
    let _ = writeln!(out, "BOU basic:  MSO = {bas_mso:8.2}  ASO = {bas_aso:5.2}");
    let _ = writeln!(out, "BOU optim.: MSO = {opt_mso:8.2}  ASO = {opt_aso:5.2}");
    let _ = writeln!(
        out,
        "Theorem 1 bound (r=2, λ=0.2): {:.2}  — both drivers within bound: {}",
        b.mso_bound(),
        bas_mso <= b.mso_bound() && opt_mso <= b.mso_bound()
    );
    out
}

/// Figure 5: the 1D grading construction with its boundary conditions.
pub fn fig5() -> String {
    let w = eq_1d();
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — isocost grading construction (a/r < C_min ≤ IC1, IC_m = C_max)\n"
    );
    let _ = writeln!(
        out,
        "C_min = {}, C_max = {}, r = {}, m = {}",
        fnum(b.stats.cmin),
        fnum(b.stats.cmax),
        b.grading.r,
        b.grading.len()
    );
    for (k, s) in b.grading.steps.iter().enumerate() {
        let _ = writeln!(out, "  IC{:<2} = {}", k + 1, fnum(*s));
    }
    let ok1 =
        b.grading.budget(0) >= b.stats.cmin && b.grading.budget(0) / b.grading.r < b.stats.cmin;
    let okm = (b.grading.budget(b.grading.len() - 1) - b.stats.cmax).abs() < 1e-9 * b.stats.cmax;
    let _ = writeln!(out, "boundary conditions hold: IC1 {}  ICm {}", ok1, okm);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reports_multiple_plans_with_ranges() {
        let s = fig2();
        assert!(s.contains("P1"));
        assert!(s.contains("distinct POSP plans"));
        // The paper's EQ has ~5 POSP plans; ours must have at least 3.
        let n: usize = s
            .lines()
            .last()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(n >= 3, "too few POSP plans: {n}");
    }

    #[test]
    fn fig3_bouquet_is_posp_subset() {
        let s = fig3();
        assert!(s.contains("bouquet = {"));
        assert!(s.contains("IC1"));
    }

    #[test]
    fn fig4_bouquet_beats_nat_worst_case() {
        let s = fig4();
        // Parse the MSO numbers back out.
        let grab = |tag: &str| -> f64 {
            let line = s.lines().find(|l| l.starts_with(tag)).unwrap();
            line.split("MSO =")
                .nth(1)
                .unwrap()
                .split("ASO")
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let nat = grab("NAT:");
        let bas = grab("BOU basic:");
        let opt = grab("BOU optim.:");
        assert!(nat > bas, "NAT {nat} should exceed basic bouquet {bas}");
        assert!(bas <= 4.8 + 1e-9, "basic bouquet must respect the bound");
        assert!(opt <= 4.8 + 1e-9);
    }

    #[test]
    fn fig5_boundary_conditions() {
        let s = fig5();
        assert!(s.contains("boundary conditions hold: IC1 true  ICm true"));
    }
}
