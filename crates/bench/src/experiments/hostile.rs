//! Hostile-workload ladder: the typed-dimension spaces
//! (`HOSTILE_INEQ_2D`, `HOSTILE_ANTI_2D`) driven end to end.
//!
//! Each workload runs the full ladder: identification, then the basic,
//! optimized and robust drivers on the **engine** substrate against
//! generated tuples, cross-checked against the cost-unit **simulator** at
//! the measured true location, plus the whole-grid simulator evaluation
//! (NAT / SEER / PARQO / BOU MSO & ASO). The hostile part is stale
//! statistics: the estimator's view of the inequality-join and anti-join
//! axes is skewed hard away from the generated data's truth, so NAT lands
//! far from the optimum while the bouquet's ladder stays bounded.

use std::fmt::Write as _;

use pb_bouquet::eval::{evaluate_with_bouquet, EvalConfig};
use pb_bouquet::{Bouquet, BouquetConfig, EngineSubstrate, RobustConfig, Workload};
use pb_cost::{Estimator, Parallelism};
use pb_engine::{Database, Engine};
use pb_faults::FaultInjector;
use pb_workloads::{hostile_anti_2d, hostile_ineq_2d};
use serde::Serialize;

use crate::engine_driver::{engine_run_bouquet_with, engine_run_nat, measure_qa, EngineRunReport};
use crate::table::{fnum, Table};

/// One hostile workload's ladder results (the `table3_hostile` artefact).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostileReport {
    pub workload: String,
    pub dim_kinds: Vec<String>,
    pub sf: f64,
    /// Estimated location under the stale statistics (coordinates).
    pub qe: Vec<f64>,
    /// Location measured against the generated tuples (coordinates).
    pub qa: Vec<f64>,
    /// Engine cost units.
    pub nat_cost: f64,
    pub oracle_cost: f64,
    pub basic: EngineRunReport,
    pub optimized: EngineRunReport,
    /// Robust-driver (fault-free) engine run: must match the basic driver's
    /// decisions exactly and never degrade.
    pub robust_cost: f64,
    pub robust_degraded: bool,
    /// Engine-measured sub-optimality vs the engine oracle.
    pub nat_subopt: f64,
    pub basic_subopt: f64,
    pub optimized_subopt: f64,
    /// Whole-grid simulator evaluation (MSO/ASO per strategy).
    pub nat_mso: f64,
    pub nat_aso: f64,
    pub seer_mso: f64,
    pub parqo_mso: f64,
    pub bou_mso: f64,
    pub bou_aso: f64,
    pub mso_bound: f64,
    /// The grid guarantee: BOU's simulator MSO within the Eq. 8 bound.
    pub mso_within_bound: bool,
    /// Basic-driver decision sequence identical between engine substrate
    /// and simulator at the measured qa.
    pub crosscheck_ok: bool,
}

/// Stale-statistics setup for the inequality-join space: the estimator is
/// told `s_acctbal` tops out below almost every `p_size`, so it predicts
/// the inequality join passes nearly nothing; the generated data's domain
/// makes it pass ~90% of pairs.
pub fn setup_ineq(sf: f64) -> (Workload, Bouquet, Database) {
    let mut w = hostile_ineq_2d(sf);
    let db = Database::generate(&w.catalog, 11, &[]).expect("generate");
    let cs = w.catalog.column_stats_mut("supplier", "s_acctbal");
    cs.max = 1.0;
    cs.histogram = None;
    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    (w, b, db)
}

/// Stale-statistics setup for the anti-join space: the join-key NDVs are
/// understated 10×, so the estimated match density is 10× too high — which,
/// on the flipped axis, places the estimate 10× *below* the true
/// coordinate (NAT plans for far fewer anti-join survivors than the data
/// produces).
pub fn setup_anti(sf: f64) -> (Workload, Bouquet, Database) {
    let mut w = hostile_anti_2d(sf);
    let db = Database::generate(&w.catalog, 13, &[]).expect("generate");
    let stale = (w.catalog.table("part").expect("part").rows / 10.0).max(1.0);
    w.catalog.column_stats_mut("lineitem", "l_partkey").ndv = stale;
    w.catalog.column_stats_mut("partsupp", "ps_partkey").ndv = stale;
    // The anti edge hangs off the top of every plan, so its axis moves
    // costs but not join orders; the plan-switching hostility comes from a
    // stale selection domain that makes `p_retailprice < 1000` look ~100×
    // rarer than the generated data's truth.
    let cs = w.catalog.column_stats_mut("part", "p_retailprice");
    cs.min = 999.0;
    cs.histogram = None;
    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    (w, b, db)
}

fn decision_seq(r: &EngineRunReport) -> Vec<(usize, usize, f64)> {
    r.executions
        .iter()
        .map(|e| (e.contour, e.plan, e.budget))
        .collect()
}

fn run_one(w: &Workload, b: &Bouquet, db: &Database, sf: f64, par: Parallelism) -> HostileReport {
    let est = Estimator::new(&w.catalog);
    let lo: Vec<f64> = w.ess.dims.iter().map(|d| d.lo).collect();
    let hi: Vec<f64> = w.ess.dims.iter().map(|d| d.hi).collect();
    let qe = est.estimate_point(&w.query, &lo, &hi);
    let qa = measure_qa(db, &w.query, &w.ess).expect("measure qa");

    let nat_cost = engine_run_nat(b, db, &qe);
    let oracle_plan = w.optimizer().optimize(&qa).plan;
    let engine = Engine::new(db, &w.query, &w.model.p).with_parallelism(par);
    let oracle_cost = engine.execute(&oracle_plan.root, f64::INFINITY).cost();

    let basic = engine_run_bouquet_with(b, db, false, par).expect("basic engine run");
    let optd = engine_run_bouquet_with(b, db, true, par).expect("optimized engine run");
    assert!(
        basic.completed && optd.completed,
        "hostile runs must complete"
    );

    // Robust driver, fault-free: same ladder, same decisions, no
    // degradation.
    let mut sub = EngineSubstrate::new(b, db, FaultInjector::none()).with_engine_parallelism(par);
    let robust = b
        .run_robust_on(&mut sub, &RobustConfig::default())
        .expect("robust engine run");
    assert!(robust.run.completed() && !robust.degraded);
    assert_eq!(
        decision_seq(&EngineRunReport::from_run(&robust.run, 0)),
        decision_seq(&basic),
        "fault-free robust driver must replay the basic ladder"
    );

    // Simulator substrate: decisions at the measured qa must agree.
    let sim = b.run_basic(&qa).expect("simulator run");
    let sim_seq: Vec<(usize, usize, f64)> = sim
        .trace
        .iter()
        .map(|e| (e.contour, e.plan, e.budget))
        .collect();
    let crosscheck_ok = sim_seq == decision_seq(&basic);

    // Whole-grid simulator evaluation.
    let ev = evaluate_with_bouquet(w, &EvalConfig::default(), b).expect("evaluate");
    let mso_bound = b.mso_bound();
    let mso_within_bound = ev.bou_basic.mso <= mso_bound * (1.0 + 1e-9);

    HostileReport {
        workload: w.name.clone(),
        dim_kinds: w.ess.dims.iter().map(|d| d.kind.label().into()).collect(),
        sf,
        qe: qe.0.clone(),
        qa: qa.0.clone(),
        nat_cost,
        oracle_cost,
        nat_subopt: nat_cost / oracle_cost,
        basic_subopt: basic.total_cost / oracle_cost,
        optimized_subopt: optd.total_cost / oracle_cost,
        robust_cost: robust.run.total_cost,
        robust_degraded: robust.degraded,
        basic,
        optimized: optd,
        nat_mso: ev.nat.mso,
        nat_aso: ev.nat.aso,
        seer_mso: ev.seer.mso,
        parqo_mso: ev.parqo.mso,
        bou_mso: ev.bou_basic.mso,
        bou_aso: ev.bou_basic.aso,
        mso_bound,
        mso_within_bound,
        crosscheck_ok,
    }
}

/// Run both hostile workloads at scale `sf`, returning rendered text and
/// the structured reports.
pub fn run_at_with(sf: f64, par: Parallelism) -> (String, Vec<HostileReport>) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Hostile typed-dimension workloads (sf {sf}) — full ladder on both substrates\n"
    );
    let mut reports = Vec::new();
    for (w, b, db) in [setup_ineq(sf), setup_anti(sf)] {
        reports.push(run_one(&w, &b, &db, sf, par));
    }

    let mut t = Table::new(vec![
        "workload",
        "axis kinds",
        "NAT MSO",
        "PARQO MSO",
        "BOU MSO",
        "bound",
        "BOU ASO",
        "engine NAT",
        "engine basic",
        "engine opt",
    ]);
    for r in &reports {
        t.row(vec![
            r.workload.clone(),
            r.dim_kinds.join("+"),
            fnum(r.nat_mso),
            fnum(r.parqo_mso),
            format!("{:.1}", r.bou_mso),
            format!("{:.1}", r.mso_bound),
            format!("{:.2}", r.bou_aso),
            format!("{:.1}x", r.nat_subopt),
            format!("{:.1}x", r.basic_subopt),
            format!("{:.1}x", r.optimized_subopt),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    for r in &reports {
        let _ = writeln!(
            out,
            "{}: qe = {:?}  qa = {:?}  crosscheck {}  robust {}  MSO bound {}",
            r.workload,
            r.qe.iter().map(|v| format!("{v:.2e}")).collect::<Vec<_>>(),
            r.qa.iter().map(|v| format!("{v:.2e}")).collect::<Vec<_>>(),
            if r.crosscheck_ok { "OK" } else { "MISMATCH" },
            if r.robust_degraded {
                "DEGRADED"
            } else {
                "clean"
            },
            if r.mso_within_bound {
                "held"
            } else {
                "VIOLATED"
            },
        );
    }
    (out, reports)
}

pub fn run() -> String {
    run_at_with(0.005, Parallelism::serial()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_ladder_holds_on_both_workloads() {
        let (_, reports) = run_at_with(0.005, Parallelism::serial());
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(
                r.crosscheck_ok,
                "{}: engine/simulator divergence",
                r.workload
            );
            assert!(r.mso_within_bound, "{}: grid MSO above bound", r.workload);
            assert!(!r.robust_degraded, "{}: robust run degraded", r.workload);
            assert!(
                r.basic.completed && r.optimized.completed,
                "{}: incomplete",
                r.workload
            );
            // The hostile estimate must actually be wrong: NAT lands far
            // from the optimum while the bouquet's spend stays bounded.
            assert!(
                r.nat_subopt > r.basic_subopt,
                "{}: NAT {} should exceed basic BOU {}",
                r.workload,
                r.nat_subopt,
                r.basic_subopt
            );
        }
        let kinds: Vec<&str> = reports.iter().map(|r| r.dim_kinds[1].as_str()).collect();
        assert_eq!(kinds, vec!["inequality-join", "anti-join"]);
    }
}
