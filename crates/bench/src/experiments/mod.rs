//! One module per paper exhibit; each `run()` returns the rendered report.
//!
//! The `repro` binary dispatches to these and tees the output into
//! `results/<experiment>.txt`. Experiment ids follow the paper:
//! `fig2`…`fig19`, `table1`…`table3`, plus `rsweep` (Theorems 1–2),
//! `modelerror` (Section 3.4) and `compiletime` (Section 6.1).

pub mod com;
pub mod compiletime;
pub mod contours_2d;
pub mod extensions;
pub mod hostile;
pub mod intro_1d;
pub mod modelerror;
pub mod rsweep;
pub mod suite;
pub mod table3;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig12",
    "table1",
    "table2",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "table3",
    "hostile",
    "fig19",
    "modelerror",
    "compiletime",
    "rsweep",
    "reopt",
    "pcmflip",
    "maintenance",
    "calibrate",
];

/// Run one experiment by id.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "fig2" => intro_1d::fig2(),
        "fig3" => intro_1d::fig3(),
        "fig4" => intro_1d::fig4(),
        "fig5" => intro_1d::fig5(),
        "fig6" => contours_2d::fig6(),
        "fig12" => contours_2d::fig12(),
        "table1" => suite::table1(),
        "table2" => suite::table2(),
        "fig14" => suite::fig14(),
        "fig15" => suite::fig15(),
        "fig16" => suite::fig16(),
        "fig17" => suite::fig17(),
        "fig18" => suite::fig18(),
        "table3" => table3::run(),
        "hostile" => hostile::run(),
        "fig19" => com::fig19(),
        "modelerror" => modelerror::run(),
        "compiletime" => compiletime::run(),
        "rsweep" => rsweep::run(),
        "reopt" => extensions::reopt(),
        "pcmflip" => extensions::pcmflip(),
        "maintenance" => extensions::maintenance_exhibit(),
        "calibrate" => crate::calibration::exhibit(),
        _ => return None,
    })
}
