//! Table 3: engine-measured bouquet execution for 2D_H_Q8A.
//!
//! The paper's run-time experiment: a 2D query whose actual location is far
//! from the AVI estimate (incorrect independence/uniqueness assumptions).
//! NAT's plan, chosen at the estimate, is badly sub-optimal; the bouquet
//! discovers the true location through budget-limited engine executions.
//! All times are engine cost units (hardware-neutral); the paper's shape —
//! optimal < optimized BOU < basic BOU << NAT — is what's reproduced.
//!
//! Since PR 5 both bouquet rows are produced by the *canonical* drivers
//! over [`pb_bouquet::EngineSubstrate`]; the cost-inversion cross-check
//! verifies that the basic driver makes the same contour/plan/budget
//! decisions on the engine as the cost-unit simulator does at the engine's
//! measured true location.

use std::fmt::Write as _;

use pb_bouquet::{Bouquet, BouquetConfig, ResumeStats, Workload};
use pb_cost::{Estimator, Parallelism};
use pb_engine::{ColumnOverride, Database, Engine};
use pb_workloads::h_q8a_2d;
use serde::Serialize;

use crate::engine_driver::{
    engine_run_bouquet_resumable, engine_run_bouquet_with, engine_run_nat, measure_qa,
    EngineRunReport,
};
use crate::table::{fnum, Table};

/// Structured result of the Table 3 experiment (the `BENCH_table3.json`
/// artefact).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3Report {
    pub workload: String,
    pub sf: f64,
    /// AVI-estimated location (stale statistics).
    pub qe: Vec<f64>,
    /// Location measured against the generated tuples.
    pub qa: Vec<f64>,
    pub nat_cost: f64,
    pub oracle_cost: f64,
    pub basic: EngineRunReport,
    pub optimized: EngineRunReport,
    /// The same driver runs with checkpoint/resume enabled: identical
    /// decision sequences and result rows, smaller spends.
    pub basic_resumed: EngineRunReport,
    pub optimized_resumed: EngineRunReport,
    pub basic_resume: ResumeStats,
    pub optimized_resume: ResumeStats,
    /// Basic-driver (contour, plan, budget) sequence identical between the
    /// engine substrate and the simulator substrate at the measured `qa`.
    pub crosscheck_ok: bool,
    /// Resumed runs reproduced the plain runs' decision sequences and
    /// result rows while spending no more.
    pub resume_ok: bool,
}

/// The experiment's setup: the 2D_H_Q8A workload with stale statistics and
/// generated data that violates the uniqueness assumptions.
pub fn setup(sf: f64) -> (Workload, Bouquet, Database) {
    let mut w = h_q8a_2d(sf);
    // Stale statistics: the estimator believes the join columns still have
    // their full-scale NDVs (as if the statistics were gathered on a much
    // larger database and never refreshed). The AVI join estimate 1/NDV is
    // then a gross under-estimate, pushing the native optimizer deep into
    // nested-loops territory — the paper's "outdated statistics" scenario.
    w.catalog.column_stats_mut("part", "p_partkey").ndv = 200_000.0;
    w.catalog.column_stats_mut("lineitem", "l_partkey").ndv = 200_000.0;
    w.catalog.column_stats_mut("orders", "o_orderkey").ndv = 1_500_000.0;
    w.catalog.column_stats_mut("lineitem", "l_orderkey").ndv = 1_500_000.0;
    let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
    // Generated data additionally violates the uniqueness assumptions: join
    // keys are duplicated on both sides, raising the actual selectivities.
    let db = Database::generate(
        &w.catalog,
        7,
        &[
            ColumnOverride::EffectiveNdv {
                table: "part".into(),
                column: "p_partkey".into(),
                ndv: 200,
            },
            ColumnOverride::EffectiveNdv {
                table: "lineitem".into(),
                column: "l_partkey".into(),
                ndv: 200,
            },
            ColumnOverride::EffectiveNdv {
                table: "orders".into(),
                column: "o_orderkey".into(),
                ndv: 500,
            },
            ColumnOverride::EffectiveNdv {
                table: "lineitem".into(),
                column: "l_orderkey".into(),
                ndv: 500,
            },
        ],
    )
    .expect("generate");
    (w, b, db)
}

/// Cost-inversion cross-check: the basic driver's decision sequence —
/// which plan ran on which contour with which budget — must be the same
/// whether "actual cost" comes from the engine's ledger or from the cost
/// model evaluated at the engine's measured true location. (Spends differ;
/// decisions may not.)
pub fn basic_sequences_match(b: &Bouquet, db: &Database, engine_basic: &EngineRunReport) -> bool {
    let qa = match measure_qa(db, &b.workload.query, &b.workload.ess) {
        Ok(qa) => qa,
        Err(_) => return false,
    };
    let sim = match b.run_basic(&qa) {
        Ok(run) => run,
        Err(_) => return false,
    };
    let sim_seq: Vec<(usize, usize, f64)> = sim
        .trace
        .iter()
        .map(|e| (e.contour, e.plan, e.budget))
        .collect();
    let eng_seq: Vec<(usize, usize, f64)> = engine_basic
        .executions
        .iter()
        .map(|e| (e.contour, e.plan, e.budget))
        .collect();
    sim_seq == eng_seq
}

fn decision_seq(r: &EngineRunReport) -> Vec<(usize, usize, f64)> {
    r.executions
        .iter()
        .map(|e| (e.contour, e.plan, e.budget))
        .collect()
}

/// Run the full experiment at scale factor `sf`, returning the rendered
/// text and the structured report.
pub fn run_at(sf: f64) -> (String, Table3Report) {
    run_at_with(sf, Parallelism::serial())
}

/// [`run_at`] with the engine's morsel-driven kernels running `par`-wide
/// (`pbq table3 --engine-jobs N`). The report is bit-identical for every
/// worker count; only wall-clock time changes.
pub fn run_at_with(sf: f64, par: Parallelism) -> (String, Table3Report) {
    let (w, b, db) = setup(sf);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3 — engine-measured bouquet execution for 2D_H_Q8A (sf {sf})\n"
    );

    // Estimated vs actual locations.
    let est = Estimator::new(&w.catalog);
    let lo: Vec<f64> = w.ess.dims.iter().map(|d| d.lo).collect();
    let hi: Vec<f64> = w.ess.dims.iter().map(|d| d.hi).collect();
    let qe = est.estimate_point(&w.query, &lo, &hi);
    let qa = measure_qa(&db, &w.query, &w.ess).expect("measure qa");
    let _ = writeln!(
        out,
        "qe (AVI estimate) = [{:.3e}, {:.3e}]   qa (measured) = [{:.3e}, {:.3e}]",
        qe[0], qe[1], qa[0], qa[1]
    );
    let _ = writeln!(
        out,
        "underestimation factors: {:.0}x, {:.0}x\n",
        qa[0] / qe[0],
        qa[1] / qe[1]
    );

    // NAT: plan chosen at qe, run to completion.
    let nat_cost = engine_run_nat(&b, &db, &qe);
    // Oracle: plan chosen at the true location, run to completion.
    let oracle_plan = w.optimizer().optimize(&qa).plan;
    let engine = Engine::new(&db, &w.query, &w.model.p).with_parallelism(par);
    let oracle_cost = engine.execute(&oracle_plan.root, f64::INFINITY).cost();

    let basic = engine_run_bouquet_with(&b, &db, false, par).expect("basic engine run");
    let optd = engine_run_bouquet_with(&b, &db, true, par).expect("optimized engine run");
    assert!(
        basic.completed && optd.completed,
        "bouquet runs must complete"
    );
    let crosscheck_ok = basic_sequences_match(&b, &db, &basic);

    // The same discovery with checkpoint/resume: re-executed prefixes are
    // fast-forwarded, so the per-contour spends shrink while the decision
    // sequence — which plan ran where with which budget — stays identical.
    let (basic_res, basic_rs) =
        engine_run_bouquet_resumable(&b, &db, false, par).expect("resumed basic engine run");
    let (optd_res, optd_rs) =
        engine_run_bouquet_resumable(&b, &db, true, par).expect("resumed optimized engine run");
    let resume_ok = decision_seq(&basic_res) == decision_seq(&basic)
        && decision_seq(&optd_res) == decision_seq(&optd)
        && basic_res.result_rows == basic.result_rows
        && optd_res.result_rows == optd.result_rows
        && basic_res.total_cost <= basic.total_cost * (1.0 + 1e-9)
        && optd_res.total_cost <= optd.total_cost * (1.0 + 1e-9);
    assert!(resume_ok, "resume must not change decisions or overspend");

    let _ = writeln!(out, "contour-wise breakdown (engine cost units):");
    let mut t = Table::new(vec![
        "contour",
        "#exec (basic)",
        "cost (basic)",
        "reused (basic)",
        "#exec (opt)",
        "cost (opt)",
        "reused (opt)",
    ]);
    let bb = basic.contour_breakdown();
    let oo = optd.contour_breakdown();
    let bbr = basic_res.contour_breakdown();
    let oor = optd_res.contour_breakdown();
    // Per-contour reused cost: plain spend minus resumed spend on the same
    // contour (the decision sequences are identical, so rows line up).
    let reused_on = |plain: &[(usize, usize, f64)], res: &[(usize, usize, f64)], cid: usize| {
        let p = plain.iter().find(|r| r.0 == cid)?;
        let r = res.iter().find(|r| r.0 == cid)?;
        Some(p.2 - r.2)
    };
    let max_contour = bb.iter().chain(&oo).map(|r| r.0).max().unwrap_or(0);
    for cid in 1..=max_contour {
        let b_row = bb.iter().find(|r| r.0 == cid);
        let o_row = oo.iter().find(|r| r.0 == cid);
        t.row(vec![
            format!("{cid}"),
            b_row.map(|r| r.1.to_string()).unwrap_or_else(|| "-".into()),
            b_row.map(|r| fnum(r.2)).unwrap_or_else(|| "-".into()),
            reused_on(&bb, &bbr, cid)
                .map(fnum)
                .unwrap_or_else(|| "-".into()),
            o_row.map(|r| r.1.to_string()).unwrap_or_else(|| "-".into()),
            o_row.map(|r| fnum(r.2)).unwrap_or_else(|| "-".into()),
            reused_on(&oo, &oor, cid)
                .map(fnum)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t.row(vec![
        "total".into(),
        basic.executions.len().to_string(),
        fnum(basic.total_cost),
        fnum(basic.total_cost - basic_res.total_cost),
        optd.executions.len().to_string(),
        fnum(optd.total_cost),
        fnum(optd.total_cost - optd_res.total_cost),
    ]);
    let _ = writeln!(out, "{}", t.render());

    let _ = writeln!(
        out,
        "performance summary       NAT        basic BOU   opt. BOU    optimal\n\
         (engine cost units)  {:>10} {:>11} {:>10} {:>10}",
        fnum(nat_cost),
        fnum(basic.total_cost),
        fnum(optd.total_cost),
        fnum(oracle_cost)
    );
    let _ = writeln!(
        out,
        "sub-optimality vs oracle: NAT {:.1}  basic {:.1}  optimized {:.1}",
        nat_cost / oracle_cost,
        basic.total_cost / oracle_cost,
        optd.total_cost / oracle_cost
    );
    let _ = writeln!(
        out,
        "with checkpoint/resume:   basic {:.1} (reused {}, {} resumed execs)  optimized {:.1} (reused {}, {} resumed execs)",
        basic_res.total_cost / oracle_cost,
        fnum(basic_rs.reused_cost),
        basic_rs.resumed_execs,
        optd_res.total_cost / oracle_cost,
        fnum(optd_rs.reused_cost),
        optd_rs.resumed_execs,
    );
    let _ = writeln!(
        out,
        "(paper: NAT 579s, basic 117s, optimized 69s, optimal 16s — i.e. 36x/7.2x/4.3x)"
    );
    let _ = writeln!(out, "result rows: {}", basic.result_rows);
    let _ = writeln!(
        out,
        "cost-inversion cross-check (engine vs simulator basic sequence): {}",
        if crosscheck_ok { "OK" } else { "MISMATCH" }
    );

    let report = Table3Report {
        workload: w.name.clone(),
        sf,
        qe: qe.0.clone(),
        qa: qa.0.clone(),
        nat_cost,
        oracle_cost,
        basic,
        optimized: optd,
        basic_resumed: basic_res,
        optimized_resumed: optd_res,
        basic_resume: basic_rs,
        optimized_resume: optd_rs,
        crosscheck_ok,
        resume_ok,
    };
    (out, report)
}

pub fn run() -> String {
    run_at(0.01).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        let (s, report) = run_at(0.01);
        let line = s
            .lines()
            .find(|l| l.starts_with("sub-optimality vs oracle"))
            .unwrap();
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        let (nat, basic, opt) = (nums[0], nums[1], nums[2]);
        // The paper's headline: NAT is an order of magnitude (or more)
        // worse than either bouquet driver (36x vs 7.2x/4.3x there).
        assert!(nat > 10.0 * basic, "NAT {nat} must dwarf basic BOU {basic}");
        assert!(
            basic >= opt * 0.95,
            "basic {basic} should not beat optimized {opt} materially"
        );
        assert!(opt >= 1.0);
        assert!(report.crosscheck_ok, "engine/simulator sequence mismatch");
    }

    #[test]
    fn table3_resume_engages_and_strictly_improves() {
        let (_, report) = run_at(0.01);
        assert!(report.resume_ok);
        assert!(
            report.basic_resume.reused_cost > 0.0,
            "basic run must reuse at least one checkpointed prefix"
        );
        assert!(
            report.basic_resumed.total_cost < report.basic.total_cost,
            "resume must strictly reduce the basic driver's spend: {} vs {}",
            report.basic_resumed.total_cost,
            report.basic.total_cost
        );
        // Reused + paid must reconstruct restart accounting exactly.
        let recon = report.basic_resumed.total_cost + report.basic_resume.reused_cost;
        assert!(
            (recon - report.basic.total_cost).abs() <= 1e-6 * report.basic.total_cost,
            "reused + paid must equal the plain spend: {recon} vs {}",
            report.basic.total_cost
        );
    }
}
