//! Bench-regression harness: reproducible benchmark reports and the
//! baseline comparison behind `pbq bench-check` and `pbq engine-mt`.
//!
//! Each runner re-executes one of the repository's standing benchmarks and
//! returns its report as a structured [`Value`] tree:
//!
//! * [`engine_bench`] — the vectorized-vs-tuple engine benchmark
//!   (`pbq engine-speedup`'s measurement core),
//! * [`identify_bench`] — the identification determinism/speedup benchmark
//!   (`pbq speedup`'s measurement core),
//! * [`engine_mt_bench`] — the morsel-driven scaling curve: the same plan
//!   suite executed at several worker counts, asserting every
//!   `EngineOutcome` is bit-identical across counts before any timing is
//!   trusted.
//!
//! [`compare`] diffs a current report against a committed baseline: numeric
//! fields that measure wall-clock time or derived ratios (keys ending in
//! `_s` or `_gain`, plus `speedup*`) are compared within a relative
//! tolerance band; every other field — equality/identity booleans, check
//! counts, shapes — must match exactly. The CI `bench-regression` job fails
//! on any diff.

use std::time::Instant;

use pb_bouquet::{persist, Bouquet, BouquetConfig};
use pb_cost::Parallelism;
use pb_engine::{Database, Engine, EngineOutcome};
use pb_plan::PlanNode;
use serde::Value;

/// The standing engine benchmark suite: part ⋈ lineitem ⋈ orders shaped six
/// ways so every vectorized operator appears (hash, sort-merge, index
/// nested-loops chains, anti join, aggregation, spill).
pub fn engine_plan_suite() -> Vec<(&'static str, PlanNode)> {
    let hj_pl = || PlanNode::HashJoin {
        build: Box::new(PlanNode::SeqScan { rel: 0 }),
        probe: Box::new(PlanNode::SeqScan { rel: 1 }),
        edges: vec![0],
    };
    vec![
        (
            "hash_join_chain",
            PlanNode::HashJoin {
                build: Box::new(hj_pl()),
                probe: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![1],
            },
        ),
        (
            "merge_join_top",
            PlanNode::SortMergeJoin {
                left: Box::new(hj_pl()),
                right: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![1],
                sort_left: true,
                sort_right: true,
            },
        ),
        (
            "index_nl_chain",
            PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexNLJoin {
                    outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                    inner_rel: 1,
                    edges: vec![0],
                }),
                inner_rel: 2,
                edges: vec![1],
            },
        ),
        (
            "anti_join",
            PlanNode::AntiJoin {
                left: Box::new(PlanNode::SeqScan { rel: 0 }),
                right: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            },
        ),
        (
            "hash_aggregate",
            PlanNode::HashAggregate {
                input: Box::new(hj_pl()),
            },
        ),
        (
            "spill_chain",
            PlanNode::Spill {
                input: Box::new(hj_pl()),
            },
        ),
    ]
}

/// Budget fractions of each plan's full cost probed by the equality
/// ladders: completion plus aborts in different operators and phases.
pub const BUDGET_FRACS: [f64; 5] = [1.0, 0.75, 0.4, 0.1, 0.02];

/// Build an object [`Value`] from static keys (declaration order kept).
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Field lookup on an object report (`None` on non-objects/missing keys).
pub fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_obj().and_then(|o| serde::find(o, key))
}

/// Numeric view of a leaf across the parser's `Int`/`UInt`/`Float` split.
pub fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn generate_db(sf: f64) -> Result<(pb_bouquet::Workload, Database), String> {
    let w = pb_workloads::h_q8a_2d(sf);
    let db = Database::generate_with(&w.catalog, 42, &[], Parallelism::auto())
        .map_err(|e| format!("data generation failed: {e}"))?;
    Ok((w, db))
}

fn base_rows(w: &pb_bouquet::Workload, db: &Database) -> u64 {
    w.query
        .relations
        .iter()
        .map(|r| db.table(r.table).rows as u64)
        .sum()
}

/// Vectorized-vs-tuple engine benchmark: the outcome-equality ladder over
/// [`engine_plan_suite`] × [`BUDGET_FRACS`], then best-of-3 full-suite
/// timings. Field names match `BENCH_engine.json`.
pub fn engine_bench(sf: f64) -> Result<Value, String> {
    let (w, db) = generate_db(sf)?;
    let eng = Engine::new(&db, &w.query, &w.model.p);
    let plans = engine_plan_suite();

    let mut checks = 0u64;
    for (name, plan) in &plans {
        let full = eng.execute_tuple(plan, f64::INFINITY);
        for frac in BUDGET_FRACS {
            let budget = if frac >= 1.0 {
                f64::INFINITY
            } else {
                full.cost() * frac
            };
            checks += 1;
            if eng.execute_tuple(plan, budget) != eng.execute_vectorized(plan, budget) {
                return Err(format!(
                    "engine bench: tuple/vectorized mismatch on {name} at budget fraction {frac}"
                ));
            }
        }
    }

    let mut tuple_s = f64::INFINITY;
    let mut vec_s = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for (_, plan) in &plans {
            std::hint::black_box(eng.execute_tuple(plan, f64::INFINITY));
        }
        tuple_s = tuple_s.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for (_, plan) in &plans {
            std::hint::black_box(eng.execute(plan, f64::INFINITY));
        }
        vec_s = vec_s.min(t0.elapsed().as_secs_f64());
    }

    Ok(obj(vec![
        ("workload", Value::Str(w.name.clone())),
        ("scale_factor", Value::Float(sf)),
        ("base_rows", Value::UInt(base_rows(&w, &db))),
        ("plans", Value::UInt(plans.len() as u64)),
        ("equality_checks", Value::UInt(checks)),
        ("equality_ok", Value::Bool(true)),
        ("tuple_s", Value::Float(tuple_s)),
        ("vectorized_s", Value::Float(vec_s)),
        ("speedup", Value::Float(tuple_s / vec_s.max(1e-12))),
    ]))
}

/// Identification benchmark: serial vs `workers`-way bouquet compilation
/// with the byte-identity, pruned-build and compiled-cost-matrix checks.
/// Every phase is timed best-of-3 so the derived gain ratios are quotients
/// of per-phase minima rather than single noisy samples. Field names match
/// `BENCH_identify.json`.
pub fn identify_bench(workload: &str, workers: usize) -> Result<Value, String> {
    let w = pb_workloads::by_name(workload)
        .ok_or_else(|| format!("identify bench: unknown workload {workload}"))?;
    let cfg = BouquetConfig::default();
    let identify_best = |par: Parallelism| -> Result<(Bouquet, pb_bouquet::PhaseTimings), String> {
        let mut best: Option<(Bouquet, pb_bouquet::PhaseTimings)> = None;
        for _ in 0..3 {
            let (b, t) = Bouquet::identify_timed(&w, &cfg, par)
                .map_err(|e| format!("identify bench: identify failed: {e}"))?;
            best = Some(match best {
                None => (b, t),
                Some((_, bt)) if t.total < bt.total => (b, t),
                Some(kept) => kept,
            });
        }
        best.ok_or_else(|| "identify bench: no runs".to_string())
    };
    let (b_seq, t_seq) = identify_best(Parallelism::serial())?;
    let (b_par, t_par) = identify_best(Parallelism::new(workers))?;
    let json_seq =
        persist::to_json(&b_seq).map_err(|e| format!("identify bench: serialize: {e}"))?;
    let json_par =
        persist::to_json(&b_par).map_err(|e| format!("identify bench: serialize: {e}"))?;

    let mut t_unpruned = f64::INFINITY;
    let mut unpruned = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        unpruned = Some(pb_optimizer::PlanDiagram::build_with_unpruned(
            &w.catalog,
            &w.query,
            &w.model,
            &w.ess,
            Parallelism::serial(),
        ));
        t_unpruned = t_unpruned.min(t0.elapsed().as_secs_f64());
    }
    let pruned_matches = unpruned.as_ref().is_some_and(|u| {
        u.optimal == b_seq.diagram.optimal
            && u.opt_cost == b_seq.diagram.opt_cost
            && u.plans.len() == b_seq.diagram.plans.len()
    });
    let mut t_treewalk = f64::INFINITY;
    let mut treewalk_cm = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        treewalk_cm = Some(
            b_seq
                .diagram
                .cost_matrix_reference(&w.catalog, &w.query, &w.model),
        );
        t_treewalk = t_treewalk.min(t0.elapsed().as_secs_f64());
    }

    let phase = |t: &pb_bouquet::PhaseTimings| {
        obj(vec![
            ("workers", Value::UInt(t.workers as u64)),
            ("diagram_s", Value::Float(t.diagram.as_secs_f64())),
            ("cost_matrix_s", Value::Float(t.cost_matrix.as_secs_f64())),
            ("contours_s", Value::Float(t.contours.as_secs_f64())),
            ("total_s", Value::Float(t.total.as_secs_f64())),
        ])
    };
    Ok(obj(vec![
        ("workload", Value::Str(w.name.clone())),
        ("grid_points", Value::UInt(w.ess.num_points() as u64)),
        ("dims", Value::UInt(w.d() as u64)),
        ("serial", phase(&t_seq)),
        ("parallel", phase(&t_par)),
        ("unpruned_diagram_serial_s", Value::Float(t_unpruned)),
        ("treewalk_cost_matrix_serial_s", Value::Float(t_treewalk)),
        (
            "diagram_pruning_gain",
            Value::Float(t_unpruned / t_seq.diagram.as_secs_f64().max(1e-12)),
        ),
        (
            "cost_matrix_compiled_gain",
            Value::Float(t_treewalk / t_seq.cost_matrix.as_secs_f64().max(1e-12)),
        ),
        ("byte_identical", Value::Bool(json_seq == json_par)),
        ("pruned_build_identical", Value::Bool(pruned_matches)),
        (
            "cost_matrix_identical",
            Value::Bool(treewalk_cm.as_ref() == Some(&b_seq.costs)),
        ),
    ]))
}

/// Morsel-driven scaling curve. Runs [`engine_plan_suite`] at every worker
/// count in `workers`, first asserting every `EngineOutcome` across the
/// budget ladder is bit-identical to the 1-worker engine, then timing
/// best-of-`reps` full-suite executions. `morsel_min` overrides the
/// morsel-dispatch row threshold (`None` keeps the production gate, which
/// leaves sub-131072-row relations on the serial path).
///
/// Wall-clock fields are honest measurements on whatever cores the host
/// exposes, so the `speedup_vs_1` column only exceeds 1 on real multicore
/// hosts — the identity bits are the invariant, the curve is the
/// observation. Any outcome divergence is an `Err`.
pub fn engine_mt_bench(
    sf: f64,
    workers: &[usize],
    morsel_min: Option<usize>,
    reps: usize,
) -> Result<Value, String> {
    let (w, db) = generate_db(sf)?;
    let plans = engine_plan_suite();
    let mk = |n: usize| {
        let mut e = Engine::new(&db, &w.query, &w.model.p).with_parallelism(Parallelism::new(n));
        if let Some(rows) = morsel_min {
            e = e.with_morsel_threshold(rows);
        }
        e
    };

    // Reference outcomes from the 1-worker engine across the budget ladder.
    let reference = mk(1);
    let mut ladder: Vec<(f64, EngineOutcome)> = Vec::new();
    for (_, plan) in &plans {
        let full = reference.execute(plan, f64::INFINITY);
        for frac in BUDGET_FRACS {
            let budget = if frac >= 1.0 {
                f64::INFINITY
            } else {
                full.cost() * frac
            };
            ladder.push((budget, reference.execute(plan, budget)));
        }
    }

    let mut curve = Vec::new();
    let mut wall_1 = f64::NAN;
    for &n in workers {
        let eng = mk(n);
        for ((name, plan), chunk) in plans.iter().zip(ladder.chunks(BUDGET_FRACS.len())) {
            for (budget, expect) in chunk {
                if eng.execute(plan, *budget) != *expect {
                    return Err(format!(
                        "engine-mt: outcome diverged at {n} workers on {name} (budget {budget})"
                    ));
                }
            }
        }
        let mut wall = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            for (_, plan) in &plans {
                std::hint::black_box(eng.execute(plan, f64::INFINITY));
            }
            wall = wall.min(t0.elapsed().as_secs_f64());
        }
        if wall_1.is_nan() {
            wall_1 = wall;
        }
        curve.push(obj(vec![
            ("workers", Value::UInt(n as u64)),
            ("wall_s", Value::Float(wall)),
            ("speedup_vs_1", Value::Float(wall_1 / wall.max(1e-12))),
        ]));
    }

    Ok(obj(vec![
        ("workload", Value::Str(w.name.clone())),
        ("scale_factor", Value::Float(sf)),
        ("base_rows", Value::UInt(base_rows(&w, &db))),
        ("plans", Value::UInt(plans.len() as u64)),
        (
            "budget_checks_per_worker_count",
            Value::UInt(ladder.len() as u64),
        ),
        (
            "morsel_min_rows",
            Value::UInt(morsel_min.unwrap_or(pb_cost::PARALLEL_MIN_MORSEL_ROWS) as u64),
        ),
        ("outcomes_identical", Value::Bool(true)),
        ("curve", Value::Arr(curve)),
    ]))
}

/// Checkpoint/resume ASO benchmark on the engine substrate: the Table 3
/// discovery runs plain and resumed, asserting the decision sequences and
/// result rows are identical before reporting the per-driver and
/// per-contour reused-vs-recomputed cost. Every field is a deterministic
/// engine cost unit (no wall-clock), so the baseline comparison is exact —
/// any drift in what resume reuses or pays fails the gate.
pub fn resume_bench(sf: f64) -> Result<Value, String> {
    use crate::engine_driver::{engine_run_bouquet_resumable, engine_run_bouquet_with, measure_qa};
    let (w, b, db) = crate::experiments::table3::setup(sf);
    let par = Parallelism::serial();

    let qa = measure_qa(&db, &w.query, &w.ess).map_err(|e| format!("resume bench: qa: {e}"))?;
    let oracle_plan = w.optimizer().optimize(&qa).plan;
    let oracle_cost = Engine::new(&db, &w.query, &w.model.p)
        .execute(&oracle_plan.root, f64::INFINITY)
        .cost();

    let seq = |r: &crate::engine_driver::EngineRunReport| -> Vec<(usize, usize, f64)> {
        r.executions
            .iter()
            .map(|e| (e.contour, e.plan, e.budget))
            .collect()
    };
    let run_pair = |optimized: bool| -> Result<_, String> {
        let plain = engine_run_bouquet_with(&b, &db, optimized, par)
            .map_err(|e| format!("resume bench: plain run: {e}"))?;
        let (res, stats) = engine_run_bouquet_resumable(&b, &db, optimized, par)
            .map_err(|e| format!("resume bench: resumed run: {e}"))?;
        if seq(&plain) != seq(&res) || plain.result_rows != res.result_rows {
            return Err("resume bench: resumed run diverged from plain run".to_string());
        }
        Ok((plain, res, stats))
    };
    let (basic, basic_res, basic_rs) = run_pair(false)?;
    let (optd, optd_res, optd_rs) = run_pair(true)?;

    // Per-contour reused-vs-recomputed spend (basic driver).
    let bb = basic.contour_breakdown();
    let bbr = basic_res.contour_breakdown();
    let contours: Vec<Value> = bb
        .iter()
        .map(|&(cid, n, plain_cost)| {
            let resumed_cost = bbr
                .iter()
                .find(|r| r.0 == cid)
                .map(|r| r.2)
                .unwrap_or(plain_cost);
            obj(vec![
                ("contour", Value::UInt(cid as u64)),
                ("executions", Value::UInt(n as u64)),
                ("recomputed_cost", Value::Float(resumed_cost)),
                ("reused_cost", Value::Float(plain_cost - resumed_cost)),
            ])
        })
        .collect();

    Ok(obj(vec![
        ("workload", Value::Str(w.name.clone())),
        ("scale_factor", Value::Float(sf)),
        ("oracle_cost", Value::Float(oracle_cost)),
        ("basic_cost", Value::Float(basic.total_cost)),
        ("basic_resumed_cost", Value::Float(basic_res.total_cost)),
        ("basic_reused_cost", Value::Float(basic_rs.reused_cost)),
        (
            "basic_resumed_execs",
            Value::UInt(basic_rs.resumed_execs as u64),
        ),
        ("optimized_cost", Value::Float(optd.total_cost)),
        ("optimized_resumed_cost", Value::Float(optd_res.total_cost)),
        ("optimized_reused_cost", Value::Float(optd_rs.reused_cost)),
        (
            "optimized_resumed_execs",
            Value::UInt(optd_rs.resumed_execs as u64),
        ),
        ("aso_basic", Value::Float(basic.total_cost / oracle_cost)),
        (
            "aso_basic_resumed",
            Value::Float(basic_res.total_cost / oracle_cost),
        ),
        ("aso_optimized", Value::Float(optd.total_cost / oracle_cost)),
        (
            "aso_optimized_resumed",
            Value::Float(optd_res.total_cost / oracle_cost),
        ),
        ("sequences_identical", Value::Bool(true)),
        (
            "reuse_engaged",
            Value::Bool(basic_rs.reused_cost > 0.0 || optd_rs.reused_cost > 0.0),
        ),
        ("basic_contours", Value::Arr(contours)),
    ]))
}

/// Hostile typed-dimension gate: both hostile workloads
/// (`HOSTILE_INEQ_2D`, `HOSTILE_ANTI_2D`) through the full ladder —
/// engine-substrate basic/optimized/robust drivers, simulator cross-check
/// and whole-grid MSO evaluation. Everything reported is computed in
/// deterministic cost units (no wall clock except `wall_s`), so every
/// field other than `wall_s` compares **exactly** against the baseline: a
/// drifting decision sequence, a lost guarantee, or a cost-model change on
/// the inequality/anti axes fails the gate.
pub fn hostile_bench(sf: f64) -> Result<Value, String> {
    let t0 = Instant::now();
    let (_, reports) = crate::experiments::hostile::run_at_with(sf, Parallelism::serial());
    let rows = reports
        .iter()
        .map(|r| {
            obj(vec![
                ("workload", Value::Str(r.workload.clone())),
                (
                    "dim_kinds",
                    Value::Arr(r.dim_kinds.iter().cloned().map(Value::Str).collect()),
                ),
                (
                    "completed",
                    Value::Bool(r.basic.completed && r.optimized.completed),
                ),
                ("crosscheck_ok", Value::Bool(r.crosscheck_ok)),
                ("mso_within_bound", Value::Bool(r.mso_within_bound)),
                ("robust_degraded", Value::Bool(r.robust_degraded)),
                (
                    "basic_executions",
                    Value::UInt(r.basic.executions.len() as u64),
                ),
                (
                    "optimized_executions",
                    Value::UInt(r.optimized.executions.len() as u64),
                ),
                ("result_rows", Value::UInt(r.basic.result_rows as u64)),
                ("nat_cost", Value::Float(r.nat_cost)),
                ("oracle_cost", Value::Float(r.oracle_cost)),
                ("basic_cost", Value::Float(r.basic.total_cost)),
                ("optimized_cost", Value::Float(r.optimized.total_cost)),
                ("robust_cost", Value::Float(r.robust_cost)),
                ("nat_mso", Value::Float(r.nat_mso)),
                ("seer_mso", Value::Float(r.seer_mso)),
                ("parqo_mso", Value::Float(r.parqo_mso)),
                ("bou_mso", Value::Float(r.bou_mso)),
                ("bou_aso", Value::Float(r.bou_aso)),
                ("mso_bound", Value::Float(r.mso_bound)),
            ])
        })
        .collect();
    Ok(obj(vec![
        ("sf", Value::Float(sf)),
        ("workloads", Value::Arr(rows)),
        ("wall_s", Value::Float(t0.elapsed().as_secs_f64())),
    ]))
}

/// Wall-clock fields (`*_s`): banded by the relative tolerance with an
/// absolute noise floor. Everything else must match the baseline exactly,
/// except ratio fields (see [`is_ratio_key`]).
fn is_timing_key(key: &str) -> bool {
    key.ends_with("_s")
}

/// Derived-ratio fields (`speedup*`, `*_gain`): quotients of two noisy
/// timings, so they get a multiplicative factor-of-2 band — loose enough
/// for scheduler jitter on short phases, tight enough that a vectorization
/// or pruning collapse (a 4x ratio dropping to ~1x) still fails the gate.
fn is_ratio_key(key: &str) -> bool {
    key.ends_with("_gain") || key.starts_with("speedup")
}

/// Recursively diff `current` against `baseline`. Timing fields (per
/// [`is_timing_key`]) may drift by `tol` (relative, e.g. `0.25` = ±25%);
/// all other leaves — booleans, counts, names — must be equal. Returns the
/// list of human-readable violations (empty ⇒ no regression).
pub fn compare(baseline: &Value, current: &Value, tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    compare_at(baseline, current, tol, "", &mut diffs);
    diffs
}

fn compare_at(baseline: &Value, current: &Value, tol: f64, path: &str, diffs: &mut Vec<String>) {
    match (baseline, current) {
        (Value::Obj(b), Value::Obj(c)) => {
            for (k, bv) in b {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match serde::find(c, k) {
                    Some(cv) if is_timing_key(k) || is_ratio_key(k) => {
                        let (Some(bn), Some(cn)) = (as_f64(bv), as_f64(cv)) else {
                            diffs.push(format!("{p}: timing field is not numeric"));
                            continue;
                        };
                        if is_timing_key(k) {
                            // Relative band around the baseline plus a 15ms
                            // additive noise term: scheduler jitter on
                            // phases that finish in milliseconds cannot
                            // fail the gate, while a 2x regression on the
                            // phases that dominate wall-clock still does.
                            let band = bn.abs() * tol + 0.015;
                            if (cn - bn).abs() > band {
                                diffs.push(format!(
                                    "{p}: {cn:.6} outside ±{:.0}% of baseline {bn:.6}",
                                    tol * 100.0
                                ));
                            }
                        } else if cn < bn / 2.0 || cn > bn * 2.0 {
                            diffs.push(format!(
                                "{p}: ratio {cn:.3} outside [x0.5, x2] of baseline {bn:.3}"
                            ));
                        }
                    }
                    Some(cv) => compare_at(bv, cv, tol, &p, diffs),
                    None => diffs.push(format!("{p}: missing from current report")),
                }
            }
            for (k, _) in c {
                if serde::find(b, k).is_none() {
                    diffs.push(format!("{path}.{k}: not in baseline (run with --update)"));
                }
            }
        }
        (Value::Arr(b), Value::Arr(c)) => {
            if b.len() != c.len() {
                diffs.push(format!(
                    "{path}: length {} vs baseline {}",
                    c.len(),
                    b.len()
                ));
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                compare_at(bv, cv, tol, &format!("{path}[{i}]"), diffs);
            }
        }
        (b, c) => {
            // Numeric leaves compare by value so 2 == 2.0 across the
            // Int/UInt/Float split the parser introduces.
            let same = match (as_f64(b), as_f64(c)) {
                (Some(bn), Some(cn)) => bn == cn,
                _ => b == c,
            };
            if !same {
                let j = |v: &Value| serde_json::to_string(v).unwrap_or_else(|_| "null".into());
                diffs.push(format!("{path}: {} != baseline {}", j(c), j(b)));
            }
        }
    }
}

/// Render a report with 2-space indentation (the committed-artifact format;
/// the compat `serde_json::to_string` writer is compact).
pub fn to_pretty(v: &Value) -> String {
    let mut out = String::new();
    pretty_at(v, 0, &mut out);
    out.push('\n');
    out
}

fn pretty_at(v: &Value, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    match v {
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                out.push('"');
                out.push_str(k);
                out.push_str("\": ");
                pretty_at(val, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty_at(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        leaf => out.push_str(&serde_json::to_string(leaf).unwrap_or_else(|_| "null".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f64) -> Value {
        Value::Float(x)
    }

    #[test]
    fn compare_bands_timing_and_pins_identity() {
        let base = obj(vec![
            ("total_s", f(1.0)),
            ("speedup", f(4.0)),
            ("equality_ok", Value::Bool(true)),
            ("plans", Value::UInt(6)),
            ("nested", obj(vec![("wall_s", f(0.5))])),
        ]);
        // Within ±25% on timings, identical elsewhere: clean.
        let ok = obj(vec![
            ("total_s", f(1.2)),
            ("speedup", f(3.2)),
            ("equality_ok", Value::Bool(true)),
            ("plans", Value::UInt(6)),
            ("nested", obj(vec![("wall_s", f(0.55))])),
        ]);
        assert!(compare(&base, &ok, 0.25).is_empty());
        // Timing outside the band.
        let mut slow = ok.clone();
        if let Value::Obj(o) = &mut slow {
            o[0].1 = f(1.3);
        }
        assert_eq!(compare(&base, &slow, 0.25).len(), 1);
        // Identity field flipped: exact comparison, no band.
        let mut broken = ok.clone();
        if let Value::Obj(o) = &mut broken {
            o[2].1 = Value::Bool(false);
        }
        assert_eq!(compare(&base, &broken, 0.25).len(), 1);
        // Ratio collapse beyond the factor-of-2 band.
        let mut collapsed = ok.clone();
        if let Value::Obj(o) = &mut collapsed {
            o[1].1 = f(1.5);
        }
        assert_eq!(compare(&base, &collapsed, 0.25).len(), 1);
    }

    #[test]
    fn compare_flags_shape_changes() {
        let row = |w: u64| obj(vec![("workers", Value::UInt(w)), ("wall_s", f(1.0))]);
        let base = obj(vec![("curve", Value::Arr(vec![row(1)]))]);
        let grown = obj(vec![("curve", Value::Arr(vec![row(1), row(2)]))]);
        assert!(!compare(&base, &grown, 0.25).is_empty());
        let renamed = obj(vec![("curve", Value::Arr(vec![row(2)]))]);
        assert!(!compare(&base, &renamed, 0.25).is_empty());
    }

    #[test]
    fn pretty_report_parses_back() {
        let v = obj(vec![
            ("name", Value::Str("x".into())),
            ("xs", Value::Arr(vec![Value::UInt(1), Value::UInt(2)])),
            ("t_s", f(0.25)),
        ]);
        let text = to_pretty(&v);
        let back: Value = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn engine_mt_outcomes_identical_at_tiny_scale() {
        // Tiny data with the morsel gate lowered so the parallel kernels
        // actually engage; identity must hold at every worker count.
        let report = engine_mt_bench(0.002, &[1, 2, 4], Some(64), 1).expect("engine_mt_bench");
        assert_eq!(get(&report, "outcomes_identical"), Some(&Value::Bool(true)));
        let curve = get(&report, "curve")
            .and_then(Value::as_arr)
            .expect("curve");
        assert_eq!(curve.len(), 3);
    }
}
