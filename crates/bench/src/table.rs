//! Minimal fixed-width table renderer for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly: scientific for big/small magnitudes.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(7.46219), "7.46");
        assert_eq!(fnum(123.4), "123");
        assert_eq!(fnum(1.5e7), "1.50e7");
        assert_eq!(fnum(2e-5), "2.00e-5");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
