//! `pbq` — interactive exploration of the plan-bouquet system.
//!
//! ```text
//! pbq list                                   # available workloads
//! pbq show WORKLOAD                          # query, ESS dims, join graph
//! pbq classify WORKLOAD                      # predicate uncertainty (§4.1)
//! pbq diagram WORKLOAD                       # POSP summary (+ASCII map in 2D)
//! pbq optimize WORKLOAD f1,f2,...            # optimal plan at a location
//! pbq identify WORKLOAD [--save FILE]        # compile the bouquet
//! pbq run WORKLOAD f1,f2,... [--optimized] [--load FILE]
//! pbq sensitivity WORKLOAD                   # §8 dimension analysis
//! pbq speedup WORKLOAD [--workers N] [--json PATH]  # identification bench
//! pbq identify-cache WORKLOAD [--dir DIR] [--expect hit|miss|refresh]
//!                    [--min-speedup F] [--verify] [--json PATH]  # cached identification
//! pbq identify-sampled WORKLOAD [--epsilon F] [--delta F] [--seed N]
//!                    [--min-speedup F] [--no-verify] [--json PATH]  # (ε,δ)-sampled identification
//! pbq engine-speedup [--sf X] [--json PATH]  # vectorized-vs-tuple engine bench
//! pbq engine-mt [--sf X] [--workers 1,2,4] [--json PATH]  # morsel scaling curve
//! pbq bench-check [--baseline PATH] [--update] [--tolerance F]  # regression gate
//! pbq sql "SELECT ... ?"  [f1,f2,...]        # ad-hoc SQL: identify (+run)
//! pbq serve [--addr A] [--workloads W1,W2] [--workers N] [--queue-cap N]
//!           [--tenant-cap F] [--smoke]       # bouquet-as-a-service server
//! pbq serve-bench [--clients 1,2,4,8] [--requests N] [--json PATH]
//!                                            # concurrent-client sweep
//! pbq chaos [--seed N]                       # fault-injection campaign
//! pbq table3 [--sf N] [--json PATH]          # engine-backed Table 3 + cross-check
//! ```
//!
//! Locations are given as per-axis fractions in `[0,1]` (geometric
//! interpolation between each dimension's bounds). Every subcommand accepts
//! `--jobs N` to cap identification worker threads (default: all cores) and
//! `--engine-jobs N` to run the engine's morsel-driven kernels `N`-wide
//! (default: 1, the serial engine; outcomes are bit-identical either way).

use pb_bouquet::{dim_analysis, persist, Bouquet, BouquetConfig};
use pb_cost::uncertainty::{classify, Uncertainty};
use pb_cost::Parallelism;
use pb_workloads::{by_name, specs};

fn main() {
    let args = extract_jobs_flag(std::env::args().skip(1).collect());
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
        return;
    };
    match cmd {
        "list" => list(),
        "show" => with_workload(&args, show),
        "classify" => with_workload(&args, classify_cmd),
        "diagram" => with_workload(&args, diagram),
        "optimize" => with_workload(&args, optimize),
        "identify" => with_workload(&args, identify),
        "run" => with_workload(&args, run_cmd),
        "sensitivity" => with_workload(&args, sensitivity),
        "speedup" => with_workload(&args, speedup),
        "identify-cache" => with_workload(&args, identify_cache),
        "identify-sampled" => with_workload(&args, identify_sampled_cmd),
        "engine-speedup" => engine_speedup(&args[1..]),
        "engine-mt" => engine_mt(&args[1..]),
        "bench-check" => bench_check(&args[1..]),
        "sql" => sql_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "serve-bench" => serve_bench_cmd(&args[1..]),
        "chaos" => chaos_cmd(&args[1..]),
        "table3" => table3_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Engine worker count set by the global `--engine-jobs N` flag (default:
/// serial — the multicore path is opt-in and outcome-neutral).
static ENGINE_JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

fn engine_par() -> Parallelism {
    match ENGINE_JOBS.get() {
        Some(&n) => Parallelism::new(n),
        None => Parallelism::serial(),
    }
}

/// Strip the global `--jobs N` (identification worker threads) and
/// `--engine-jobs N` (engine morsel workers) flags, routing them to their
/// overrides.
fn extract_jobs_flag(mut args: Vec<String>) -> Vec<String> {
    let numeric = |args: &[String], i: usize, flag: &str| -> usize {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a positive integer");
                std::process::exit(2);
            })
    };
    if let Some(i) = args.iter().position(|a| a == "--jobs" || a == "-j") {
        pb_cost::set_default_workers(numeric(&args, i, "--jobs"));
        args.drain(i..=i + 1);
    }
    if let Some(i) = args.iter().position(|a| a == "--engine-jobs") {
        let n = numeric(&args, i, "--engine-jobs").max(1);
        let _ = ENGINE_JOBS.set(n);
        args.drain(i..=i + 1);
    }
    args
}

fn usage() {
    eprintln!(
        "usage: pbq <list|show|classify|diagram|optimize|identify|run|sensitivity|speedup\
         |identify-cache|identify-sampled|engine-speedup|engine-mt|bench-check|serve\
         |serve-bench|chaos|table3> \
         [WORKLOAD] [args...] \
         [--jobs N] [--engine-jobs N]\nrun `pbq list` for workload names"
    );
}

fn with_workload(args: &[String], f: fn(pb_bouquet::Workload, &[String])) {
    let Some(name) = args.get(1) else {
        usage();
        return;
    };
    match by_name(name) {
        Some(w) => f(w, &args[2..]),
        None => {
            eprintln!("unknown workload {name}; run `pbq list`");
            std::process::exit(1);
        }
    }
}

fn parse_fractions(w: &pb_bouquet::Workload, s: &str) -> pb_cost::SelPoint {
    let fr: Vec<f64> = s
        .split(',')
        .map(|t| t.trim().parse().expect("fraction in [0,1]"))
        .collect();
    assert_eq!(fr.len(), w.d(), "need {} comma-separated fractions", w.d());
    w.ess.point_at_fractions(&fr)
}

fn list() {
    println!("benchmark suite (paper Table 2):");
    for s in specs() {
        println!(
            "  {:<11} {:?}({}) dims={} paper C_max/C_min≈{}",
            s.name, s.shape, s.relations, s.dims, s.paper_cost_ratio
        );
    }
    println!("auxiliary: EQ_1D  2D_H_Q8A  3D_H_Q5B  4D_H_Q8B");
    println!("hostile:   HOSTILE_INEQ_2D  HOSTILE_ANTI_2D");
}

fn show(w: pb_bouquet::Workload, _rest: &[String]) {
    println!("workload {}  (catalog {})", w.name, w.catalog.name);
    println!("relations:");
    for r in &w.query.relations {
        let t = w.catalog.table_by_id(r.table);
        println!(
            "  {:<20} {:>12} rows, {} selections",
            r.alias,
            t.rows as u64,
            r.selections.len()
        );
    }
    println!("joins:");
    for (i, j) in w.query.joins.iter().enumerate() {
        let tag = match j.selectivity.error_dim() {
            Some(d) => format!("ERROR-PRONE dim {d}"),
            None => "fixed".into(),
        };
        println!(
            "  #{i} {} ⋈ {} [{tag}]",
            w.query.relations[j.left_rel].alias, w.query.relations[j.right_rel].alias
        );
    }
    println!("ESS ({} dims, {} grid points):", w.d(), w.ess.num_points());
    for (d, dim) in w.ess.dims.iter().enumerate() {
        println!(
            "  dim {d}: {:<14} [{:.3e}, {:.3e}] x{}",
            dim.name, dim.lo, dim.hi, w.ess.res[d]
        );
    }
    println!("join graph: {:?}", w.query.join_graph().shape());
}

fn classify_cmd(w: pb_bouquet::Workload, _rest: &[String]) {
    println!("predicate uncertainty classification (Section 4.1 rules):");
    for c in classify(&w.catalog, &w.query) {
        println!(
            "  {:<34} {:?}: {}",
            format!("{:?}", c.predicate),
            c.uncertainty,
            c.reason
        );
    }
    let n_high = classify(&w.catalog, &w.query)
        .iter()
        .filter(|c| c.uncertainty >= Uncertainty::High)
        .count();
    println!("suggested ESS dimensions (High+): {n_high}");
}

fn diagram(w: pb_bouquet::Workload, _rest: &[String]) {
    let d = w.diagram();
    let (cmin, cmax) = d.cost_bounds();
    println!(
        "POSP: {} plans over {} points; C_min {:.0}, C_max {:.0} ({:.0}x)",
        d.plan_count(),
        w.ess.num_points(),
        cmin,
        cmax,
        cmax / cmin
    );
    let mut sizes: Vec<(usize, usize)> = d.region_sizes().into_iter().enumerate().collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    for (pid, size) in sizes.iter().take(8) {
        println!("  P{pid:<3} owns {size:>6} points");
    }
    if w.d() == 2 {
        println!("\nplan diagram (selectivities grow up/right):");
        print!("{}", d.render_2d());
    }
}

fn optimize(w: pb_bouquet::Workload, rest: &[String]) {
    let Some(loc) = rest.first() else {
        eprintln!("usage: pbq optimize WORKLOAD f1,f2,...");
        return;
    };
    let q = parse_fractions(&w, loc);
    let best = w.optimizer().optimize(&q);
    println!("location {:?}", &q.0);
    println!(
        "optimal cost {:.1}, estimated rows {:.1}",
        best.cost, best.rows
    );
    print!("{}", best.plan.root.explain(&w.query, &w.catalog));
}

fn identify(w: pb_bouquet::Workload, rest: &[String]) {
    let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
    println!(
        "bouquet: {} plans on {} contours (ρ = {}), guarantee MSO ≤ {:.1}",
        b.stats.bouquet_cardinality,
        b.stats.num_contours,
        b.rho(),
        b.mso_bound()
    );
    for c in &b.contours {
        println!(
            "  IC{:<2} budget {:>14.0}  {:>4} frontier pts  plans {:?}",
            c.id,
            c.budget,
            c.points.len(),
            c.plan_set
        );
    }
    if let Some(i) = rest.iter().position(|a| a == "--save") {
        let path = rest.get(i + 1).expect("--save FILE");
        persist::save(&b, path).expect("save bouquet");
        println!("saved to {path}");
    }
}

fn run_cmd(w: pb_bouquet::Workload, rest: &[String]) {
    let Some(loc) = rest.first() else {
        eprintln!("usage: pbq run WORKLOAD f1,f2,... [--optimized] [--load FILE]");
        return;
    };
    let qa = parse_fractions(&w, loc);
    let b = match rest.iter().position(|a| a == "--load") {
        Some(i) => persist::load(rest.get(i + 1).expect("--load FILE")).expect("load bouquet"),
        None => Bouquet::identify(&w, &BouquetConfig::default()).expect("identify"),
    };
    let optimized = rest.iter().any(|a| a == "--optimized");
    let run = if optimized {
        b.run_optimized(&qa).unwrap()
    } else {
        b.run_basic(&qa).unwrap()
    };
    for e in &run.trace {
        let learned = e
            .learned
            .map(|(d, v)| format!("  learned dim{d} -> {v:.3e}"))
            .unwrap_or_default();
        println!(
            "IC{:<2} P{:<3} spent {:>14.1} / {:>14.1} {}{}{}",
            e.contour,
            e.plan,
            e.spent,
            e.budget,
            if e.spilled { "spill " } else { "" },
            if e.completed { "DONE" } else { "" },
            learned
        );
    }
    let opt = b.pic_cost(&qa);
    println!(
        "total {:.1}; SubOpt(∗,qa) = {:.2} (guarantee {:.1})",
        run.total_cost,
        run.suboptimality(opt),
        b.mso_bound()
    );
}

fn sql_cmd(rest: &[String]) {
    let Some(sql) = rest.first() else {
        eprintln!("usage: pbq sql \"SELECT ... WHERE pred?\" [f1,f2,...]");
        return;
    };
    let cat = pb_catalog::tpch::catalog(1.0);
    let w = match pb_workloads::workload_from_sql(&cat, sql, "adhoc", 4.0, 24) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed: {} relations, {} error dims",
        w.query.num_relations(),
        w.d()
    );
    identify(w.clone(), &[]);
    if let Some(loc) = rest.get(1) {
        run_cmd(w, std::slice::from_ref(loc));
    }
}

/// Benchmark identification sequential vs. parallel and verify the two
/// produce byte-identical artefacts. `--workers N` pins the parallel run's
/// worker count (default: all cores / the global `--jobs` override).
/// `--json PATH` additionally merges the per-phase wall-clock numbers —
/// including the unpruned-build and tree-walk cost-matrix reference paths —
/// into the shared report file as its `"identify"` section (the CI
/// `BENCH_identify.json` artifact).
fn speedup(w: pb_bouquet::Workload, rest: &[String]) {
    use std::time::Instant;

    let par = match rest.iter().position(|a| a == "--workers") {
        Some(i) => {
            let n: usize = rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--workers needs a positive integer");
                    std::process::exit(2);
                });
            Parallelism::new(n)
        }
        None => Parallelism::auto(),
    };
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());
    let cfg = BouquetConfig::default();
    println!(
        "identification speedup on {} ({} grid points, {} dims)",
        w.name,
        w.ess.num_points(),
        w.d()
    );

    let (b_seq, t_seq) =
        Bouquet::identify_timed(&w, &cfg, Parallelism::serial()).expect("sequential identify");
    let (b_par, t_par) = Bouquet::identify_timed(&w, &cfg, par).expect("parallel identify");

    let json_seq = persist::to_json(&b_seq).expect("serialize sequential");
    let json_par = persist::to_json(&b_par).expect("serialize parallel");
    let identical = json_seq == json_par;

    // Reference paths: the bound-pruned build vs the plain DP everywhere,
    // and the compiled-program cost matrix vs the recursive tree walk.
    let t0 = Instant::now();
    let unpruned = pb_optimizer::PlanDiagram::build_with_unpruned(
        &w.catalog,
        &w.query,
        &w.model,
        &w.ess,
        Parallelism::serial(),
    );
    let t_unpruned = t0.elapsed();
    let pruned_matches = unpruned.optimal == b_seq.diagram.optimal
        && unpruned.opt_cost == b_seq.diagram.opt_cost
        && unpruned.plans.len() == b_seq.diagram.plans.len();
    let t0 = Instant::now();
    let treewalk_cm = b_seq
        .diagram
        .cost_matrix_reference(&w.catalog, &w.query, &w.model);
    let t_treewalk = t0.elapsed();
    let matrix_matches = treewalk_cm == b_seq.costs;

    let secs = std::time::Duration::as_secs_f64;
    let row = |phase: &str, seq: std::time::Duration, par_t: std::time::Duration| {
        let sp = secs(&seq) / secs(&par_t).max(1e-12);
        println!("  {phase:<12} {:>12.1?} {:>12.1?} {sp:>9.2}x", seq, par_t);
    };
    println!(
        "  {:<12} {:>12} {:>12} {:>10}",
        "phase",
        "1 worker",
        format!("{} workers", t_par.workers),
        "speedup"
    );
    row("diagram", t_seq.diagram, t_par.diagram);
    row("cost_matrix", t_seq.cost_matrix, t_par.cost_matrix);
    row("contours", t_seq.contours, t_par.contours);
    row("total", t_seq.total, t_par.total);
    println!(
        "  diagram      bound-pruned vs unpruned (serial): {:.1?} vs {:.1?} ({:.2}x), identical: {}",
        t_seq.diagram,
        t_unpruned,
        secs(&t_unpruned) / secs(&t_seq.diagram).max(1e-12),
        if pruned_matches { "yes" } else { "NO" }
    );
    println!(
        "  cost_matrix  compiled vs tree-walk (serial):    {:.1?} vs {:.1?} ({:.2}x), identical: {}",
        t_seq.cost_matrix,
        t_treewalk,
        secs(&t_treewalk) / secs(&t_seq.cost_matrix).max(1e-12),
        if matrix_matches { "yes" } else { "NO" }
    );
    println!(
        "  artefacts byte-identical: {}",
        if identical {
            "yes"
        } else {
            "NO — DETERMINISM BUG"
        }
    );

    if let Some(path) = json_path {
        use serde::Value;
        let phase_obj = |t: &pb_bouquet::PhaseTimings| {
            Value::Obj(vec![
                ("workers".into(), Value::UInt(t.workers as u64)),
                ("diagram_s".into(), Value::Float(secs(&t.diagram))),
                ("cost_matrix_s".into(), Value::Float(secs(&t.cost_matrix))),
                ("contours_s".into(), Value::Float(secs(&t.contours))),
                ("total_s".into(), Value::Float(secs(&t.total))),
            ])
        };
        let section = Value::Obj(vec![
            ("workload".into(), Value::Str(w.name.clone())),
            ("grid_points".into(), Value::UInt(w.ess.num_points() as u64)),
            ("dims".into(), Value::UInt(w.d() as u64)),
            ("serial".into(), phase_obj(&t_seq)),
            ("parallel".into(), phase_obj(&t_par)),
            (
                "unpruned_diagram_serial_s".into(),
                Value::Float(secs(&t_unpruned)),
            ),
            (
                "treewalk_cost_matrix_serial_s".into(),
                Value::Float(secs(&t_treewalk)),
            ),
            (
                "diagram_pruning_gain".into(),
                Value::Float(secs(&t_unpruned) / secs(&t_seq.diagram).max(1e-12)),
            ),
            (
                "cost_matrix_compiled_gain".into(),
                Value::Float(secs(&t_treewalk) / secs(&t_seq.cost_matrix).max(1e-12)),
            ),
            ("byte_identical".into(), Value::Bool(identical)),
            ("pruned_build_identical".into(), Value::Bool(pruned_matches)),
            ("cost_matrix_identical".into(), Value::Bool(matrix_matches)),
        ]);
        merge_json_section(&path, "identify", section);
    }

    if !identical || !pruned_matches || !matrix_matches {
        std::process::exit(1);
    }
}

/// Replace (or append) one top-level section of a JSON report file, keeping
/// the other sections intact — `identify-cache` and `identify-sampled` both
/// merge into the shared `BENCH_identify.json` artifact this way.
fn merge_json_section(path: &str, key: &str, section: serde::Value) {
    use serde::Value;
    let mut obj: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Obj(pairs)) => pairs,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    match obj.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = section,
        None => obj.push((key.to_string(), section)),
    }
    std::fs::write(path, pb_bench::regress::to_pretty(&Value::Obj(obj)))
        .expect("write --json report");
    println!("  wrote {path} (section \"{key}\")");
}

/// Content-addressed cached identification: `pbq identify-cache WORKLOAD
/// [--dir DIR] [--expect hit|miss|refresh] [--min-speedup F] [--verify]
/// [--json PATH]`. Serves the bouquet from the cache when a valid entry
/// exists, re-identifies incrementally after statistics drift, and builds +
/// stores otherwise. `--expect` asserts the outcome kind, `--min-speedup`
/// gates the warm-hit speedup over the stored cold-build time, and
/// `--verify` recompiles from scratch and demands byte-identity. Exits
/// non-zero on any violated assertion.
fn identify_cache(w: pb_bouquet::Workload, rest: &[String]) {
    use pb_bouquet::{BouquetCache, CacheOutcome};
    use serde::Value;

    let dir = rest
        .iter()
        .position(|a| a == "--dir")
        .map(|i| rest.get(i + 1).expect("--dir DIR").clone())
        .unwrap_or_else(|| ".pb-cache".into());
    let expect = rest
        .iter()
        .position(|a| a == "--expect")
        .map(|i| rest.get(i + 1).expect("--expect hit|miss|refresh").clone());
    let min_speedup: Option<f64> = rest.iter().position(|a| a == "--min-speedup").map(|i| {
        rest.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--min-speedup needs a positive number");
                std::process::exit(2);
            })
    });
    let verify = rest.iter().any(|a| a == "--verify");
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());

    let cfg = BouquetConfig::default();
    let cache = BouquetCache::new(&dir).expect("open cache dir");
    let (bouquet, outcome) = cache
        .get_or_identify(&w, &cfg, Parallelism::auto())
        .expect("cached identification");

    println!(
        "cached identification of {} ({} grid points) in {dir}",
        w.name,
        w.ess.num_points()
    );
    let mut failed = false;
    let mut fields: Vec<(String, Value)> = vec![
        ("workload".into(), Value::Str(w.name.clone())),
        ("grid_points".into(), Value::UInt(w.ess.num_points() as u64)),
    ];
    let kind = match &outcome {
        CacheOutcome::Hit {
            cold_build_s,
            load_s,
        } => {
            // Best-of-N, as the regression benches do: the first load pays
            // file-cache and allocator warm-up that repeat hits don't.
            let mut load_s = *load_s;
            for _ in 0..4 {
                if let (
                    _,
                    CacheOutcome::Hit {
                        load_s: again_s, ..
                    },
                ) = cache
                    .get_or_identify(&w, &cfg, Parallelism::auto())
                    .expect("repeat cache hit")
                {
                    load_s = load_s.min(again_s);
                }
            }
            let load_s = &load_s;
            let speedup = cold_build_s / load_s.max(1e-12);
            println!(
                "  HIT: loaded in {:.3}ms (cold build took {:.3}ms) — {speedup:.0}x",
                load_s * 1e3,
                cold_build_s * 1e3
            );
            if let Some(min) = min_speedup {
                if speedup < min {
                    eprintln!("identify-cache FAILED: speedup {speedup:.1}x below required {min}x");
                    failed = true;
                }
            }
            fields.push(("cold_build_s".into(), Value::Float(*cold_build_s)));
            fields.push(("warm_load_s".into(), Value::Float(*load_s)));
            fields.push(("speedup_warm_vs_cold".into(), Value::Float(speedup)));
            "hit"
        }
        CacheOutcome::Miss { build_s } => {
            println!("  MISS: identified and stored in {:.3}ms", build_s * 1e3);
            fields.push(("cold_build_s".into(), Value::Float(*build_s)));
            "miss"
        }
        CacheOutcome::Refreshed {
            build_s,
            incremental,
        } => {
            println!(
                "  REFRESH: statistics drift; incremental re-identification in {:.3}ms \
                 ({}/{} grid chunks re-optimized, {}/{} contours reused{})",
                build_s * 1e3,
                incremental.diagram.chunks_changed,
                incremental.diagram.chunks_total,
                incremental.contours_reused,
                incremental.contours_total,
                if incremental.diagram.full_rebuild {
                    "; fell back to full rebuild"
                } else {
                    ""
                }
            );
            fields.push(("refresh_build_s".into(), Value::Float(*build_s)));
            fields.push((
                "chunks_changed".into(),
                Value::UInt(incremental.diagram.chunks_changed as u64),
            ));
            fields.push((
                "contours_reused".into(),
                Value::UInt(incremental.contours_reused as u64),
            ));
            "refresh"
        }
    };
    fields.insert(1, ("outcome".into(), Value::Str(kind.into())));
    if let Some(exp) = expect {
        if exp != kind {
            eprintln!("identify-cache FAILED: expected outcome {exp}, got {kind}");
            failed = true;
        }
    }
    if verify {
        let fresh = Bouquet::identify(&w, &cfg).expect("verification identify");
        let identical = persist::to_json(&bouquet).expect("serialize cached")
            == persist::to_json(&fresh).expect("serialize fresh");
        println!(
            "  verification vs from-scratch identification: {}",
            if identical {
                "byte-identical"
            } else {
                "MISMATCH"
            }
        );
        fields.push(("verified_identical".into(), Value::Bool(identical)));
        if !identical {
            eprintln!("identify-cache FAILED: cached bouquet differs from a fresh build");
            failed = true;
        }
    }
    if let Some(path) = json_path {
        merge_json_section(&path, &format!("cache_{kind}"), Value::Obj(fields));
    }
    if failed {
        std::process::exit(1);
    }
}

/// Sampled (PAO-style) identification: `pbq identify-sampled WORKLOAD
/// [--epsilon F] [--delta F] [--seed N] [--initial N] [--rounds N]
/// [--min-speedup F] [--no-verify] [--json PATH]`. Times the exhaustive and
/// sampled pipelines, then (unless `--no-verify`) measures the realized
/// guarantees against the exact diagram: the fraction of grid points whose
/// sampled PIC exceeds `(1+ε)×` the true optimum must stay within ε, and
/// the basic driver's realized MSO on the sampled bouquet must stay within
/// `(1+ε)×` the exact bouquet's MSO. Exits non-zero on any breach.
fn identify_sampled_cmd(w: pb_bouquet::Workload, rest: &[String]) {
    use pb_optimizer::SampledBuildConfig;
    use serde::Value;

    let flag = |name: &str, default: f64| -> f64 {
        match rest.iter().position(|a| a == name) {
            Some(i) => rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a number");
                    std::process::exit(2);
                }),
            None => default,
        }
    };
    let scfg = SampledBuildConfig {
        seed: flag("--seed", 20140622.0) as u64,
        epsilon: flag("--epsilon", 0.1),
        delta: flag("--delta", 0.05),
        initial_samples: flag("--initial", 0.0) as usize,
        max_rounds: flag("--rounds", 0.0) as usize,
    };
    let min_speedup = flag("--min-speedup", 0.0);
    let verify = !rest.iter().any(|a| a == "--no-verify");
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());

    let n = w.ess.num_points();
    let cfg = BouquetConfig::default();
    let par = Parallelism::auto();
    println!(
        "sampled identification of {} ({n} grid points, {} dims; ε={}, δ={})",
        w.name,
        w.d(),
        scfg.epsilon,
        scfg.delta
    );
    let (exact, t_exact) = Bouquet::identify_timed(&w, &cfg, par).expect("exhaustive identify");
    let (sampled, t_sampled, sstats) =
        Bouquet::identify_sampled(&w, &cfg, &scfg, par).expect("sampled identify");
    let secs = std::time::Duration::as_secs_f64;
    let speedup = secs(&t_exact.total) / secs(&t_sampled.total).max(1e-12);
    println!(
        "  exhaustive: {:>9.1?} ({} optimizer calls; diagram {:.1?}, matrix {:.1?}, contours {:.1?})",
        t_exact.total, n, t_exact.diagram, t_exact.cost_matrix, t_exact.contours
    );
    println!(
        "  sampled phases: diagram {:.1?}, matrix {:.1?}, contours {:.1?}",
        t_sampled.diagram, t_sampled.cost_matrix, t_sampled.contours
    );
    println!(
        "  sampled:    {:>9.1?} ({} optimizer calls, {} rounds, pool {}, converged: {}{})",
        t_sampled.total,
        sstats.optimizer_calls,
        sstats.rounds,
        sstats.pool_size,
        sstats.converged,
        if sstats.exhaustive_fallback {
            "; exhaustive fallback"
        } else {
            ""
        }
    );
    println!("  identification speedup: {speedup:.1}x");

    let mut failed = false;
    let mut fields: Vec<(String, Value)> = vec![
        ("workload".into(), Value::Str(w.name.clone())),
        ("grid_points".into(), Value::UInt(n as u64)),
        ("epsilon".into(), Value::Float(scfg.epsilon)),
        ("delta".into(), Value::Float(scfg.delta)),
        ("exact_total_s".into(), Value::Float(secs(&t_exact.total))),
        (
            "sampled_total_s".into(),
            Value::Float(secs(&t_sampled.total)),
        ),
        ("speedup_sampled".into(), Value::Float(speedup)),
        ("optimizer_calls_exact".into(), Value::UInt(n as u64)),
        (
            "optimizer_calls_sampled".into(),
            Value::UInt(sstats.optimizer_calls as u64),
        ),
        ("converged".into(), Value::Bool(sstats.converged)),
    ];
    if min_speedup > 0.0 && speedup < min_speedup {
        eprintln!("identify-sampled FAILED: speedup {speedup:.1}x below required {min_speedup}x");
        failed = true;
    }

    if verify {
        if !sstats.converged {
            eprintln!("identify-sampled FAILED: refinement did not converge within the round cap");
            failed = true;
        }
        // Realized (ε, δ) contract: violation mass of the sampled PIC
        // against the true optimum.
        let violations = (0..n)
            .filter(|&li| sampled.pic_cost_at(li) > (1.0 + scfg.epsilon) * exact.pic_cost_at(li))
            .count();
        let violation_mass = violations as f64 / n as f64;
        println!(
            "  sampled-PIC violation mass: {violation_mass:.4} ({violations}/{n} points beyond 1+ε) \
             — budget ε = {}",
            scfg.epsilon
        );
        // Realized MSO inflation: both drivers judged against the *exact*
        // optimum everywhere.
        let mso_exact = pb_bouquet::eval::run_profile(&exact, false)
            .expect("exact driver profile")
            .into_iter()
            .fold(0.0f64, f64::max);
        let mso_sampled = pb_cost::par_map(par, n, |li| {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = sampled.run_basic(&qa).expect("sampled driver run");
            run.suboptimality(exact.pic_cost_at(li))
        })
        .into_iter()
        .fold(0.0f64, f64::max);
        let inflation = mso_sampled / mso_exact.max(1e-12);
        println!(
            "  realized MSO: exact {mso_exact:.3}, sampled {mso_sampled:.3} \
             (inflation {inflation:.3}; bound 1+ε = {:.3})",
            1.0 + scfg.epsilon
        );
        fields.push(("violation_mass".into(), Value::Float(violation_mass)));
        fields.push(("mso_exact".into(), Value::Float(mso_exact)));
        fields.push(("mso_sampled".into(), Value::Float(mso_sampled)));
        fields.push(("mso_inflation".into(), Value::Float(inflation)));
        if violation_mass > scfg.epsilon {
            eprintln!(
                "identify-sampled FAILED: violation mass {violation_mass:.4} exceeds ε {}",
                scfg.epsilon
            );
            failed = true;
        }
        if inflation > 1.0 + scfg.epsilon {
            eprintln!(
                "identify-sampled FAILED: MSO inflation {inflation:.3} exceeds 1+ε {:.3}",
                1.0 + scfg.epsilon
            );
            failed = true;
        }
    }

    if let Some(path) = json_path {
        merge_json_section(&path, "sampled", Value::Obj(fields));
    }
    if failed {
        std::process::exit(1);
    }
}

/// Seeded fault-injection campaign over the robust bouquet driver and the
/// engine execution paths: `pbq chaos [--seed N]`. Sweeps fault kinds ×
/// drivers × TPC-H/TPC-DS workloads × true locations, prints the survival
/// table and exits non-zero if any robustness invariant is breached (panic,
/// double charging, nondeterminism, or an empty fault plan failing to be
/// bit-identical to the plain drivers).
/// Bouquet-as-a-service: `pbq serve` boots the multi-tenant server and
/// blocks until a client drains it (`--smoke` instead runs the scripted
/// protocol round-trip + seeded server-fault chaos block and exits).
fn serve_cmd(rest: &[String]) {
    use pb_server::{PbServer, ServerConfig};

    if rest.iter().any(|a| a == "--smoke") {
        match pb_bench::serve::smoke() {
            Ok(report) => {
                print!("{report}");
                println!("serve smoke OK");
            }
            Err(e) => {
                eprintln!("serve smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let flag = |name: &str| {
        rest.iter().position(|a| a == name).map(|i| {
            rest.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        })
    };
    let mut cfg = ServerConfig::default();
    if let Some(a) = flag("--addr") {
        cfg.addr = a.to_string();
    }
    if let Some(w) = flag("--workloads") {
        cfg.workloads = w.split(',').map(|s| s.trim().to_string()).collect();
    }
    if let Some(n) = flag("--workers") {
        cfg.workers = n.parse().expect("--workers needs a count");
    }
    if let Some(n) = flag("--queue-cap") {
        cfg.queue_cap = n.parse().expect("--queue-cap needs a count");
    }
    if let Some(f) = flag("--tenant-cap") {
        cfg.tenant_cap = f.parse().expect("--tenant-cap needs cost units");
    }
    if let Some(ms) = flag("--deadline-ms") {
        cfg.default_deadline_ms = Some(ms.parse().expect("--deadline-ms needs milliseconds"));
    }
    let server = match PbServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve FAILED to start: {e}");
            std::process::exit(1);
        }
    };
    println!("pb-server listening on {}", server.addr());
    println!("(newline-delimited JSON; send \"Drain\" to shut down gracefully)");
    let stats = server.wait();
    println!(
        "drained: {} accepted, {} completed, {} degraded, {} budget-exhausted, \
         {} cancelled, {} failed, {} rejected",
        stats.accepted,
        stats.completed,
        stats.degraded,
        stats.budget_exhausted,
        stats.cancelled,
        stats.failed,
        stats.rejected
    );
}

/// Concurrent-client serving sweep: `pbq serve-bench [--clients 1,2,4,8]
/// [--requests N] [--json BENCH_serve.json]`. Shows the bounded admission
/// queue shedding load while tail latency stays bounded; `--json` merges
/// the rows into the artifact's `serve` section.
fn serve_bench_cmd(rest: &[String]) {
    let clients: Vec<usize> = match rest.iter().position(|a| a == "--clients") {
        Some(i) => rest
            .get(i + 1)
            .map(|s| {
                s.split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .expect("--clients takes a comma list, e.g. 1,2,4,8")
                    })
                    .collect()
            })
            .expect("--clients takes a comma list, e.g. 1,2,4,8"),
        None => vec![1, 2, 4, 8],
    };
    let requests: usize = match rest.iter().position(|a| a == "--requests") {
        Some(i) => rest
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--requests needs a count");
                std::process::exit(2);
            }),
        None => 6,
    };
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());

    println!("serving sweep: {clients:?} concurrent clients x {requests} requests each");
    match pb_bench::serve::sweep(&clients, requests) {
        Ok((table, section)) => {
            print!("{table}");
            if let Some(path) = json_path {
                merge_json_section(&path, "serve", section);
            }
        }
        Err(e) => {
            eprintln!("serve-bench FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn chaos_cmd(rest: &[String]) {
    let seed: u64 = match rest.iter().position(|a| a == "--seed") {
        Some(i) => rest
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed needs a non-negative integer");
                std::process::exit(2);
            }),
        None => 20140622, // the paper's publication date
    };
    let report = pb_bench::chaos::run_campaign(seed);
    print!("{}", report.table);
    if !report.passed() {
        eprintln!(
            "chaos campaign FAILED: {} invariant breach(es)",
            report.breaches.len()
        );
        std::process::exit(1);
    }
    println!(
        "chaos campaign passed: {} scenarios, 0 breaches",
        report.scenarios
    );
}

/// Engine-backed Table 3 experiment through the canonical (substrate-
/// generic) drivers: `pbq table3 [--sf N] [--json BENCH_table3.json]`.
/// Runs the basic and optimized bouquet drivers over the real tuple engine
/// — plain and with checkpoint/resume — prints the per-contour breakdown
/// with the reused-cost columns, and exits non-zero if the basic driver's
/// contour/plan/budget sequence on the engine differs from the simulator's
/// at the engine's measured true location (cost-inversion cross-check).
/// `--json` merges the report into the file's `table3` section, keeping any
/// other sections of the artifact intact. Also runs the hostile
/// typed-dimension workloads (`HOSTILE_INEQ_2D`, `HOSTILE_ANTI_2D`) through
/// the same ladder, merged as the `table3_hostile` section; a cross-check
/// divergence or a violated MSO bound on either exits non-zero.
fn table3_cmd(rest: &[String]) {
    let sf: f64 = match rest.iter().position(|a| a == "--sf") {
        Some(i) => rest
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--sf needs a positive number");
                std::process::exit(2);
            }),
        None => 0.01,
    };
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());

    let (text, report) = pb_bench::experiments::table3::run_at_with(sf, engine_par());
    print!("{text}");
    let (htext, hreports) = pb_bench::experiments::hostile::run_at_with(sf, engine_par());
    println!();
    print!("{htext}");
    if let Some(path) = json_path {
        let json = serde_json::to_string(&report).expect("serialize table3 report");
        let section = serde_json::from_str::<serde::Value>(&json).expect("reparse table3 report");
        merge_json_section(&path, "table3", section);
        let hjson = serde_json::to_string(&hreports).expect("serialize hostile reports");
        let hsection =
            serde_json::from_str::<serde::Value>(&hjson).expect("reparse hostile reports");
        merge_json_section(&path, "table3_hostile", hsection);
    }
    if !report.crosscheck_ok {
        eprintln!(
            "table3 FAILED: basic-driver contour/plan/budget sequence diverges \
             between the engine substrate and the simulator at the measured qa"
        );
        std::process::exit(1);
    }
    for r in &hreports {
        if !r.crosscheck_ok || !r.mso_within_bound {
            eprintln!(
                "table3 FAILED: hostile workload {} {} (crosscheck {}, MSO bound {})",
                r.workload,
                if r.crosscheck_ok {
                    "violates its MSO bound"
                } else {
                    "diverges between engine and simulator"
                },
                r.crosscheck_ok,
                r.mso_within_bound,
            );
            std::process::exit(1);
        }
    }
}

/// Benchmark the vectorized engine against the tuple-at-a-time reference
/// and verify the two produce identical outcomes — cost, row count,
/// per-node instrumentation, and abort point — under a ladder of budgets.
/// `--sf X` picks the TPC-H scale factor (default 0.02, ≈154k base rows);
/// `--json PATH` writes the machine-readable report (the CI
/// `BENCH_engine.json` artifact). Exits non-zero on any outcome mismatch.
fn engine_speedup(rest: &[String]) {
    use pb_engine::{Database, Engine};
    use pb_plan::PlanNode;
    use std::time::Instant;

    let sf: f64 = match rest.iter().position(|a| a == "--sf") {
        Some(i) => rest
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--sf needs a positive number");
                std::process::exit(2);
            }),
        None => 0.02,
    };
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());

    // part ⋈ lineitem ⋈ orders with a fixed part selection; join edge 0 is
    // p⋈l, edge 1 is l⋈o. All columns are indexed, so every operator in the
    // engine can appear.
    let w = pb_workloads::h_q8a_2d(sf);
    let db = Database::generate_with(&w.catalog, 42, &[], Parallelism::auto()).expect("generate");
    let base_rows: u64 = w
        .query
        .relations
        .iter()
        .map(|r| db.table(r.table).rows as u64)
        .sum();
    let eng = Engine::new(&db, &w.query, &w.model.p).with_parallelism(engine_par());

    let hj_pl = || PlanNode::HashJoin {
        build: Box::new(PlanNode::SeqScan { rel: 0 }),
        probe: Box::new(PlanNode::SeqScan { rel: 1 }),
        edges: vec![0],
    };
    let plans: Vec<(&str, PlanNode)> = vec![
        (
            "hash_join_chain",
            PlanNode::HashJoin {
                build: Box::new(hj_pl()),
                probe: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![1],
            },
        ),
        (
            "merge_join_top",
            PlanNode::SortMergeJoin {
                left: Box::new(hj_pl()),
                right: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![1],
                sort_left: true,
                sort_right: true,
            },
        ),
        (
            "index_nl_chain",
            PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexNLJoin {
                    outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                    inner_rel: 1,
                    edges: vec![0],
                }),
                inner_rel: 2,
                edges: vec![1],
            },
        ),
        (
            "anti_join",
            PlanNode::AntiJoin {
                left: Box::new(PlanNode::SeqScan { rel: 0 }),
                right: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            },
        ),
        (
            "hash_aggregate",
            PlanNode::HashAggregate {
                input: Box::new(hj_pl()),
            },
        ),
        (
            "spill_chain",
            PlanNode::Spill {
                input: Box::new(hj_pl()),
            },
        ),
    ];

    println!(
        "engine speedup on {} (sf {sf}, {base_rows} base rows, {} plans)",
        w.name,
        plans.len()
    );

    // Outcome-equality ladder: full run plus budgets that abort in
    // different operators and phases of each plan.
    let fracs = [1.0, 0.75, 0.4, 0.1, 0.02];
    let mut checks = 0usize;
    let mut all_equal = true;
    for (name, plan) in &plans {
        let full = eng.execute_tuple(plan, f64::INFINITY);
        let mut plan_ok = true;
        for frac in fracs {
            let budget = if frac >= 1.0 {
                f64::INFINITY
            } else {
                full.cost() * frac
            };
            let t = eng.execute_tuple(plan, budget);
            let v = eng.execute_vectorized(plan, budget);
            checks += 1;
            if t != v {
                all_equal = false;
                plan_ok = false;
                eprintln!(
                    "  MISMATCH {name} at budget fraction {frac}: tuple (cost {:.6}, done {}) vs vectorized (cost {:.6}, done {})",
                    t.cost(),
                    t.completed(),
                    v.cost(),
                    v.completed()
                );
            }
        }
        let t0 = Instant::now();
        std::hint::black_box(eng.execute_tuple(plan, f64::INFINITY));
        let pt = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        std::hint::black_box(eng.execute(plan, f64::INFINITY));
        let pv = t0.elapsed().as_secs_f64();
        println!(
            "  {name:<16} cost {:>14.0}  tuple {:>8.2}ms vec {:>8.2}ms ({:>5.2}x)  equal at {} budgets: {}",
            full.cost(),
            pt * 1e3,
            pv * 1e3,
            pt / pv.max(1e-12),
            fracs.len(),
            if plan_ok { "yes" } else { "NO" }
        );
    }

    // Throughput: best-of-3 full executions of the whole plan set.
    let mut tuple_s = f64::INFINITY;
    let mut vec_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for (_, plan) in &plans {
            std::hint::black_box(eng.execute_tuple(plan, f64::INFINITY));
        }
        tuple_s = tuple_s.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for (_, plan) in &plans {
            std::hint::black_box(eng.execute(plan, f64::INFINITY));
        }
        vec_s = vec_s.min(t0.elapsed().as_secs_f64());
    }
    let speedup = tuple_s / vec_s.max(1e-12);
    println!(
        "  tuple {tuple_s:.4}s, vectorized {vec_s:.4}s -> {speedup:.2}x; {checks} equality checks: {}",
        if all_equal { "all green" } else { "MISMATCH" }
    );

    if let Some(path) = json_path {
        let report = format!(
            "{{\n  \"workload\": \"{}\",\n  \"scale_factor\": {sf},\n  \"base_rows\": {base_rows},\n  \"plans\": {},\n  \"equality_checks\": {checks},\n  \"equality_ok\": {all_equal},\n  \"tuple_s\": {tuple_s:.6},\n  \"vectorized_s\": {vec_s:.6},\n  \"speedup\": {speedup:.3}\n}}\n",
            w.name,
            plans.len()
        );
        std::fs::write(&path, report).expect("write --json report");
        println!("  wrote {path}");
    }

    if !all_equal {
        std::process::exit(1);
    }
}

/// Morsel-driven scaling curve: the engine benchmark suite at several
/// worker counts, gated on bit-identical `EngineOutcome`s across counts.
fn engine_mt(rest: &[String]) {
    use pb_bench::regress;

    let flag_f64 = |flag: &str, default: f64| -> f64 {
        match rest.iter().position(|a| a == flag) {
            Some(i) => rest
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a positive number");
                    std::process::exit(2);
                }),
            None => default,
        }
    };
    let sf = flag_f64("--sf", 0.1);
    let reps = flag_f64("--reps", 3.0) as usize;
    let workers: Vec<usize> = match rest.iter().position(|a| a == "--workers") {
        Some(i) => rest
            .get(i + 1)
            .map(|s| {
                s.split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .expect("--workers takes a comma list, e.g. 1,2,4")
                    })
                    .collect()
            })
            .expect("--workers takes a comma list, e.g. 1,2,4"),
        None => vec![1, 2, 4],
    };
    let morsel_min: Option<usize> = rest.iter().position(|a| a == "--morsel-min").map(|i| {
        rest.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--morsel-min needs a row count")
    });
    let json_path = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.get(i + 1).expect("--json PATH").clone());

    println!(
        "morsel-driven scaling curve (sf {sf}, workers {workers:?}, morsel gate {})",
        morsel_min
            .map(|r| r.to_string())
            .unwrap_or_else(|| format!("{} (default)", pb_cost::PARALLEL_MIN_MORSEL_ROWS)),
    );
    let report = match pb_bench::regress::engine_mt_bench(sf, &workers, morsel_min, reps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("engine-mt FAILED: {e}");
            std::process::exit(1);
        }
    };
    let curve = regress::get(&report, "curve")
        .and_then(serde::Value::as_arr)
        .expect("curve");
    println!(
        "  {} budget-ladder outcome checks per worker count: all bit-identical",
        regress::get(&report, "budget_checks_per_worker_count")
            .and_then(regress::as_f64)
            .unwrap_or(0.0)
    );
    for row in curve {
        let v = |k: &str| {
            regress::get(row, k)
                .and_then(regress::as_f64)
                .unwrap_or(f64::NAN)
        };
        println!(
            "  {:>3.0} workers  {:>9.2}ms  speedup {:>5.2}x",
            v("workers"),
            v("wall_s") * 1e3,
            v("speedup_vs_1")
        );
    }
    if let Some(path) = json_path {
        std::fs::write(&path, regress::to_pretty(&report)).expect("write --json report");
        println!("  wrote {path}");
    }
}

/// Re-run the engine and identification benchmarks and diff them against
/// the committed baseline file; exits non-zero on any regression.
fn bench_check(rest: &[String]) {
    use pb_bench::regress;
    use serde::Value;

    let baseline_path = rest
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| rest.get(i + 1).expect("--baseline PATH").clone())
        .unwrap_or_else(|| "results/bench_baselines.json".into());
    let update = rest.iter().any(|a| a == "--update");
    let tol: f64 = match rest.iter().position(|a| a == "--tolerance") {
        Some(i) => rest
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--tolerance needs a fraction, e.g. 0.25");
                std::process::exit(2);
            }),
        None => 0.25,
    };

    println!("bench-check: re-running engine + identification benchmarks...");
    let run = |label: &str, r: Result<Value, String>| -> Value {
        match r {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-check: {label} bench FAILED outright: {e}");
                std::process::exit(1);
            }
        }
    };
    let engine = run("engine", regress::engine_bench(0.02));
    let identify = run("identify", regress::identify_bench("2D_H_Q8A", 4));
    let engine_mt = run(
        "engine_mt",
        regress::engine_mt_bench(0.02, &[1, 2, 4], Some(4096), 3),
    );
    let resume = run("resume", regress::resume_bench(0.01));
    let serve = run("serve", pb_bench::serve::serve_bench());
    let hostile = run("hostile", regress::hostile_bench(0.005));
    let current = Value::Obj(vec![
        ("engine".to_string(), engine),
        ("identify".to_string(), identify),
        ("engine_mt".to_string(), engine_mt),
        ("resume".to_string(), resume),
        ("serve".to_string(), serve),
        ("hostile".to_string(), hostile),
    ]);

    if update {
        std::fs::write(&baseline_path, regress::to_pretty(&current)).expect("write baseline");
        println!("bench-check: wrote baseline {baseline_path}");
        return;
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!(
            "bench-check: cannot read baseline {baseline_path}: {e}\n\
             (generate one with `pbq bench-check --update`)"
        );
        std::process::exit(2);
    });
    let baseline: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench-check: baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    // A whole section absent from the baseline usually means the baseline
    // predates a newer benchmark suite — diagnose it per section (instead
    // of drowning it in per-key diffs) and fail.
    if let (Value::Obj(cur), Value::Obj(base)) = (&current, &baseline) {
        let missing: Vec<&str> = cur
            .iter()
            .filter(|(k, _)| serde::find(base, k).is_none())
            .map(|(k, _)| k.as_str())
            .collect();
        if !missing.is_empty() {
            for section in &missing {
                eprintln!(
                    "bench-check: baseline {baseline_path} has no `{section}` section \
                     (it predates this benchmark suite)"
                );
            }
            eprintln!("regenerate the baseline with `pbq bench-check --update`");
            std::process::exit(1);
        }
    }
    let diffs = regress::compare(&baseline, &current, tol);
    if diffs.is_empty() {
        println!(
            "bench-check OK: current run within ±{:.0}% of {baseline_path} \
             (timing fields banded, identity fields exact)",
            tol * 100.0
        );
    } else {
        eprintln!("bench-check FAILED against {baseline_path}:");
        for d in &diffs {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

fn sensitivity(w: pb_bouquet::Workload, _rest: &[String]) {
    println!("dimension sensitivity (Section 8 low-resolution map):");
    for s in dim_analysis::sensitivities(&w, 3) {
        println!(
            "  dim {} ({:<14} {:<15}) max cost swing {:>10.1}x",
            s.dim,
            s.name,
            s.kind.label(),
            s.max_cost_ratio
        );
    }
}
