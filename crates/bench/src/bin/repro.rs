//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro                 # run everything (paper order)
//! repro fig14 table1    # run selected exhibits
//! repro --list          # list available exhibits
//! repro --out results   # also tee each report into <dir>/<id>.txt
//! repro --jobs N        # cap identification worker threads
//! ```

use std::time::Instant;

use pb_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--jobs" || a == "-j") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            });
        pb_cost::set_default_workers(n);
        args.drain(i..=i + 1);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [--out DIR] [--jobs N] [exhibit ...]");
        eprintln!("exhibits: {}", experiments::ALL.join(" "));
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != out_dir.as_deref())
        .cloned()
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        experiments::ALL.to_vec()
    } else {
        selected.iter().map(|s| s.as_str()).collect()
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let t_all = Instant::now();
    for id in ids {
        let t0 = Instant::now();
        match experiments::run(id) {
            Some(report) => {
                println!("{}", "=".repeat(78));
                println!("== {id}  [{:.1?}]", t0.elapsed());
                println!("{}", "=".repeat(78));
                println!("{report}");
                if let Some(dir) = &out_dir {
                    std::fs::write(format!("{dir}/{id}.txt"), &report).expect("write report file");
                }
            }
            None => eprintln!("unknown exhibit: {id} (try --list)"),
        }
    }
    eprintln!("total: {:.1?}", t_all.elapsed());
}
