//! Engine-backed bouquet execution — the Table 3 / Section 6.7 experiment.
//!
//! Everything else in the evaluation works in optimizer cost units; here the
//! bouquet's partial executions actually run against generated tuples in
//! `pb-engine`, with budgets enforced by the engine's cost charging and
//! selectivities observed from its node counters. This validates that the
//! discovery machinery works when the "actual" costs come from a real
//! executor rather than from the cost model itself.
//!
//! `Engine::execute` runs the vectorized (columnar batch) path by default;
//! the tuple-at-a-time reference is available as `Engine::execute_tuple` and
//! both produce identical `EngineOutcome`s (see `pbq engine-speedup`), so
//! every driver below benefits from the batch kernels without any change in
//! observed selectivities or abort behaviour.

use pb_bouquet::Bouquet;
use pb_cost::SelPoint;
use pb_engine::{Database, Engine, EngineOutcome};
use pb_executor::learnable_node;
use pb_plan::{PlanNode, QuerySpec};

/// One engine-backed partial execution.
#[derive(Debug, Clone)]
pub struct EngineExec {
    pub contour: usize,
    pub plan: usize,
    pub budget: f64,
    pub spent: f64,
    pub completed: bool,
    pub spilled: bool,
}

/// Outcome of an engine-backed bouquet run.
#[derive(Debug, Clone)]
pub struct EngineRunReport {
    pub executions: Vec<EngineExec>,
    pub total_cost: f64,
    pub completed: bool,
    pub result_rows: usize,
}

impl EngineRunReport {
    /// Per-contour (executions, cost) breakdown — the rows of Table 3.
    pub fn contour_breakdown(&self) -> Vec<(usize, usize, f64)> {
        let mut rows: Vec<(usize, usize, f64)> = Vec::new();
        for e in &self.executions {
            match rows.iter_mut().find(|r| r.0 == e.contour) {
                Some(r) => {
                    r.1 += 1;
                    r.2 += e.spent;
                }
                None => rows.push((e.contour, 1, e.spent)),
            }
        }
        rows
    }
}

/// Execute the native optimizer's choice (plan picked at the *estimated*
/// location) to completion on the engine; returns its actual cost.
pub fn engine_run_nat(bouquet: &Bouquet, db: &Database, qe: &SelPoint) -> f64 {
    let w = &bouquet.workload;
    let plan = w.optimizer().optimize(qe).plan;
    let engine = Engine::new(db, &w.query, &w.model.p);
    engine.execute(&plan.root, f64::INFINITY).cost()
}

/// Run the bouquet discovery against the engine. With `optimized == false`
/// this is Figure 7 verbatim; with `optimized == true` the driver tracks
/// qrun via the engine's tuple counters, prunes non-first-quadrant plans,
/// and uses spilled prefix executions for focused learning.
pub fn engine_run_bouquet(bouquet: &Bouquet, db: &Database, optimized: bool) -> EngineRunReport {
    let w = &bouquet.workload;
    let engine = Engine::new(db, &w.query, &w.model.p);
    let ess = &w.ess;
    let d = ess.d();
    let mut qrun: Vec<f64> = ess.dims.iter().map(|dm| dm.lo).collect();
    let mut resolved = vec![false; d];
    let mut executions = Vec::new();
    let mut total = 0.0;

    let m = bouquet.contours.len();
    let mut cid = 0usize;
    let mut executed_on: Vec<(usize, u64)> = Vec::new();
    let overflow_budget =
        |k: usize| bouquet.contours[m - 1].budget * bouquet.config.r.powi((k - m + 1) as i32);

    while cid < m + 48 {
        let (contour_id, budget) = if cid < m {
            (bouquet.contours[cid].id, bouquet.contours[cid].budget)
        } else {
            (cid + 1, overflow_budget(cid))
        };
        if optimized {
            // Early contour change on the modeled PIC at qrun.
            let pic = bouquet.pic_cost(&SelPoint(qrun.clone()));
            if pic > budget {
                cid += 1;
                executed_on.clear();
                continue;
            }
        }
        let qix = ess.snap_floor(&SelPoint(qrun.clone()));
        let plan_set: Vec<usize> = if optimized && cid < m {
            bouquet.contours[cid].viable_plans(&bouquet.diagram, &qix)
        } else {
            bouquet.contours[cid.min(m - 1)].plan_set.clone()
        };
        let mask = resolved
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| if b { acc | (1 << i) } else { acc });
        let candidates: Vec<usize> = plan_set
            .into_iter()
            .filter(|&p| !executed_on.contains(&(p, mask)))
            .collect();
        if candidates.is_empty() {
            cid += 1;
            executed_on.clear();
            continue;
        }
        // Same AxisPlans selection policy as the cost-unit driver.
        let pid = if optimized {
            let contour = &bouquet.contours[cid.min(m - 1)];
            bouquet.select_plan(contour, &candidates, &qix, &qrun, &resolved)
        } else {
            candidates[0]
        };
        let plan = &bouquet.plan(pid).root;
        let unresolved_dims: Vec<usize> = plan
            .error_dims(&w.query)
            .into_iter()
            .filter(|&dm| !resolved[dm])
            .collect();
        let spill = optimized && unresolved_dims.len() >= 2;

        let (exec_root, learn_dim): (PlanNode, Option<usize>) = if spill {
            let (node, dims) = learnable_node(plan, &w.query, &resolved)
                .expect("plan with unresolved dims must have a learnable node");
            (node.clone().spilled(), Some(dims[0]))
        } else {
            let dim = learnable_node(plan, &w.query, &resolved).map(|(_, dims)| dims[0]);
            (plan.clone(), dim)
        };

        let out = engine.execute(&exec_root, budget);
        total += out.cost();
        executed_on.push((pid, mask));
        let completed_query = out.completed() && !spill;
        executions.push(EngineExec {
            contour: contour_id,
            plan: pid,
            budget,
            spent: out.cost(),
            completed: completed_query,
            spilled: spill,
        });
        if completed_query {
            let rows = match out {
                EngineOutcome::Completed { rows, .. } => rows,
                // `completed_query` implies `Completed`.
                EngineOutcome::Aborted { .. } | EngineOutcome::Failed { .. } => 0,
            };
            return EngineRunReport {
                executions,
                total_cost: total,
                completed: true,
                result_rows: rows,
            };
        }
        if optimized {
            if let Some(dm) = learn_dim {
                // Observe a selectivity lower bound from the counters of the
                // executed tree (for a spilled run this is the prefix).
                if let Some(s) = out
                    .instr()
                    .observed_selectivity(&exec_root, &w.query, db, dm)
                {
                    qrun[dm] = qrun[dm].max(s.clamp(ess.dims[dm].lo, ess.dims[dm].hi));
                }
                if spill && out.completed() {
                    // Prefix consumed its entire input: dimension resolved.
                    resolved[dm] = true;
                }
            }
        }
    }
    EngineRunReport {
        executions,
        total_cost: total,
        completed: false,
        result_rows: 0,
    }
}

/// Measure the true ESS location of a query against generated data.
pub fn measure_qa(db: &Database, query: &QuerySpec, ess: &pb_cost::Ess) -> SelPoint {
    let mut qa = vec![f64::NAN; query.num_dims];
    for r in &query.relations {
        for s in &r.selections {
            if let Some(dm) = s.selectivity.error_dim() {
                qa[dm] = db.actual_selection_selectivity(s);
            }
        }
    }
    for (ji, j) in query.joins.iter().enumerate() {
        if let Some(dm) = j.selectivity.error_dim() {
            qa[dm] = db.actual_join_selectivity(query, ji);
        }
    }
    for (dm, v) in qa.iter_mut().enumerate() {
        assert!(!v.is_nan(), "dimension {dm} unmeasured");
        *v = v.clamp(ess.dims[dm].lo, ess.dims[dm].hi);
    }
    SelPoint(qa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_bouquet::BouquetConfig;
    use pb_engine::ColumnOverride;
    use pb_workloads::h_q8a_2d;

    fn setup() -> (Bouquet, Database) {
        let w = h_q8a_2d(0.005);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        // Duplicate the "key" columns on both sides of each join: actual
        // join selectivity becomes ~1/ndv_eff, far above the AVI estimate of
        // 1/|PK relation| — the manufactured under-estimate of Section 6.7.
        let db = Database::generate(
            &w.catalog,
            7,
            &[
                ColumnOverride::EffectiveNdv {
                    table: "part".into(),
                    column: "p_partkey".into(),
                    ndv: 100,
                },
                ColumnOverride::EffectiveNdv {
                    table: "lineitem".into(),
                    column: "l_partkey".into(),
                    ndv: 100,
                },
                ColumnOverride::EffectiveNdv {
                    table: "orders".into(),
                    column: "o_orderkey".into(),
                    ndv: 400,
                },
                ColumnOverride::EffectiveNdv {
                    table: "lineitem".into(),
                    column: "l_orderkey".into(),
                    ndv: 400,
                },
            ],
        )
        .expect("generate");
        (b, db)
    }

    #[test]
    fn engine_bouquet_completes_and_produces_rows() {
        let (b, db) = setup();
        let basic = engine_run_bouquet(&b, &db, false);
        assert!(
            basic.completed,
            "basic engine run failed: {:?}",
            basic.executions
        );
        assert!(basic.result_rows > 0);
        let opt = engine_run_bouquet(&b, &db, true);
        assert!(opt.completed);
        assert_eq!(
            opt.result_rows, basic.result_rows,
            "result must not depend on driver"
        );
    }

    #[test]
    fn optimized_engine_run_is_no_costlier_than_basic() {
        let (b, db) = setup();
        let basic = engine_run_bouquet(&b, &db, false);
        let opt = engine_run_bouquet(&b, &db, true);
        assert!(
            opt.total_cost <= basic.total_cost * 1.1,
            "optimized {} vs basic {}",
            opt.total_cost,
            basic.total_cost
        );
    }

    #[test]
    fn measured_qa_exceeds_avi_estimate_under_skew() {
        let (b, db) = setup();
        let w = &b.workload;
        let qa = measure_qa(&db, &w.query, &w.ess);
        let est = pb_cost::Estimator::new(&w.catalog);
        let lo: Vec<f64> = w.ess.dims.iter().map(|d| d.lo).collect();
        let hi: Vec<f64> = w.ess.dims.iter().map(|d| d.hi).collect();
        let qe = est.estimate_point(&w.query, &lo, &hi);
        assert!(
            qa[0] > qe[0] * 2.0,
            "skew should inflate dim 0: qa {} vs qe {}",
            qa[0],
            qe[0]
        );
    }

    #[test]
    fn contour_breakdown_accounts_for_all_cost() {
        let (b, db) = setup();
        let run = engine_run_bouquet(&b, &db, false);
        let sum: f64 = run.contour_breakdown().iter().map(|r| r.2).sum();
        assert!((sum - run.total_cost).abs() < 1e-6 * run.total_cost.max(1.0));
    }
}
