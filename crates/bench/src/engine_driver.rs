//! Thin adapters for engine-backed bouquet execution — the Table 3 /
//! Section 6.7 experiment.
//!
//! There is **no discovery loop here**: engine-backed runs go through the
//! canonical drivers (`Bouquet::run_basic_on` / `run_optimized_on` /
//! `run_robust_on`) over [`pb_bouquet::EngineSubstrate`], so the real-tuple
//! path exercises exactly the same control logic — quadrant pruning,
//! AxisPlans selection, spill-based learning, the robustness ladder — as
//! the cost-unit simulator. This module only re-shapes the resulting
//! [`BouquetRun`] into the report the `pbq table3` artefact serializes.

use std::collections::BTreeMap;

use pb_bouquet::{Bouquet, BouquetRun, EngineSubstrate, ExecutionSubstrate, ResumeStats};
use pb_cost::{Parallelism, SelPoint};
use pb_engine::Database;
use pb_faults::{FaultInjector, PbError};
use serde::Serialize;

pub use pb_bouquet::measure_qa;

/// One engine-backed partial execution (a [`pb_bouquet::PartialExec`]
/// flattened for the JSON artefact).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineExec {
    pub contour: usize,
    pub plan: usize,
    pub budget: f64,
    pub spent: f64,
    pub completed: bool,
    pub spilled: bool,
}

/// Outcome of an engine-backed bouquet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineRunReport {
    pub executions: Vec<EngineExec>,
    pub total_cost: f64,
    pub completed: bool,
    pub result_rows: usize,
}

impl EngineRunReport {
    /// Re-shape a canonical driver run into the engine report.
    pub fn from_run(run: &BouquetRun, result_rows: usize) -> Self {
        EngineRunReport {
            executions: run
                .trace
                .iter()
                .map(|e| EngineExec {
                    contour: e.contour,
                    plan: e.plan,
                    budget: e.budget,
                    spent: e.spent,
                    completed: e.completed,
                    spilled: e.spilled,
                })
                .collect(),
            total_cost: run.total_cost,
            completed: run.completed(),
            result_rows,
        }
    }

    /// Per-contour (executions, cost) breakdown — the rows of Table 3.
    pub fn contour_breakdown(&self) -> Vec<(usize, usize, f64)> {
        let mut rows: BTreeMap<usize, (usize, f64)> = BTreeMap::new();
        for e in &self.executions {
            let r = rows.entry(e.contour).or_insert((0, 0.0));
            r.0 += 1;
            r.1 += e.spent;
        }
        rows.into_iter().map(|(c, (n, s))| (c, n, s)).collect()
    }
}

/// Execute the native optimizer's choice (plan picked at the *estimated*
/// location) to completion on the engine; returns its actual cost.
pub fn engine_run_nat(bouquet: &Bouquet, db: &Database, qe: &SelPoint) -> f64 {
    EngineSubstrate::new(bouquet, db, FaultInjector::none()).run_native_at(qe)
}

/// Run the bouquet discovery against the engine through the canonical
/// drivers: Figure 7 with `optimized == false`, Figure 13 (qrun tracking
/// from the engine's tuple counters, first-quadrant pruning, spilled prefix
/// executions) with `optimized == true`.
pub fn engine_run_bouquet(
    bouquet: &Bouquet,
    db: &Database,
    optimized: bool,
) -> Result<EngineRunReport, PbError> {
    engine_run_bouquet_with(bouquet, db, optimized, Parallelism::serial())
}

/// [`engine_run_bouquet`] with the engine's morsel-driven kernels running
/// `par`-wide. Outcomes are bit-identical to the serial run for every
/// worker count; the knob only changes wall-clock time.
pub fn engine_run_bouquet_with(
    bouquet: &Bouquet,
    db: &Database,
    optimized: bool,
    par: Parallelism,
) -> Result<EngineRunReport, PbError> {
    let mut sub =
        EngineSubstrate::new(bouquet, db, FaultInjector::none()).with_engine_parallelism(par);
    let run = if optimized {
        bouquet.run_optimized_on(&mut sub)?
    } else {
        bouquet.run_basic_on(&mut sub)?
    };
    Ok(EngineRunReport::from_run(
        &run,
        sub.result_rows().unwrap_or(0),
    ))
}

/// [`engine_run_bouquet_with`] with checkpoint/resume enabled on the engine
/// substrate: the (contour, plan, budget) sequence, completion decision and
/// result rows are identical to the plain run, but completed operator
/// prefixes are fast-forwarded from checkpoints instead of re-executed, so
/// per-execution `spent` and `total_cost` shrink by the reused units
/// reported in the stats.
pub fn engine_run_bouquet_resumable(
    bouquet: &Bouquet,
    db: &Database,
    optimized: bool,
    par: Parallelism,
) -> Result<(EngineRunReport, ResumeStats), PbError> {
    let mut sub =
        EngineSubstrate::new(bouquet, db, FaultInjector::none()).with_engine_parallelism(par);
    let run = if optimized {
        bouquet.run_optimized_resumable_on(&mut sub)?
    } else {
        bouquet.run_basic_resumable_on(&mut sub)?
    };
    let report = EngineRunReport::from_run(&run.0, sub.result_rows().unwrap_or(0));
    Ok((report, run.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_bouquet::BouquetConfig;
    use pb_engine::ColumnOverride;
    use pb_workloads::h_q8a_2d;

    fn setup() -> (Bouquet, Database) {
        let w = h_q8a_2d(0.005);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        // Duplicate the "key" columns on both sides of each join: actual
        // join selectivity becomes ~1/ndv_eff, far above the AVI estimate of
        // 1/|PK relation| — the manufactured under-estimate of Section 6.7.
        let db = Database::generate(
            &w.catalog,
            7,
            &[
                ColumnOverride::EffectiveNdv {
                    table: "part".into(),
                    column: "p_partkey".into(),
                    ndv: 100,
                },
                ColumnOverride::EffectiveNdv {
                    table: "lineitem".into(),
                    column: "l_partkey".into(),
                    ndv: 100,
                },
                ColumnOverride::EffectiveNdv {
                    table: "orders".into(),
                    column: "o_orderkey".into(),
                    ndv: 400,
                },
                ColumnOverride::EffectiveNdv {
                    table: "lineitem".into(),
                    column: "l_orderkey".into(),
                    ndv: 400,
                },
            ],
        )
        .expect("generate");
        (b, db)
    }

    #[test]
    fn engine_bouquet_completes_and_produces_rows() {
        let (b, db) = setup();
        let basic = engine_run_bouquet(&b, &db, false).unwrap();
        assert!(
            basic.completed,
            "basic engine run failed: {:?}",
            basic.executions
        );
        assert!(basic.result_rows > 0);
        let opt = engine_run_bouquet(&b, &db, true).unwrap();
        assert!(opt.completed);
        assert_eq!(
            opt.result_rows, basic.result_rows,
            "result must not depend on driver"
        );
    }

    #[test]
    fn optimized_engine_run_is_no_costlier_than_basic() {
        let (b, db) = setup();
        let basic = engine_run_bouquet(&b, &db, false).unwrap();
        let opt = engine_run_bouquet(&b, &db, true).unwrap();
        assert!(
            opt.total_cost <= basic.total_cost * 1.1,
            "optimized {} vs basic {}",
            opt.total_cost,
            basic.total_cost
        );
    }

    #[test]
    fn measured_qa_exceeds_avi_estimate_under_skew() {
        let (b, db) = setup();
        let w = &b.workload;
        let qa = measure_qa(&db, &w.query, &w.ess).unwrap();
        let est = pb_cost::Estimator::new(&w.catalog);
        let lo: Vec<f64> = w.ess.dims.iter().map(|d| d.lo).collect();
        let hi: Vec<f64> = w.ess.dims.iter().map(|d| d.hi).collect();
        let qe = est.estimate_point(&w.query, &lo, &hi);
        assert!(
            qa[0] > qe[0] * 2.0,
            "skew should inflate dim 0: qa {} vs qe {}",
            qa[0],
            qe[0]
        );
    }

    #[test]
    fn contour_breakdown_accounts_for_all_cost() {
        let (b, db) = setup();
        let run = engine_run_bouquet(&b, &db, false).unwrap();
        let sum: f64 = run.contour_breakdown().iter().map(|r| r.2).sum();
        assert!((sum - run.total_cost).abs() < 1e-6 * run.total_cost.max(1.0));
    }

    /// The robust ladder runs against the engine too (PR 5 tentpole): an
    /// empty fault plan must be behaviourally inert on this substrate.
    #[test]
    fn robust_engine_run_with_empty_faults_matches_plain() {
        let (b, db) = setup();
        let cfg = pb_bouquet::RobustConfig::default();
        let mut sub = EngineSubstrate::new(&b, &db, FaultInjector::new(&cfg.faults));
        let robust = b.run_robust_on(&mut sub, &cfg).unwrap();
        let mut plain_sub = EngineSubstrate::new(&b, &db, FaultInjector::none());
        let plain = b.run_basic_on(&mut plain_sub).unwrap();
        assert_eq!(robust.run, plain);
        assert!(robust.events.is_empty() && !robust.degraded);
    }
}
