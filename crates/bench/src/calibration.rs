//! Static cost-model calibration against engine measurements.
//!
//! Section 3.4 leans on Wu et al. (ICDE 2013), who tuned PostgreSQL's cost
//! constants offline and achieved an average modeling error of δ ≈ 0.4 —
//! the number the paper plugs into its `(1+δ)²` robustness cap. This module
//! reproduces that workflow on our substrate: execute a sample of plans on
//! the tuple engine at *known* selectivities, compare against modeled
//! costs, fit a single multiplicative scale (the geometric mean of the
//! ratios — the least-squares solution in log space), and report the
//! residual δ before and after.

use pb_bouquet::Workload;
use pb_cost::Coster;
use pb_engine::{Database, Engine};

/// Result of a calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Multiplicative correction: `engine_cost ≈ scale · modeled_cost`.
    pub scale: f64,
    /// Average multiplicative error before scaling (δ of Section 3.4,
    /// computed as the mean of `max(r, 1/r) − 1` over samples).
    pub delta_before: f64,
    /// Average multiplicative error after applying `scale`.
    pub delta_after: f64,
    /// Worst-case post-calibration band (for the (1+δ)² cap, the bound
    /// wants the max, not the mean).
    pub delta_after_max: f64,
    pub samples: usize,
}

/// Calibrate `w`'s cost model against engine executions on `db`.
///
/// The sample set is every bouquet-relevant plan (the POSP of a coarse
/// diagram) executed at a lattice of true locations; selectivities are
/// *measured* from the data, so the only divergence left is the model's.
pub fn calibrate(w: &Workload, db: &Database, sample_fractions: &[f64]) -> Calibration {
    let coster = Coster::new(&w.catalog, &w.query, &w.model);
    let engine = Engine::new(db, &w.query, &w.model.p);

    // Measure the actual location once.
    let mut qa = vec![0.0; w.d()];
    for r in &w.query.relations {
        for s in &r.selections {
            if let Some(d) = s.selectivity.error_dim() {
                qa[d] = db
                    .actual_selection_selectivity(s)
                    .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
            }
        }
    }
    for (ji, j) in w.query.joins.iter().enumerate() {
        if let Some(d) = j.selectivity.error_dim() {
            qa[d] = db
                .actual_join_selectivity(&w.query, ji)
                .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
        }
    }

    // Sample plans: the optimal plan at a few modeled locations (diverse
    // operator mixes), all *executed* at the true location qa.
    let opt = w.optimizer();
    let mut ratios: Vec<f64> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &f in sample_fractions {
        let probe = w.ess.point_at_fractions(&vec![f; w.d()]);
        let plan = opt.optimize(&probe).plan;
        if !seen.insert(plan.fingerprint()) {
            continue;
        }
        let modeled = coster.plan_cost(&plan.root, &qa);
        let actual = engine.execute(&plan.root, f64::INFINITY).cost();
        if modeled > 0.0 && actual > 0.0 {
            ratios.push(actual / modeled);
        }
    }
    assert!(!ratios.is_empty(), "no calibration samples");

    let band = |r: f64| if r >= 1.0 { r - 1.0 } else { 1.0 / r - 1.0 };
    let delta_before = ratios.iter().map(|&r| band(r)).sum::<f64>() / ratios.len() as f64;
    // Log-space least squares: scale = geometric mean of ratios.
    let scale = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let after: Vec<f64> = ratios.iter().map(|&r| band(r / scale)).collect();
    let delta_after = after.iter().sum::<f64>() / after.len() as f64;
    let delta_after_max = after.iter().cloned().fold(0.0f64, f64::max);
    Calibration {
        scale,
        delta_before,
        delta_after,
        delta_after_max,
        samples: ratios.len(),
    }
}

/// The `repro calibrate` exhibit: the native personality (our model and
/// engine share constants, so δ is small) and a deliberately mismatched
/// personality (modeling with "commercialish" constants while the engine
/// charges "postgresish" ones — the realistic un-tuned-model scenario that
/// calibration is for).
pub fn exhibit() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 3.4 companion — static cost-model calibration (Wu et al. workflow)\n\
         (the paper cites an achievable post-tuning average δ ≈ 0.4)\n"
    );
    let fractions: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
    for (label, mismodel) in [("matched model", false), ("mismatched model", true)] {
        let mut w = pb_workloads::h_q8a_2d(0.01);
        if mismodel {
            // Model with the wrong personality; the engine still charges
            // postgresish constants through w.model... so swap only the
            // *modeling* side by costing with commercialish while the
            // engine uses the original parameters.
            w.model = pb_cost::CostModel::commercialish();
            w.model.name = "commercialish-model-vs-postgresish-engine".into();
        }
        let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
        // Engine always charges postgresish constants.
        let pg = pb_cost::CostModel::postgresish();
        let c = calibrate_with_engine_params(&w, &db, &pg.p, &fractions);
        let _ = writeln!(
            out,
            "{label}: samples {}  scale {:.3}  δ before {:.2}  after {:.2} (max {:.2})",
            c.samples, c.scale, c.delta_before, c.delta_after, c.delta_after_max
        );
    }
    let _ = writeln!(
        out,
        "\n=> a matched model calibrates to δ ≈ 0.04; a structurally mismatched\n\
           personality keeps a large residual δ because its error is per-operator,\n\
           not a global level — which is why Wu et al. fit the cost *units*\n\
           individually. Either way the measured worst-case δ is what feeds the\n\
           (1+δ)² robustness cap of Section 3.4."
    );
    out
}

/// Like [`calibrate`], but the engine charges `engine_params` (decoupled
/// from the workload's modeling personality).
pub fn calibrate_with_engine_params(
    w: &Workload,
    db: &Database,
    engine_params: &pb_cost::CostParams,
    sample_fractions: &[f64],
) -> Calibration {
    let coster = Coster::new(&w.catalog, &w.query, &w.model);
    let engine = Engine::new(db, &w.query, engine_params);
    let mut qa = vec![0.0; w.d()];
    for (ji, j) in w.query.joins.iter().enumerate() {
        if let Some(d) = j.selectivity.error_dim() {
            qa[d] = db
                .actual_join_selectivity(&w.query, ji)
                .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
        }
    }
    for r in &w.query.relations {
        for s in &r.selections {
            if let Some(d) = s.selectivity.error_dim() {
                qa[d] = db
                    .actual_selection_selectivity(s)
                    .clamp(w.ess.dims[d].lo, w.ess.dims[d].hi);
            }
        }
    }
    let opt = w.optimizer();
    let mut ratios: Vec<f64> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &f in sample_fractions {
        let probe = w.ess.point_at_fractions(&vec![f; w.d()]);
        let plan = opt.optimize(&probe).plan;
        if !seen.insert(plan.fingerprint()) {
            continue;
        }
        let modeled = coster.plan_cost(&plan.root, &qa);
        let actual = engine.execute(&plan.root, f64::INFINITY).cost();
        if modeled > 0.0 && actual > 0.0 {
            ratios.push(actual / modeled);
        }
    }
    assert!(!ratios.is_empty(), "no calibration samples");
    let band = |r: f64| if r >= 1.0 { r - 1.0 } else { 1.0 / r - 1.0 };
    let delta_before = ratios.iter().map(|&r| band(r)).sum::<f64>() / ratios.len() as f64;
    let scale = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let after: Vec<f64> = ratios.iter().map(|&r| band(r / scale)).collect();
    let delta_after = after.iter().sum::<f64>() / after.len() as f64;
    let delta_after_max = after.iter().cloned().fold(0.0f64, f64::max);
    Calibration {
        scale,
        delta_before,
        delta_after,
        delta_after_max,
        samples: ratios.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_workloads::h_q8a_2d;

    #[test]
    fn calibration_reduces_average_delta() {
        let w = h_q8a_2d(0.01);
        let db = Database::generate(&w.catalog, 42, &[]).expect("generate");
        let fr: Vec<f64> = (0..6).map(|i| i as f64 / 5.0).collect();
        let c = calibrate(&w, &db, &fr);
        assert!(c.samples >= 2, "need plan diversity, got {}", c.samples);
        assert!(c.scale > 0.0);
        assert!(
            c.delta_after <= c.delta_before + 1e-9,
            "calibration must not worsen the average: {} -> {}",
            c.delta_before,
            c.delta_after
        );
        // The engine and model are close relatives: post-calibration δ
        // should land in the neighbourhood the paper cites.
        assert!(
            c.delta_after < 1.0,
            "post-calibration δ = {}",
            c.delta_after
        );
    }

    #[test]
    fn exhibit_renders() {
        let s = exhibit();
        assert!(s.contains("matched model"));
        assert!(s.contains("mismatched model"));
        assert!(s.contains("(1+δ)²"));
    }
}
