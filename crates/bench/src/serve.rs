//! Serving-layer exercises: smoke round-trip, concurrent-client sweep and
//! the regression-gate benchmark for `pb-server`.
//!
//! Everything here boots real servers on `127.0.0.1:0` and talks to them
//! over TCP — no test doubles — so the numbers in `BENCH_serve.json`
//! measure the same path a deployment would.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use pb_faults::{FaultKind, FaultPlan, Trigger};
use pb_server::{PbClient, PbServer, QueryResult, Request, Response, ServerConfig, ServerStats};
use serde::Value;

use crate::table::Table;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn submit_req(tenant: &str, frac: f64, resume: bool, deadline_ms: Option<u64>) -> Request {
    Request::Submit {
        tenant: tenant.into(),
        workload: "EQ_1D".into(),
        fractions: vec![frac],
        optimized: false,
        resume,
        deadline_ms,
    }
}

/// Submit with bounded retry on backpressure; returns the id and how many
/// rejections were absorbed along the way.
fn submit_with_retry(c: &mut PbClient, req: &Request) -> Result<(u64, u64), String> {
    let mut rejects = 0u64;
    for _ in 0..500 {
        match c.submit(req).map_err(|e| e.to_string())? {
            Ok(id) => return Ok((id, rejects)),
            Err(Response::Rejected { retry_after_ms, .. }) => {
                rejects += 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 50)));
            }
            Err(other) => return Err(format!("unexpected submit reply: {other:?}")),
        }
    }
    Err("submission never accepted after 500 attempts".into())
}

fn wait_done(c: &mut PbClient, id: u64) -> Result<QueryResult, String> {
    c.wait(id, Duration::from_secs(60))
        .map_err(|e| e.to_string())
}

/// Every-accepted-request-answered accounting identity.
fn check_accounting(stats: &ServerStats) -> Result<(), String> {
    let answered =
        stats.completed + stats.degraded + stats.budget_exhausted + stats.cancelled + stats.failed;
    if answered != stats.accepted {
        return Err(format!(
            "accepted {} but answered {answered}",
            stats.accepted
        ));
    }
    if stats.queue_depth != 0 || stats.inflight != 0 {
        return Err(format!(
            "drain left queue_depth={} inflight={}",
            stats.queue_depth, stats.inflight
        ));
    }
    for (tenant, spent, cap) in &stats.tenants {
        if *cap >= 0.0 && *spent > cap * (1.0 + 1e-9) {
            return Err(format!("tenant {tenant} over cap: {spent} > {cap}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Smoke round-trip (CI)
// ---------------------------------------------------------------------------

/// Boot a server and drive the full protocol round-trip: ping,
/// submit/status, deadline-cancel + resumed resubmission, tenant budget
/// isolation, worker-panic containment, backpressure shedding, disconnect
/// survival, graceful drain. Returns a human-readable summary; any broken
/// invariant is an `Err`.
pub fn smoke() -> Result<String, String> {
    let mut out = String::new();

    // --- clean server: lifecycle + cancel/resume identity -----------------
    let server = PbServer::start(ServerConfig::default()).map_err(|e| format!("start: {e}"))?;
    let mut c = PbClient::connect(server.addr()).map_err(|e| e.to_string())?;
    if c.request(&Request::Ping).map_err(|e| e.to_string())? != Response::Pong {
        return Err("ping did not pong".into());
    }

    let (id, _) = submit_with_retry(&mut c, &submit_req("alice", 0.63, false, None))?;
    let r = wait_done(&mut c, id)?;
    if r.outcome != "completed" {
        return Err(format!("plain submit ended {}", r.outcome));
    }
    let _ = writeln!(
        out,
        "submit/status: completed, cost {:.0}, subopt {:.2}",
        r.total_cost,
        r.subopt.unwrap_or(f64::NAN)
    );

    // Deadline 0 cancels before the first grant; identical resubmission
    // resumes and lands on the uninterrupted result with
    // spent + reused == restart cost.
    let (cid, _) = submit_with_retry(&mut c, &submit_req("t", 0.8, true, Some(0)))?;
    let rc = wait_done(&mut c, cid)?;
    if rc.outcome != "cancelled" {
        return Err(format!("deadline-0 submit ended {}", rc.outcome));
    }
    let (refid, _) = submit_with_retry(&mut c, &submit_req("ref", 0.8, false, None))?;
    let rref = wait_done(&mut c, refid)?;
    let (rid, _) = submit_with_retry(&mut c, &submit_req("t", 0.8, true, None))?;
    let rres = wait_done(&mut c, rid)?;
    if rres.outcome != "completed" || rres.final_plan != rref.final_plan {
        return Err(format!(
            "resumed resubmit diverged: {} plan {:?} vs reference plan {:?}",
            rres.outcome, rres.final_plan, rref.final_plan
        ));
    }
    let paid = rres.total_cost + rres.reused_cost;
    if (paid - rref.total_cost).abs() > 1e-9 * rref.total_cost {
        return Err(format!(
            "resume cost identity broken: spent+reused {paid} != restart {}",
            rref.total_cost
        ));
    }
    let _ = writeln!(
        out,
        "cancel/resubmit: resumed, reused {:.0} of {:.0} restart units",
        rres.reused_cost, rref.total_cost
    );
    match c.request(&Request::Drain).map_err(|e| e.to_string())? {
        Response::Drained { stats } => check_accounting(&stats)?,
        other => return Err(format!("unexpected drain reply: {other:?}")),
    }
    server.wait();

    // --- capped tenants: budget exhaustion degrades only its owner --------
    let server = PbServer::start(ServerConfig {
        tenant_cap: 1.0,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("start capped: {e}"))?;
    let mut c = PbClient::connect(server.addr()).map_err(|e| e.to_string())?;
    let (pid, _) = submit_with_retry(&mut c, &submit_req("poor", 0.6, false, None))?;
    let rp = wait_done(&mut c, pid)?;
    if rp.outcome != "budget-exhausted" && rp.outcome != "degraded" {
        return Err(format!("capped tenant got {}", rp.outcome));
    }
    if rp.total_cost > 1.0 + 1e-9 {
        return Err(format!("capped run overspent: {}", rp.total_cost));
    }
    let stats = server.stop();
    check_accounting(&stats)?;
    let _ = writeln!(out, "tenant caps: capped run landed on {}", rp.outcome);

    // --- seeded server-fault chaos block ----------------------------------
    let faults = FaultPlan::new(11)
        .with(FaultKind::WorkerPanic, Trigger::Nth(2))
        .with(FaultKind::SlowClient { ms: 10 }, Trigger::Every(5))
        .with(FaultKind::QueueStall { ms: 10 }, Trigger::Every(4))
        .with(FaultKind::ClientDisconnect, Trigger::Nth(9));
    let server = PbServer::start(ServerConfig {
        workers: 2,
        queue_cap: 4,
        faults,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("start faulted: {e}"))?;
    let mut panics = 0u64;
    let mut disconnects = 0u64;
    let mut completed = 0u64;
    for i in 0..12 {
        let frac = 0.1 + 0.07 * f64::from(i);
        // Reconnect per request: the client-disconnect fault may drop any
        // connection; the server must shrug it off.
        let mut c = PbClient::connect(server.addr()).map_err(|e| e.to_string())?;
        let Ok((id, _)) = submit_with_retry(&mut c, &submit_req("chaos", frac, false, None)) else {
            disconnects += 1;
            continue;
        };
        match wait_done(&mut c, id) {
            Ok(r) if r.outcome == "completed" => completed += 1,
            Ok(r) if r.outcome == "failed" => panics += 1,
            Ok(r) => return Err(format!("chaos request ended {}", r.outcome)),
            Err(_) => disconnects += 1, // dropped mid-poll; answered server-side
        }
    }
    // The server survived everything; a fresh connection still works.
    let mut c = PbClient::connect(server.addr()).map_err(|e| e.to_string())?;
    if c.request(&Request::Ping).map_err(|e| e.to_string())? != Response::Pong {
        return Err("server unresponsive after chaos".into());
    }
    let stats = server.stop();
    check_accounting(&stats)?;
    if stats.worker_panics == 0 {
        return Err("worker-panic fault never fired".into());
    }
    if stats.workers_replaced == 0 {
        return Err("poisoned worker was never replaced".into());
    }
    let _ = writeln!(
        out,
        "chaos block: {completed} completed, {panics} contained panic(s), \
         {disconnects} dropped connection(s), {} worker(s) replaced",
        stats.workers_replaced
    );
    Ok(out)
}

// ---------------------------------------------------------------------------
// Concurrent-client sweep (BENCH_serve.json)
// ---------------------------------------------------------------------------

struct SweepRow {
    clients: usize,
    rejects: u64,
    wall_s: f64,
    stats: ServerStats,
}

/// Run `requests` closed-loop requests from each of `n` clients against a
/// fresh server and collect the final stats.
fn run_step(n: usize, requests: usize, cfg: &ServerConfig) -> Result<SweepRow, String> {
    let server = PbServer::start(cfg.clone()).map_err(|e| format!("start: {e}"))?;
    let addr = server.addr();
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for ci in 0..n {
        handles.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut c = PbClient::connect(addr).map_err(|e| e.to_string())?;
            let mut rejects = 0u64;
            for r in 0..requests {
                let frac = 0.05 + 0.9 * ((ci * 31 + r * 7) % 97) as f64 / 96.0;
                let req = submit_req(&format!("tenant-{ci}"), frac, false, None);
                let (id, rj) = submit_with_retry(&mut c, &req)?;
                rejects += rj;
                let res = wait_done(&mut c, id)?;
                if res.outcome != "completed" {
                    return Err(format!("sweep request ended {}", res.outcome));
                }
            }
            Ok(rejects)
        }));
    }
    let mut rejects = 0u64;
    for h in handles {
        rejects += h
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = server.stop();
    check_accounting(&stats)?;
    Ok(SweepRow {
        clients: n,
        rejects,
        wall_s,
        stats,
    })
}

/// The 1→N concurrent-client sweep: a small worker pool behind a small
/// bounded queue, closed-loop clients retrying on rejection. Saturation
/// must surface as *shed load* (rejects rise with the client count) while
/// the bounded queue keeps tail latency flat — never as collapse.
pub fn sweep(clients: &[usize], requests: usize) -> Result<(String, Value), String> {
    let cfg = ServerConfig {
        workers: 2,
        queue_cap: 2,
        ..ServerConfig::default()
    };
    let mut t = Table::new(vec![
        "clients",
        "accepted",
        "rejected",
        "qps",
        "p50 ms",
        "p99 ms",
        "max subopt",
    ]);
    let mut rows = Vec::new();
    for &n in clients {
        let row = run_step(n, requests, &cfg)?;
        let qps = row.stats.completed as f64 / row.wall_s.max(1e-9);
        t.row(vec![
            row.clients.to_string(),
            row.stats.accepted.to_string(),
            row.rejects.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}", row.stats.p50_ms),
            format!("{:.2}", row.stats.p99_ms),
            format!("{:.2}", row.stats.max_subopt),
        ]);
        rows.push(obj(vec![
            ("clients", Value::UInt(row.clients as u64)),
            ("requests", Value::UInt((row.clients * requests) as u64)),
            ("accepted", Value::UInt(row.stats.accepted)),
            ("rejected", Value::UInt(row.rejects)),
            ("completed", Value::UInt(row.stats.completed)),
            ("qps", Value::Float(qps)),
            ("p50_ms", Value::Float(row.stats.p50_ms)),
            ("p99_ms", Value::Float(row.stats.p99_ms)),
            ("max_subopt", Value::Float(row.stats.max_subopt)),
            ("wall_s", Value::Float(row.wall_s)),
        ]));
    }
    let section = obj(vec![
        ("workload", Value::Str("EQ_1D".into())),
        ("workers", Value::UInt(2)),
        ("queue_cap", Value::UInt(2)),
        ("requests_per_client", Value::UInt(requests as u64)),
        ("sweep", Value::Arr(rows)),
    ]);
    Ok((t.render(), section))
}

// ---------------------------------------------------------------------------
// Regression-gate benchmark (`pbq bench-check` section "serve")
// ---------------------------------------------------------------------------

/// Deterministic-shape serving benchmark for the regression gate: a single
/// stalled worker behind a one-slot queue must shed load under 4 clients
/// (`sheds_load` exact) while latency stays bounded (banded `_s` keys) and
/// every accepted request is answered (`answered_all` exact).
pub fn serve_bench() -> Result<Value, String> {
    let cfg = ServerConfig {
        workers: 1,
        queue_cap: 1,
        faults: FaultPlan::new(5).with(FaultKind::QueueStall { ms: 20 }, Trigger::Every(1)),
        ..ServerConfig::default()
    };
    let requests = 5;
    let solo = run_step(1, requests, &cfg)?;
    let loaded = run_step(4, requests, &cfg)?;
    let answered = |r: &SweepRow| {
        r.stats.completed
            + r.stats.degraded
            + r.stats.budget_exhausted
            + r.stats.cancelled
            + r.stats.failed
            == r.stats.accepted
    };
    Ok(obj(vec![
        ("workload", Value::Str("EQ_1D".into())),
        ("solo_clients", Value::UInt(1)),
        ("loaded_clients", Value::UInt(4)),
        ("requests_per_client", Value::UInt(requests as u64)),
        (
            "solo_per_req_s",
            Value::Float(solo.wall_s / requests as f64),
        ),
        ("loaded_p99_s", Value::Float(loaded.stats.p99_ms / 1e3)),
        ("sheds_load", Value::Bool(loaded.rejects > 0)),
        (
            "answered_all",
            Value::Bool(answered(&solo) && answered(&loaded)),
        ),
    ]))
}
