//! Seeded chaos campaign for the robust bouquet driver.
//!
//! Sweeps fault kinds × drivers × TPC-H / TPC-DS workloads × true-location
//! grid points through [`Bouquet::run_robust`], plus a block of engine-level
//! scenarios exercising the tuple and vectorized execution paths, and checks
//! the invariants the robustness layer promises:
//!
//! * **No panics** — every scenario runs under `catch_unwind`; a panic
//!   anywhere in the identification/driver/engine stack is a breach.
//! * **No double charging** — a run's `total_cost` must equal the sum of its
//!   trace spends (every retry and degraded attempt is charged exactly once).
//! * **Determinism** — replaying a scenario with the same seed must produce a
//!   bit-identical `RobustRun` (serialized comparison).
//! * **Inert equivalence** — with an empty fault plan, `run_robust` must be
//!   structurally identical to the plain driver: same serialized
//!   `BouquetRun`, no events, not degraded. On the engine, an inert injector
//!   must yield a bit-identical `EngineOutcome`.
//!
//! The campaign is fully deterministic in its seed; `pbq chaos --seed N`
//! exits non-zero if any invariant is breached.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use pb_bouquet::{Bouquet, BouquetConfig, ExecutionOutcome, RobustConfig};
use pb_engine::{Database, Engine};
use pb_faults::{splitmix64, unit_f64, FaultInjector, FaultKind, FaultPlan, Trigger};
use pb_workloads::{ds_q15_3d, eq_1d, h_q8a_2d, hostile_anti_2d, hostile_ineq_2d};

use crate::table::Table;

/// Number of true-location grid points probed per (workload, driver, plan).
const POINTS_PER_CELL: usize = 10;

/// One row of the survival table.
#[derive(Debug, Default, Clone)]
struct Cell {
    scenarios: usize,
    completed: usize,
    degraded: usize,
    exhausted: usize,
    events: usize,
}

/// Campaign outcome: survival statistics plus the list of invariant
/// breaches (empty ⇒ the robustness layer held everywhere).
#[derive(Debug)]
pub struct CampaignReport {
    pub seed: u64,
    pub scenarios: usize,
    pub breaches: Vec<String>,
    pub table: String,
}

impl CampaignReport {
    pub fn passed(&self) -> bool {
        self.breaches.is_empty()
    }
}

/// The fault-plan catalog: every fault kind alone (with seed-derived trigger
/// phases), a combined plan, and the empty plan that anchors the
/// inert-equivalence invariant.
fn plan_catalog(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let mut s = seed;
    let mut nth = |hi: u64| 1 + splitmix64(&mut s) % hi;
    vec![
        ("none", FaultPlan::none()),
        (
            "operator-failure",
            FaultPlan::new(seed).with(
                FaultKind::OperatorFailure { waste_frac: 0.5 },
                Trigger::Nth(nth(4)),
            ),
        ),
        (
            "operator-storm",
            FaultPlan::new(seed ^ 1).with(
                FaultKind::OperatorFailure { waste_frac: 0.9 },
                Trigger::PerMille(400),
            ),
        ),
        (
            "ledger-overcharge",
            FaultPlan::new(seed ^ 2).with(
                FaultKind::LedgerOverCharge { factor: 1.5 },
                Trigger::Every(nth(3)),
            ),
        ),
        (
            "spill-failure",
            FaultPlan::new(seed ^ 3).with(FaultKind::SpillFailure, Trigger::Nth(nth(2))),
        ),
        (
            "corrupt-observation",
            FaultPlan::new(seed ^ 4).with(
                FaultKind::CorruptObservation { scale: 50.0 },
                Trigger::Every(1),
            ),
        ),
        (
            "budget-clock-skew",
            FaultPlan::new(seed ^ 5).with(
                FaultKind::BudgetClockSkew { factor: 0.7 },
                Trigger::Every(nth(3)),
            ),
        ),
        (
            "perturbation-spike",
            FaultPlan::new(seed ^ 6).with(
                FaultKind::PerturbationSpike { factor: 3.0 },
                Trigger::PerMille(300),
            ),
        ),
        (
            "combined",
            FaultPlan::new(seed ^ 7)
                .with(
                    FaultKind::OperatorFailure { waste_frac: 0.3 },
                    Trigger::PerMille(200),
                )
                .with(
                    FaultKind::BudgetClockSkew { factor: 1.2 },
                    Trigger::Every(3),
                )
                .with(
                    FaultKind::CorruptObservation { scale: 10.0 },
                    Trigger::PerMille(250),
                ),
        ),
    ]
}

fn cell_of(cells: &mut Vec<(String, Cell)>, key: String) -> usize {
    match cells.iter().position(|(k, _)| *k == key) {
        Some(i) => i,
        None => {
            cells.push((key, Cell::default()));
            cells.len() - 1
        }
    }
}

fn run_scenario(
    b: &Bouquet,
    qa: &pb_cost::SelPoint,
    cfg: &RobustConfig,
) -> Result<pb_bouquet::RobustRun, String> {
    let caught = catch_unwind(AssertUnwindSafe(|| b.run_robust(qa, cfg)));
    match caught {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(format!("driver error: {e}")),
        Err(_) => Err("PANIC".into()),
    }
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap_or_else(|e| format!("<serialize failed: {e}>"))
}

/// Run the full campaign. Deterministic in `seed`.
pub fn run_campaign(seed: u64) -> CampaignReport {
    let mut breaches: Vec<String> = Vec::new();
    let mut scenarios = 0usize;
    let mut cells: Vec<(String, Cell)> = Vec::new();

    // Identified once, reused for every scenario (identification is
    // fault-free; the campaign targets the run-time drivers).
    let workloads = [
        eq_1d(),
        h_q8a_2d(0.01),
        ds_q15_3d(),
        // Typed-dimension hostile spaces: the inequality-join and
        // (pre-flipped) anti-join axes must survive the same fault sweep as
        // the classic selection/PK–FK spaces.
        hostile_ineq_2d(0.01),
        hostile_anti_2d(0.01),
    ];
    let bouquets: Vec<Bouquet> = workloads
        .iter()
        .map(|w| {
            Bouquet::identify(w, &BouquetConfig::default())
                .unwrap_or_else(|e| panic!("identification of {} failed: {e}", w.name))
        })
        .collect();

    let catalog = plan_catalog(seed);
    let mut point_rng = seed ^ 0x5EED_CAFE;
    for b in &bouquets {
        let d = b.workload.ess.d();
        for optimized in [false, true] {
            let driver = if optimized { "opt" } else { "basic" };
            // The plain run anchors the empty-plan equivalence check.
            let plain = |qa: &pb_cost::SelPoint| {
                if optimized {
                    b.run_optimized(qa)
                } else {
                    b.run_basic(qa)
                }
            };
            for (label, plan) in &catalog {
                let ci = cell_of(&mut cells, format!("{label}|{driver}"));
                for _ in 0..POINTS_PER_CELL {
                    scenarios += 1;
                    cells[ci].1.scenarios += 1;
                    let fracs: Vec<f64> = (0..d)
                        .map(|_| unit_f64(splitmix64(&mut point_rng)).clamp(0.01, 0.99))
                        .collect();
                    let qa = b.workload.ess.point_at_fractions(&fracs);
                    let cfg = RobustConfig {
                        faults: plan.clone(),
                        plan_retries: 1,
                        max_violations: 3,
                        optimized,
                        resume: false,
                        ..Default::default()
                    };
                    let tag = || format!("{}/{driver}/{label}@{fracs:?}", b.workload.name);

                    let run = match run_scenario(b, &qa, &cfg) {
                        Ok(r) => r,
                        Err(e) => {
                            breaches.push(format!("{}: {e}", tag()));
                            continue;
                        }
                    };

                    // Charging: total equals the sum of trace spends.
                    let sum: f64 = run.run.trace.iter().map(|e| e.spent).sum();
                    if (sum - run.run.total_cost).abs() > 1e-9 * sum.abs().max(1.0) {
                        breaches.push(format!(
                            "{}: double/under-charge: trace sum {sum} vs total {}",
                            tag(),
                            run.run.total_cost
                        ));
                    }

                    // Determinism: a replay is bit-identical.
                    match run_scenario(b, &qa, &cfg) {
                        Ok(replay) if json(&replay) == json(&run) => {}
                        Ok(_) => breaches.push(format!("{}: replay diverged", tag())),
                        Err(e) => breaches.push(format!("{}: replay failed: {e}", tag())),
                    }

                    // Inert equivalence: empty plan ⇒ structurally the plain run.
                    if plan.is_empty() {
                        let reference = match catch_unwind(AssertUnwindSafe(|| plain(&qa))) {
                            Ok(Ok(r)) => r,
                            Ok(Err(e)) => {
                                breaches.push(format!("{}: plain driver error: {e}", tag()));
                                continue;
                            }
                            Err(_) => {
                                breaches.push(format!("{}: plain driver PANIC", tag()));
                                continue;
                            }
                        };
                        if json(&run.run) != json(&reference) {
                            breaches.push(format!("{}: empty-plan run != plain driver run", tag()));
                        }
                        if !run.events.is_empty() || run.degraded {
                            breaches.push(format!("{}: empty-plan run recorded events", tag()));
                        }
                    }

                    cells[ci].1.events += run.events.len();
                    match run.run.outcome {
                        ExecutionOutcome::Completed { .. } => cells[ci].1.completed += 1,
                        ExecutionOutcome::Degraded { .. } => cells[ci].1.degraded += 1,
                        ExecutionOutcome::BudgetExhausted { .. }
                        | ExecutionOutcome::Cancelled { .. } => cells[ci].1.exhausted += 1,
                    }
                }
            }
        }
    }

    scenarios += engine_scenarios(seed, &mut breaches, &mut cells);
    scenarios += parallel_engine_scenarios(seed, &mut breaches, &mut cells);
    scenarios += engine_substrate_scenarios(seed, &mut breaches, &mut cells);
    scenarios += hostile_engine_scenarios(seed, &mut breaches, &mut cells);
    scenarios += cancel_resume_scenarios(seed, &bouquets[0], &mut breaches, &mut cells);
    scenarios += server_scenarios(seed, &mut breaches, &mut cells);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos campaign: seed {seed}, {scenarios} scenarios, {} breach(es)\n",
        breaches.len()
    );
    let mut t = Table::new(vec![
        "fault × driver",
        "runs",
        "completed",
        "degraded",
        "exhausted",
        "events",
    ]);
    for (key, c) in &cells {
        t.row(vec![
            key.clone(),
            c.scenarios.to_string(),
            c.completed.to_string(),
            c.degraded.to_string(),
            c.exhausted.to_string(),
            c.events.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    for bch in &breaches {
        let _ = writeln!(out, "BREACH: {bch}");
    }

    CampaignReport {
        seed,
        scenarios,
        breaches,
        table: out,
    }
}

/// Engine-substrate block: the full robust ladder (`run_robust_on`) driving
/// the real tuple engine through [`pb_bouquet::EngineSubstrate`], under
/// operator-failure and spill-failure faults. Checks the same invariants as
/// the simulator block — no panics, no double charging, deterministic
/// replay, and empty-plan equivalence with the plain substrate-generic
/// drivers.
fn engine_substrate_scenarios(
    seed: u64,
    breaches: &mut Vec<String>,
    cells: &mut Vec<(String, Cell)>,
) -> usize {
    let w = h_q8a_2d(0.003);
    let b = match catch_unwind(AssertUnwindSafe(|| {
        Bouquet::identify(&w, &BouquetConfig::default())
    })) {
        Ok(Ok(b)) => b,
        Ok(Err(e)) => {
            breaches.push(format!("engine-substrate: identification failed: {e}"));
            return 0;
        }
        Err(_) => {
            breaches.push("engine-substrate: identification PANIC".into());
            return 0;
        }
    };
    // Duplicated join keys (Section 6.7 skew): the true location sits far
    // from the AVI estimate, so discovery crosses several contours and the
    // injected operator faults hit mid-campaign rather than on a trivial
    // first-contour completion. (Spilled executions are exercised directly
    // below — the driver only spills when a plan's modeled cost at qrun
    // overshoots its budget, which observation lower bounds rarely cause.)
    let overrides = [
        pb_engine::ColumnOverride::EffectiveNdv {
            table: "part".into(),
            column: "p_partkey".into(),
            ndv: 60,
        },
        pb_engine::ColumnOverride::EffectiveNdv {
            table: "lineitem".into(),
            column: "l_partkey".into(),
            ndv: 60,
        },
        pb_engine::ColumnOverride::EffectiveNdv {
            table: "orders".into(),
            column: "o_orderkey".into(),
            ndv: 240,
        },
        pb_engine::ColumnOverride::EffectiveNdv {
            table: "lineitem".into(),
            column: "l_orderkey".into(),
            ndv: 240,
        },
    ];
    let db = match Database::generate(&w.catalog, seed ^ 0xE5, &overrides) {
        Ok(db) => db,
        Err(e) => {
            breaches.push(format!("engine-substrate: data generation failed: {e}"));
            return 0;
        }
    };

    let mut s = seed ^ 0xB0u64;
    let mut nth = |hi: u64| 1 + splitmix64(&mut s) % hi;
    let fault_plans: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "operator-failure",
            FaultPlan::new(seed ^ 11).with(
                FaultKind::OperatorFailure { waste_frac: 0.5 },
                Trigger::Nth(nth(16)),
            ),
        ),
        (
            "operator-storm",
            FaultPlan::new(seed ^ 12).with(
                FaultKind::OperatorFailure { waste_frac: 0.8 },
                Trigger::PerMille(30),
            ),
        ),
        (
            "spill-failure",
            FaultPlan::new(seed ^ 13).with(FaultKind::SpillFailure, Trigger::Nth(nth(2))),
        ),
        (
            "combined",
            FaultPlan::new(seed ^ 14)
                .with(
                    FaultKind::OperatorFailure { waste_frac: 0.4 },
                    Trigger::PerMille(20),
                )
                .with(FaultKind::SpillFailure, Trigger::Every(2)),
        ),
    ];

    let mut ran = 0usize;
    for optimized in [false, true] {
        let driver = if optimized { "opt" } else { "basic" };
        for (label, fp) in &fault_plans {
            let ci = cell_of(cells, format!("engine-sub:{label}|{driver}"));
            for variant in 0..2u64 {
                ran += 1;
                cells[ci].1.scenarios += 1;
                let mut faults = fp.clone();
                faults.seed ^= variant;
                let cfg = RobustConfig {
                    faults,
                    plan_retries: 1,
                    max_violations: 3,
                    optimized,
                    resume: false,
                    ..Default::default()
                };
                let tag = || format!("engine-sub/{driver}/{label}#{variant}");
                let robust = |cfg: &RobustConfig| {
                    let mut sub =
                        pb_bouquet::EngineSubstrate::new(&b, &db, FaultInjector::new(&cfg.faults));
                    b.run_robust_on(&mut sub, cfg)
                };
                let run = match catch_unwind(AssertUnwindSafe(|| robust(&cfg))) {
                    Ok(Ok(r)) => r,
                    Ok(Err(e)) => {
                        breaches.push(format!("{}: driver error: {e}", tag()));
                        continue;
                    }
                    Err(_) => {
                        breaches.push(format!("{}: PANIC", tag()));
                        continue;
                    }
                };

                // Charging: total equals the sum of trace spends.
                let sum: f64 = run.run.trace.iter().map(|e| e.spent).sum();
                if (sum - run.run.total_cost).abs() > 1e-9 * sum.abs().max(1.0) {
                    breaches.push(format!(
                        "{}: double/under-charge: trace sum {sum} vs total {}",
                        tag(),
                        run.run.total_cost
                    ));
                }

                // Determinism: a fresh substrate + injector replays
                // bit-identically.
                match catch_unwind(AssertUnwindSafe(|| robust(&cfg))) {
                    Ok(Ok(replay)) if json(&replay) == json(&run) => {}
                    Ok(Ok(_)) => breaches.push(format!("{}: replay diverged", tag())),
                    Ok(Err(e)) => breaches.push(format!("{}: replay failed: {e}", tag())),
                    Err(_) => breaches.push(format!("{}: replay PANIC", tag())),
                }

                // Inert equivalence: empty plan ⇒ the plain generic driver.
                if fp.is_empty() {
                    let reference = catch_unwind(AssertUnwindSafe(|| {
                        let mut sub =
                            pb_bouquet::EngineSubstrate::new(&b, &db, FaultInjector::none());
                        if optimized {
                            b.run_optimized_on(&mut sub)
                        } else {
                            b.run_basic_on(&mut sub)
                        }
                    }));
                    match reference {
                        Ok(Ok(r)) => {
                            if json(&run.run) != json(&r) {
                                breaches
                                    .push(format!("{}: empty-plan run != plain driver run", tag()));
                            }
                            if !run.events.is_empty() || run.degraded {
                                breaches.push(format!("{}: empty-plan run recorded events", tag()));
                            }
                        }
                        Ok(Err(e)) => breaches.push(format!("{}: plain driver error: {e}", tag())),
                        Err(_) => breaches.push(format!("{}: plain driver PANIC", tag())),
                    }
                }

                cells[ci].1.events += run.events.len();
                match run.run.outcome {
                    ExecutionOutcome::Completed { .. } => cells[ci].1.completed += 1,
                    ExecutionOutcome::Degraded { .. } => cells[ci].1.degraded += 1,
                    ExecutionOutcome::BudgetExhausted { .. }
                    | ExecutionOutcome::Cancelled { .. } => cells[ci].1.exhausted += 1,
                }
            }
        }
    }

    // Direct spilled executions: the `engine:spill` fault site fires before
    // a spilled prefix runs, so drive `execute_monitored(.., spilled=true)`
    // straight at the substrate with spill-failure plans armed. Invariants:
    // no panic, a failed spill charges nothing, a surviving spill stays
    // within budget and never completes the query, and replays are
    // bit-identical.
    use pb_bouquet::ExecutionSubstrate as _;
    let d = w.ess.d();
    let pid = b.contours[0].plan_set[0];
    let budget = b.contours[0].budget;
    for (label, fp) in fault_plans
        .iter()
        .filter(|(l, _)| matches!(*l, "none" | "spill-failure" | "combined"))
    {
        let ci = cell_of(cells, format!("engine-sub:spill-direct|{label}"));
        for variant in 0..2u64 {
            ran += 1;
            cells[ci].1.scenarios += 1;
            let mut faults = fp.clone();
            faults.seed ^= variant;
            let tag = || format!("engine-sub/spill-direct/{label}#{variant}");
            let spill_exec = || {
                let mut sub =
                    pb_bouquet::EngineSubstrate::new(&b, &db, FaultInjector::new(&faults));
                sub.execute_monitored(pid, &vec![false; d], budget, true)
            };
            let out = match catch_unwind(AssertUnwindSafe(spill_exec)) {
                Ok(o) => o,
                Err(_) => {
                    breaches.push(format!("{}: PANIC", tag()));
                    continue;
                }
            };
            if !out.spilled {
                breaches.push(format!("{}: outcome not marked spilled", tag()));
            }
            match &out.error {
                Some(pb_faults::PbError::SpillFailure { .. }) => {
                    if out.spent != 0.0 {
                        breaches.push(format!(
                            "{}: failed spill charged {} (must be 0)",
                            tag(),
                            out.spent
                        ));
                    }
                    cells[ci].1.events += 1;
                }
                _ => {
                    if out.completed {
                        breaches.push(format!("{}: spilled run completed the query", tag()));
                    }
                    if out.spent > budget * (1.0 + 1e-9) {
                        breaches.push(format!(
                            "{}: spill overspent budget: {} > {budget}",
                            tag(),
                            out.spent
                        ));
                    }
                    for &(dm, v) in out.observed.iter().chain(&out.resolved) {
                        if v < w.ess.dims[dm].lo || v > w.ess.dims[dm].hi {
                            breaches.push(format!(
                                "{}: observation {v} for dim {dm} outside ESS",
                                tag()
                            ));
                        }
                    }
                    cells[ci].1.completed += 1;
                }
            }
            match catch_unwind(AssertUnwindSafe(spill_exec)) {
                Ok(replay)
                    if replay.spent == out.spent
                        && replay.error.is_some() == out.error.is_some()
                        && replay.observed == out.observed
                        && replay.resolved == out.resolved => {}
                Ok(_) => breaches.push(format!("{}: spill replay diverged", tag())),
                Err(_) => breaches.push(format!("{}: spill replay PANIC", tag())),
            }
        }
    }
    ran
}

/// Hostile typed-dimension block: the inequality-join and anti-join error
/// spaces (stale-statistics setups from the `hostile` experiment) driven
/// through the robust ladder on the real engine substrate under operator
/// and spill faults. The new semi/anti/BNL kernels and the per-kind
/// observation mapping (including the flipped anti axis) must uphold the
/// same invariants as the classic spaces: no panics, exact charging,
/// bit-identical replay, and empty-plan equivalence with the plain driver.
fn hostile_engine_scenarios(
    seed: u64,
    breaches: &mut Vec<String>,
    cells: &mut Vec<(String, Cell)>,
) -> usize {
    let setups = [("ineq", 0usize), ("anti", 1usize)].map(|(short, which)| {
        let made = catch_unwind(AssertUnwindSafe(|| {
            if which == 0 {
                crate::experiments::hostile::setup_ineq(0.003)
            } else {
                crate::experiments::hostile::setup_anti(0.003)
            }
        }));
        (short, made)
    });

    let mut s = seed ^ 0x0005_11E5;
    let mut nth = |hi: u64| 1 + splitmix64(&mut s) % hi;
    let fault_plans: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "operator-failure",
            FaultPlan::new(seed ^ 21).with(
                FaultKind::OperatorFailure { waste_frac: 0.6 },
                Trigger::Nth(nth(8)),
            ),
        ),
        (
            "spill-failure",
            FaultPlan::new(seed ^ 22).with(FaultKind::SpillFailure, Trigger::Nth(nth(2))),
        ),
    ];

    let mut ran = 0usize;
    for (short, made) in setups {
        let (_w, b, db) = match made {
            Ok(t) => t,
            Err(_) => {
                breaches.push(format!("hostile-{short}: setup PANIC"));
                continue;
            }
        };
        for optimized in [false, true] {
            let driver = if optimized { "opt" } else { "basic" };
            for (label, fp) in &fault_plans {
                let ci = cell_of(cells, format!("hostile-{short}:{label}|{driver}"));
                ran += 1;
                cells[ci].1.scenarios += 1;
                let cfg = RobustConfig {
                    faults: fp.clone(),
                    plan_retries: 1,
                    max_violations: 3,
                    optimized,
                    resume: false,
                    ..Default::default()
                };
                let tag = || format!("hostile-{short}/{driver}/{label}");
                let robust = |cfg: &RobustConfig| {
                    let mut sub =
                        pb_bouquet::EngineSubstrate::new(&b, &db, FaultInjector::new(&cfg.faults));
                    b.run_robust_on(&mut sub, cfg)
                };
                let run = match catch_unwind(AssertUnwindSafe(|| robust(&cfg))) {
                    Ok(Ok(r)) => r,
                    Ok(Err(e)) => {
                        breaches.push(format!("{}: driver error: {e}", tag()));
                        continue;
                    }
                    Err(_) => {
                        breaches.push(format!("{}: PANIC", tag()));
                        continue;
                    }
                };

                let sum: f64 = run.run.trace.iter().map(|e| e.spent).sum();
                if (sum - run.run.total_cost).abs() > 1e-9 * sum.abs().max(1.0) {
                    breaches.push(format!(
                        "{}: double/under-charge: trace sum {sum} vs total {}",
                        tag(),
                        run.run.total_cost
                    ));
                }

                match catch_unwind(AssertUnwindSafe(|| robust(&cfg))) {
                    Ok(Ok(replay)) if json(&replay) == json(&run) => {}
                    Ok(Ok(_)) => breaches.push(format!("{}: replay diverged", tag())),
                    Ok(Err(e)) => breaches.push(format!("{}: replay failed: {e}", tag())),
                    Err(_) => breaches.push(format!("{}: replay PANIC", tag())),
                }

                if fp.is_empty() {
                    let reference = catch_unwind(AssertUnwindSafe(|| {
                        let mut sub =
                            pb_bouquet::EngineSubstrate::new(&b, &db, FaultInjector::none());
                        if optimized {
                            b.run_optimized_on(&mut sub)
                        } else {
                            b.run_basic_on(&mut sub)
                        }
                    }));
                    match reference {
                        Ok(Ok(r)) => {
                            if json(&run.run) != json(&r) {
                                breaches
                                    .push(format!("{}: empty-plan run != plain driver run", tag()));
                            }
                            if !run.events.is_empty() || run.degraded {
                                breaches.push(format!("{}: empty-plan run recorded events", tag()));
                            }
                        }
                        Ok(Err(e)) => breaches.push(format!("{}: plain driver error: {e}", tag())),
                        Err(_) => breaches.push(format!("{}: plain driver PANIC", tag())),
                    }
                }

                cells[ci].1.events += run.events.len();
                match run.run.outcome {
                    ExecutionOutcome::Completed { .. } => cells[ci].1.completed += 1,
                    ExecutionOutcome::Degraded { .. } => cells[ci].1.degraded += 1,
                    ExecutionOutcome::BudgetExhausted { .. }
                    | ExecutionOutcome::Cancelled { .. } => cells[ci].1.exhausted += 1,
                }
            }
        }
    }
    ran
}

/// A substrate wrapper that trips a cancellation token after `remaining`
/// executions — the library-level model of a deadline landing mid-run at an
/// arbitrary retry/abandon decision point.
struct TripAfter<'a> {
    inner: pb_bouquet::SimulatorSubstrate<'a>,
    token: pb_faults::CancelToken,
    remaining: usize,
}

impl TripAfter<'_> {
    fn tick(&mut self) {
        if self.remaining == 0 {
            self.token.cancel();
        } else {
            self.remaining -= 1;
        }
    }
}

impl pb_bouquet::ExecutionSubstrate for TripAfter<'_> {
    fn execute_partial(
        &mut self,
        pid: pb_optimizer::PlanId,
        budget: f64,
    ) -> pb_bouquet::SubstrateOutcome {
        self.tick();
        self.inner.execute_partial(pid, budget)
    }

    fn execute_monitored(
        &mut self,
        pid: pb_optimizer::PlanId,
        resolved: &[bool],
        budget: f64,
        spilled: bool,
    ) -> pb_bouquet::SubstrateOutcome {
        self.tick();
        self.inner.execute_monitored(pid, resolved, budget, spilled)
    }

    fn run_native(&mut self, pid: pb_optimizer::PlanId) -> pb_bouquet::SubstrateOutcome {
        self.tick();
        self.inner.run_native(pid)
    }

    fn run_native_at(&mut self, point: &pb_cost::SelPoint) -> f64 {
        self.inner.run_native_at(point)
    }

    fn faults_active(&self) -> bool {
        self.inner.faults_active()
    }

    fn enable_checkpoint_resume(&mut self) -> bool {
        self.inner.enable_checkpoint_resume()
    }

    fn resume_stats(&self) -> pb_bouquet::ResumeStats {
        self.inner.resume_stats()
    }
}

/// Cancel/resume bit-identity block: trip a cancellation token after every
/// possible execution count, carry the cancelled run's checkpoint book into
/// a fresh substrate, and require the resumed rerun to be **bit-identical**
/// to an uninterrupted reference with `spent + reused == restart cost` —
/// cancellation at any decision point loses progress, never correctness.
fn cancel_resume_scenarios(
    seed: u64,
    b: &Bouquet,
    breaches: &mut Vec<String>,
    cells: &mut Vec<(String, Cell)>,
) -> usize {
    use pb_bouquet::ExecutionSubstrate as _;
    use pb_faults::CancelToken;

    let mut s = seed ^ 0xCA_7CE1;
    let mut ran = 0usize;
    for optimized in [false, true] {
        let driver = if optimized { "opt" } else { "basic" };
        let ci = cell_of(cells, format!("server:cancel-resume|{driver}"));
        for _ in 0..3 {
            let frac = unit_f64(splitmix64(&mut s)).clamp(0.05, 0.95);
            let qa = b.workload.ess.point_at_fractions(&[frac]);
            let tag = |n: usize| format!("cancel-resume/{driver}@{frac:.3}/trip#{n}");

            // Uninterrupted restart-semantics reference (no resume): its
            // total is the cost every resumed rerun must account for as
            // `spent + reused`.
            let cfg_plain = RobustConfig {
                optimized,
                ..Default::default()
            };
            let cfg = RobustConfig {
                optimized,
                resume: true,
                ..Default::default()
            };
            let mk = |cancel: Option<CancelToken>| {
                pb_bouquet::SimulatorSubstrate::new(b, &qa, FaultInjector::none()).map(|sub| {
                    match cancel {
                        Some(t) => sub.with_cancel(t),
                        None => sub,
                    }
                })
            };
            let reference = match mk(None).map(|mut sub| b.run_robust_on(&mut sub, &cfg_plain)) {
                Ok(Ok(r)) => r,
                Ok(Err(e)) | Err(e) => {
                    breaches.push(format!("{}: reference run failed: {e}", tag(0)));
                    continue;
                }
            };
            let total_executions = reference.run.trace.len();

            for trip in 0..total_executions {
                ran += 1;
                cells[ci].1.scenarios += 1;
                let token = CancelToken::new();
                let inner = match mk(Some(token.clone())) {
                    Ok(sub) => sub,
                    Err(e) => {
                        breaches.push(format!("{}: substrate: {e}", tag(trip)));
                        continue;
                    }
                };
                let mut tripped = TripAfter {
                    inner,
                    token: token.clone(),
                    remaining: trip,
                };
                let trip_cfg = RobustConfig {
                    optimized,
                    resume: true,
                    cancel: Some(token),
                    ..Default::default()
                };
                let first = match b.run_robust_on(&mut tripped, &trip_cfg) {
                    Ok(r) => r,
                    Err(e) => {
                        breaches.push(format!("{}: tripped run failed: {e}", tag(trip)));
                        continue;
                    }
                };
                if !matches!(first.run.outcome, ExecutionOutcome::Cancelled { .. }) {
                    breaches.push(format!(
                        "{}: expected Cancelled after {trip} executions, got {}",
                        tag(trip),
                        json(&first.run.outcome)
                    ));
                    continue;
                }

                // Carry the cancelled run's checkpoints into a fresh
                // substrate and rerun the identical submission.
                let mut resumed_sub = match mk(None) {
                    Ok(sub) => sub,
                    Err(e) => {
                        breaches.push(format!("{}: resume substrate: {e}", tag(trip)));
                        continue;
                    }
                };
                resumed_sub.enable_checkpoint_resume();
                if let Some(book) = tripped.inner.take_resume_book() {
                    resumed_sub.install_resume_book(book);
                }
                let resumed = match b.run_robust_on(&mut resumed_sub, &cfg) {
                    Ok(r) => r,
                    Err(e) => {
                        breaches.push(format!("{}: resumed run failed: {e}", tag(trip)));
                        continue;
                    }
                };

                // Outcome bits identical to the uninterrupted reference.
                // `final_cost` is the final execution's *paid* cost — the
                // one number resume must shrink — so compare the variant
                // and plan choice, not the paid amount.
                let norm = |o: &ExecutionOutcome| match o {
                    ExecutionOutcome::Completed { final_plan, .. } => format!("C{final_plan}"),
                    ExecutionOutcome::Degraded { final_plan, .. } => format!("D{final_plan}"),
                    ExecutionOutcome::BudgetExhausted { .. } => "BE".into(),
                    ExecutionOutcome::Cancelled { .. } => "X".into(),
                };
                if norm(&resumed.run.outcome) != norm(&reference.run.outcome) {
                    breaches.push(format!("{}: resumed outcome != reference", tag(trip)));
                }
                let seq = |r: &pb_bouquet::RobustRun| -> Vec<(usize, usize, f64)> {
                    r.run
                        .trace
                        .iter()
                        .map(|e| (e.contour, e.plan, e.budget))
                        .collect()
                };
                if seq(&resumed) != seq(&reference) {
                    breaches.push(format!(
                        "{}: resumed decision sequence != reference",
                        tag(trip)
                    ));
                }
                // Progress: spent + reused equals the restart cost exactly.
                let reused = resumed_sub.resume_stats().reused_cost;
                let paid = resumed.run.total_cost + reused;
                let restart = reference.run.total_cost;
                if (paid - restart).abs() > 1e-9 * restart.abs().max(1.0) {
                    breaches.push(format!(
                        "{}: spent+reused {paid} != restart cost {restart}",
                        tag(trip)
                    ));
                }
                match resumed.run.outcome {
                    ExecutionOutcome::Completed { .. } => cells[ci].1.completed += 1,
                    ExecutionOutcome::Degraded { .. } => cells[ci].1.degraded += 1,
                    _ => cells[ci].1.exhausted += 1,
                }
                cells[ci].1.events += usize::from(reused > 0.0);
            }
        }
    }
    ran
}

/// Server block: boot the full `pb-server` stack with **all four** server
/// fault sites armed (worker-panic, slow-client, queue-stall,
/// client-disconnect) plus finite tenant budgets, drive a multi-tenant
/// request mix over real TCP with reconnect-on-disconnect clients, then
/// drain. Invariants: the server never goes down, every accepted request is
/// answered, `failed` outcomes are exactly the contained worker panics,
/// no tenant ever exceeds its budget, and drain leaves nothing queued or in
/// flight.
fn server_scenarios(
    seed: u64,
    breaches: &mut Vec<String>,
    cells: &mut Vec<(String, Cell)>,
) -> usize {
    use std::time::Duration;

    use pb_server::{PbClient, PbServer, Request, Response, ServerConfig};

    let submit_one = |addr: std::net::SocketAddr, req: &Request| -> Result<u64, String> {
        for _ in 0..500 {
            let Ok(mut c) = PbClient::connect(addr) else {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            };
            match c.submit(req) {
                Ok(Ok(id)) => return Ok(id),
                Ok(Err(Response::Rejected { .. })) => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(Err(other)) => return Err(format!("unexpected submit reply: {other:?}")),
                // Dropped by the disconnect fault before the reply: the
                // request may have been admitted server-side; resubmitting
                // is safe (both copies are answered and accounted).
                Err(_) => {}
            }
        }
        Err("submission never accepted".into())
    };
    let poll_done = |addr: std::net::SocketAddr, id: u64| -> Result<String, String> {
        for _ in 0..500 {
            let Ok(mut c) = PbClient::connect(addr) else {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            };
            // On Err the connection dropped mid-poll; reconnect and retry.
            if let Ok(r) = c.wait(id, Duration::from_secs(30)) {
                return Ok(r.outcome);
            }
        }
        Err(format!("request {id} never reached a terminal state"))
    };

    let mut ran = 0usize;
    for (label, faults, tenant_cap) in [
        ("clean", FaultPlan::none(), f64::INFINITY),
        (
            "faulted",
            FaultPlan::new(seed ^ 0x5E)
                .with(FaultKind::WorkerPanic, Trigger::Nth(3))
                .with(FaultKind::SlowClient { ms: 5 }, Trigger::Every(7))
                .with(FaultKind::QueueStall { ms: 5 }, Trigger::Every(5))
                .with(FaultKind::ClientDisconnect, Trigger::Nth(11)),
            1.5e6,
        ),
    ] {
        let ci = cell_of(cells, format!("server:{label}"));
        let tag = |what: &str| format!("server/{label}: {what}");
        let server = match PbServer::start(ServerConfig {
            workers: 2,
            queue_cap: 3,
            tenant_cap,
            faults,
            ..ServerConfig::default()
        }) {
            Ok(s) => s,
            Err(e) => {
                breaches.push(tag(&format!("failed to start: {e}")));
                continue;
            }
        };
        let addr = server.addr();

        let mut rng = seed ^ 0x5EC7;
        let requests = 12;
        for i in 0..requests {
            ran += 1;
            cells[ci].1.scenarios += 1;
            let frac = unit_f64(splitmix64(&mut rng)).clamp(0.02, 0.98);
            // A couple of zero-deadline submissions per server exercise the
            // cancelled rung alongside the fault mix.
            let deadline_ms = (i % 6 == 5).then_some(0);
            let req = Request::Submit {
                tenant: format!("tenant-{}", i % 3),
                workload: "EQ_1D".into(),
                fractions: vec![frac],
                optimized: i % 2 == 1,
                resume: false,
                deadline_ms,
            };
            let outcome = submit_one(addr, &req).and_then(|id| poll_done(addr, id));
            match outcome.as_deref() {
                Ok("completed") => cells[ci].1.completed += 1,
                Ok("degraded") => cells[ci].1.degraded += 1,
                Ok("budget-exhausted") | Ok("cancelled") => cells[ci].1.exhausted += 1,
                Ok("failed") if label == "faulted" => cells[ci].1.events += 1,
                Ok(other) => breaches.push(tag(&format!("request ended `{other}`"))),
                Err(e) => breaches.push(tag(e)),
            }
        }

        // The server survived the whole mix: a fresh connection still works.
        match PbClient::connect(addr).and_then(|mut c| c.request(&Request::Ping)) {
            Ok(Response::Pong) => {}
            other => breaches.push(tag(&format!("unresponsive after mix: {other:?}"))),
        }

        let stats = server.stop();
        let answered = stats.completed
            + stats.degraded
            + stats.budget_exhausted
            + stats.cancelled
            + stats.failed;
        if answered != stats.accepted {
            breaches.push(tag(&format!(
                "accepted {} but answered {answered}",
                stats.accepted
            )));
        }
        if stats.queue_depth != 0 || stats.inflight != 0 {
            breaches.push(tag(&format!(
                "drain left queue_depth={} inflight={}",
                stats.queue_depth, stats.inflight
            )));
        }
        if stats.failed != stats.worker_panics {
            breaches.push(tag(&format!(
                "{} failed outcomes vs {} contained panics — \
                 a request failed for a non-injected reason",
                stats.failed, stats.worker_panics
            )));
        }
        for (tenant, spent, cap) in &stats.tenants {
            if *cap >= 0.0 && *spent > cap * (1.0 + 1e-9) {
                breaches.push(tag(&format!("tenant {tenant} over cap: {spent} > {cap}")));
            }
        }
        if label == "faulted" {
            if stats.worker_panics == 0 {
                breaches.push(tag("worker-panic fault never fired"));
            }
            if stats.workers_replaced == 0 {
                breaches.push(tag("poisoned worker was never replaced"));
            }
        } else if stats.worker_panics != 0 || stats.failed != 0 {
            breaches.push(tag("clean server recorded failures"));
        }
    }
    ran
}

/// Engine-level block: tuple and vectorized execution under engine-side
/// faults (operator failure, ledger over-charge, spill-free paths), checking
/// panic-freedom, cost bounds and inert bit-identity.
fn engine_scenarios(
    seed: u64,
    breaches: &mut Vec<String>,
    cells: &mut Vec<(String, Cell)>,
) -> usize {
    let w = eq_1d();
    let db = match Database::generate(&w.catalog, seed ^ 0xD0, &[]) {
        Ok(db) => db,
        Err(e) => {
            breaches.push(format!("engine: data generation failed: {e}"));
            return 0;
        }
    };
    let engine = Engine::new(&db, &w.query, &w.model.p);
    let qe = w.ess.point_at_fractions(&[0.5]);
    let plan = w.optimizer().optimize(&qe).plan;

    let fault_kinds: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "operator-failure",
            FaultPlan::new(seed).with(
                FaultKind::OperatorFailure { waste_frac: 0.5 },
                Trigger::Nth(1 + seed % 64),
            ),
        ),
        (
            "ledger-overcharge",
            FaultPlan::new(seed ^ 9).with(
                FaultKind::LedgerOverCharge { factor: 2.0 },
                Trigger::Every(7),
            ),
        ),
        (
            "operator-storm",
            FaultPlan::new(seed ^ 10).with(
                FaultKind::OperatorFailure { waste_frac: 1.0 },
                Trigger::PerMille(5),
            ),
        ),
    ];

    let mut ran = 0usize;
    let reference = engine.execute(&plan.root, f64::INFINITY);
    let ref_cost = reference.cost();
    for (label, fp) in &fault_kinds {
        for vectorized in [false, true] {
            let path = if vectorized { "vec" } else { "tuple" };
            let key = format!("engine:{label}|{path}");
            let ci = cell_of(cells, key);
            for bi in 0..5u32 {
                ran += 1;
                cells[ci].1.scenarios += 1;
                let budget = if bi == 4 {
                    f64::INFINITY
                } else {
                    ref_cost * f64::from(bi + 1) / 4.0
                };
                let tag = || format!("engine/{label}/{path}/budget#{bi}");
                let faults = FaultInjector::new(fp);
                let exec = || {
                    if vectorized {
                        engine.execute_with_faults(&plan.root, budget, &faults)
                    } else {
                        engine.execute_tuple_with(&plan.root, budget, &faults)
                    }
                };
                let out = match catch_unwind(AssertUnwindSafe(exec)) {
                    Ok(o) => o,
                    Err(_) => {
                        breaches.push(format!("{}: PANIC", tag()));
                        continue;
                    }
                };
                if out.completed() {
                    cells[ci].1.completed += 1;
                } else if out.error().is_some() {
                    cells[ci].1.degraded += 1;
                } else {
                    cells[ci].1.exhausted += 1;
                }
                // Faulted/aborted runs never report spend beyond the budget
                // they were granted (over-charge only inflates the ledger up
                // to the abort point, which budget enforcement still caps).
                if budget.is_finite() && out.cost() > budget * (1.0 + 1e-9) {
                    breaches.push(format!(
                        "{}: spent {} over budget {budget}",
                        tag(),
                        out.cost()
                    ));
                }
                // Inert plan ⇒ bit-identical to the fault-free call.
                if fp.is_empty() {
                    let bare = if vectorized {
                        engine.execute(&plan.root, budget)
                    } else {
                        engine.execute_tuple(&plan.root, budget)
                    };
                    if json(&out.cost()) != json(&bare.cost())
                        || out.completed() != bare.completed()
                    {
                        breaches.push(format!("{}: inert engine run diverged", tag()));
                    }
                }
            }
        }
    }
    ran
}

/// Parallel-engine block: the vectorized path with morsel-driven kernels at
/// several worker counts, under engine-side faults (operator failure,
/// ledger over-charge, storms) and a spill-wrapped plan, with the morsel
/// gate lowered so the parallel kernels engage at chaos scale. The
/// invariant is total: for every (plan, fault plan, budget, worker count),
/// the parallel engine must produce an `EngineOutcome` *bit-identical* to
/// the serial engine's under an identically-seeded injector — faults
/// included, because the coordinator replays the serial ledger event
/// sequence no matter how many workers computed the batches.
fn parallel_engine_scenarios(
    seed: u64,
    breaches: &mut Vec<String>,
    cells: &mut Vec<(String, Cell)>,
) -> usize {
    use pb_cost::Parallelism;

    let w = eq_1d();
    let db = match Database::generate(&w.catalog, seed ^ 0xD0, &[]) {
        Ok(db) => db,
        Err(e) => {
            breaches.push(format!("engine-par: data generation failed: {e}"));
            return 0;
        }
    };
    // Morsel gate lowered to a handful of batches so tiny chaos relations
    // exercise the parallel kernels; gating is outcome-neutral by design.
    let mk = |workers: usize| {
        Engine::new(&db, &w.query, &w.model.p)
            .with_parallelism(Parallelism::new(workers))
            .with_morsel_threshold(64)
    };
    let serial = Engine::new(&db, &w.query, &w.model.p);
    let qe = w.ess.point_at_fractions(&[0.5]);
    let root = w.optimizer().optimize(&qe).plan.root;
    let plans = [("plain", root.clone()), ("spilled", root.spilled())];

    let fault_kinds: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "operator-failure",
            FaultPlan::new(seed).with(
                FaultKind::OperatorFailure { waste_frac: 0.5 },
                Trigger::Nth(1 + seed % 64),
            ),
        ),
        (
            "ledger-overcharge",
            FaultPlan::new(seed ^ 9).with(
                FaultKind::LedgerOverCharge { factor: 2.0 },
                Trigger::Every(7),
            ),
        ),
        (
            "operator-storm",
            FaultPlan::new(seed ^ 10).with(
                FaultKind::OperatorFailure { waste_frac: 1.0 },
                Trigger::PerMille(5),
            ),
        ),
    ];

    let mut ran = 0usize;
    for (pname, plan) in &plans {
        let ref_cost = serial.execute(plan, f64::INFINITY).cost();
        for (label, fp) in &fault_kinds {
            for workers in [1usize, 2, 4] {
                let eng = mk(workers);
                let key = format!("engine-par:{label}|{pname}x{workers}");
                let ci = cell_of(cells, key);
                for bi in 0..5u32 {
                    ran += 1;
                    cells[ci].1.scenarios += 1;
                    let budget = if bi == 4 {
                        f64::INFINITY
                    } else {
                        ref_cost * f64::from(bi + 1) / 4.0
                    };
                    let tag = || format!("engine-par/{label}/{pname}/{workers}w/budget#{bi}");
                    let reference = {
                        let faults = FaultInjector::new(fp);
                        serial.execute_with_faults(plan, budget, &faults)
                    };
                    let out = {
                        let faults = FaultInjector::new(fp);
                        match catch_unwind(AssertUnwindSafe(|| {
                            eng.execute_with_faults(plan, budget, &faults)
                        })) {
                            Ok(o) => o,
                            Err(_) => {
                                breaches.push(format!("{}: PANIC", tag()));
                                continue;
                            }
                        }
                    };
                    if out != reference {
                        breaches.push(format!(
                            "{}: parallel outcome != serial (cost {} vs {})",
                            tag(),
                            out.cost(),
                            reference.cost()
                        ));
                    }
                    if out.completed() {
                        cells[ci].1.completed += 1;
                    } else if out.error().is_some() {
                        cells[ci].1.degraded += 1;
                    } else {
                        cells[ci].1.exhausted += 1;
                    }
                }
            }
        }
    }
    ran
}
