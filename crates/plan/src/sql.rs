//! A small SQL front-end for SPJ(+aggregate, +NOT EXISTS) queries.
//!
//! Parses the dialect the paper's queries live in (compare Figure 1's EQ):
//!
//! ```sql
//! SELECT * FROM lineitem, orders, part
//! WHERE p_partkey = l_partkey
//!   AND l_orderkey = o_orderkey
//!   AND p_retailprice < 1000?
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query      := SELECT (STAR | COUNT(*)) FROM from_list WHERE conj
//!               [GROUP BY colref (, colref)*]
//! from_list  := table [AS alias] (, table [AS alias])*
//! conj       := pred (AND pred)*
//! pred       := colref CMP colref            -- equi-join
//!             | colref CMP number [?]        -- selection
//!             | colref BETWEEN number AND number [?]
//!             | NOT EXISTS '(' SELECT STAR FROM table [AS alias]
//!                              WHERE colref = colref ')' [?]
//! colref     := [alias .] column
//! ```
//!
//! A trailing `?` marks the predicate **error-prone**: its selectivity
//! becomes an ESS dimension (numbered in appearance order) instead of a
//! compile-time estimate. Unmarked predicates receive AVI estimates from
//! the catalog statistics — exactly the split the bouquet technique
//! prescribes.

use std::fmt;

use pb_catalog::Catalog;

use crate::query::{CmpOp, QueryBuilder, QuerySpec, SelSpec};

/// Parse error with byte position context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub near: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (near `{}`)", self.message, self.near)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Lt,
    Gt,
    Eq,
    Question,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                out.push(Tok::Star);
                chars.next();
            }
            ',' => {
                out.push(Tok::Comma);
                chars.next();
            }
            '.' => {
                out.push(Tok::Dot);
                chars.next();
            }
            '(' => {
                out.push(Tok::LParen);
                chars.next();
            }
            ')' => {
                out.push(Tok::RParen);
                chars.next();
            }
            '<' => {
                out.push(Tok::Lt);
                chars.next();
            }
            '>' => {
                out.push(Tok::Gt);
                chars.next();
            }
            '=' => {
                out.push(Tok::Eq);
                chars.next();
            }
            '?' => {
                out.push(Tok::Question);
                chars.next();
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                chars.next();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || d == '-'
                        || d == '+'
                    {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(input.len());
                let text = &input[start..end];
                let v: f64 = text.parse().map_err(|_| ParseError {
                    message: "bad number".into(),
                    near: text.into(),
                })?;
                out.push(Tok::Number(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                chars.next();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(input.len());
                out.push(Tok::Ident(input[start..end].to_string()));
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character `{c}`"),
                    near: input[i..].chars().take(12).collect(),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            near: format!("{:?}", self.toks.get(self.pos)),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => {
                self.pos -= 1;
                Err(self.err(format!("expected {kw}")))
            }
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos -= 1;
                Err(self.err("expected identifier"))
            }
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Tok::Number(v)) => Ok(v),
            _ => {
                self.pos -= 1;
                Err(self.err("expected number"))
            }
        }
    }
}

/// A parsed column reference: optional qualifier + column name.
#[derive(Debug, Clone)]
struct ColRef {
    qualifier: Option<String>,
    column: String,
}

/// Resolve a column reference against the FROM list (alias, table-name).
fn resolve(
    catalog: &Catalog,
    from: &[(String, String)],
    c: &ColRef,
) -> Result<(usize, String), ParseError> {
    let candidates: Vec<usize> = from
        .iter()
        .enumerate()
        .filter(|(_, (alias, table))| {
            if let Some(q) = &c.qualifier {
                if !q.eq_ignore_ascii_case(alias) {
                    return false;
                }
            }
            catalog
                .table(table)
                .is_some_and(|t| t.column(&c.column).is_some())
        })
        .map(|(i, _)| i)
        .collect();
    match candidates.len() {
        1 => Ok((candidates[0], c.column.clone())),
        0 => Err(ParseError {
            message: format!("column `{}` not found in FROM list", c.column),
            near: c.column.clone(),
        }),
        _ => Err(ParseError {
            message: format!("column `{}` is ambiguous; qualify it", c.column),
            near: c.column.clone(),
        }),
    }
}

/// AVI estimates for unmarked predicates (the native optimizer's defaults).
fn estimate_selection(
    catalog: &Catalog,
    table: &str,
    col: &str,
    op: CmpOp,
    c1: f64,
    c2: f64,
) -> f64 {
    let stats = &catalog.table(table).unwrap().column(col).unwrap().stats;
    match op {
        CmpOp::Eq => stats.eq_selectivity(),
        CmpOp::Lt => stats.lt_selectivity(c1),
        CmpOp::Gt => 1.0 - stats.lt_selectivity(c1),
        CmpOp::Between => stats.range_selectivity(c2, c1),
    }
    .clamp(1e-9, 1.0)
}

fn estimate_join(catalog: &Catalog, lt: &str, lc: &str, rt: &str, rc: &str) -> f64 {
    let ndv = |t: &str, c: &str| {
        catalog
            .table(t)
            .unwrap()
            .column(c)
            .unwrap()
            .stats
            .ndv
            .max(1.0)
    };
    (1.0 / ndv(lt, lc).max(ndv(rt, rc))).clamp(1e-12, 1.0)
}

/// Parse `sql` into a [`QuerySpec`]. Returns the spec and the number of
/// error-prone dimensions found (`?`-marked predicates, in order).
pub fn parse(catalog: &Catalog, sql: &str) -> Result<QuerySpec, ParseError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };

    p.keyword("SELECT")?;
    // COUNT(*) or *
    let counted = if p.try_keyword("COUNT") {
        match (p.next(), p.next(), p.next()) {
            (Some(Tok::LParen), Some(Tok::Star), Some(Tok::RParen)) => true,
            _ => return Err(p.err("expected COUNT(*)")),
        }
    } else {
        match p.next() {
            Some(Tok::Star) => false,
            _ => return Err(p.err("expected * or COUNT(*)")),
        }
    };
    let _ = counted; // COUNT(*) without GROUP BY is a single group; noted.

    p.keyword("FROM")?;
    let mut from: Vec<(String, String)> = Vec::new(); // (alias, table)
    loop {
        let table = p.ident()?;
        if catalog.table(&table).is_none() {
            return Err(ParseError {
                message: format!("unknown table `{table}`"),
                near: table,
            });
        }
        let alias = if p.try_keyword("AS") {
            p.ident()?
        } else {
            table.clone()
        };
        from.push((alias, table));
        if !matches!(p.peek(), Some(Tok::Comma)) {
            break;
        }
        p.next();
    }

    p.keyword("WHERE")?;
    let mut qb = QueryBuilder::new(catalog, "sql-query");
    let rels: Vec<usize> = from
        .iter()
        .map(|(alias, table)| qb.rel_aliased(table, alias))
        .collect();
    let mut next_dim = 0usize;

    loop {
        // NOT EXISTS subquery?
        if p.try_keyword("NOT") {
            p.keyword("EXISTS")?;
            match p.next() {
                Some(Tok::LParen) => {}
                _ => return Err(p.err("expected ( after NOT EXISTS")),
            }
            p.keyword("SELECT")?;
            match p.next() {
                Some(Tok::Star) => {}
                _ => return Err(p.err("expected * in subquery")),
            }
            p.keyword("FROM")?;
            let sub_table = p.ident()?;
            if catalog.table(&sub_table).is_none() {
                return Err(ParseError {
                    message: format!("unknown table `{sub_table}`"),
                    near: sub_table,
                });
            }
            let sub_alias = if p.try_keyword("AS") {
                p.ident()?
            } else {
                sub_table.clone()
            };
            p.keyword("WHERE")?;
            let a = parse_colref(&mut p)?;
            match p.next() {
                Some(Tok::Eq) => {}
                _ => return Err(p.err("expected = in subquery predicate")),
            }
            let b = parse_colref(&mut p)?;
            match p.next() {
                Some(Tok::RParen) => {}
                _ => return Err(p.err("expected ) closing subquery")),
            }
            let marked = matches!(p.peek(), Some(Tok::Question));
            if marked {
                p.next();
            }
            // One side resolves in the subquery scope, the other outside.
            let sub_scope = vec![(sub_alias.clone(), sub_table.clone())];
            let (inner_ref, outer_ref) = if resolve(catalog, &sub_scope, &a).is_ok() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let (_, inner_col) = resolve(catalog, &sub_scope, inner_ref)?;
            let (outer_rel, outer_col) = resolve(catalog, &from, outer_ref)?;
            let sub_rel = qb.rel_aliased(&sub_table, &sub_alias);
            let sel = if marked {
                let d = next_dim;
                next_dim += 1;
                SelSpec::ErrorProne(d)
            } else {
                SelSpec::Fixed(estimate_join(
                    catalog,
                    &from[outer_rel].1,
                    &outer_col,
                    &sub_table,
                    &inner_col,
                ))
            };
            qb.anti_join(rels[outer_rel], &outer_col, sub_rel, &inner_col, sel);
        } else {
            let lhs = parse_colref(&mut p)?;
            // BETWEEN?
            if p.try_keyword("BETWEEN") {
                let lo = p.number()?;
                p.keyword("AND")?;
                let hi = p.number()?;
                let marked = matches!(p.peek(), Some(Tok::Question));
                if marked {
                    p.next();
                }
                let (rel, col) = resolve(catalog, &from, &lhs)?;
                let sel = if marked {
                    let d = next_dim;
                    next_dim += 1;
                    SelSpec::ErrorProne(d)
                } else {
                    SelSpec::Fixed(estimate_selection(
                        catalog,
                        &from[rel].1,
                        &col,
                        CmpOp::Between,
                        hi,
                        lo,
                    ))
                };
                qb.select_between(rels[rel], &col, lo, hi, sel);
            } else {
                let op = match p.next() {
                    Some(Tok::Lt) => CmpOp::Lt,
                    Some(Tok::Gt) => CmpOp::Gt,
                    Some(Tok::Eq) => CmpOp::Eq,
                    _ => return Err(p.err("expected comparison operator")),
                };
                match p.peek() {
                    Some(Tok::Number(_)) => {
                        let v = p.number()?;
                        let marked = matches!(p.peek(), Some(Tok::Question));
                        if marked {
                            p.next();
                        }
                        let (rel, col) = resolve(catalog, &from, &lhs)?;
                        let sel = if marked {
                            let d = next_dim;
                            next_dim += 1;
                            SelSpec::ErrorProne(d)
                        } else {
                            SelSpec::Fixed(estimate_selection(
                                catalog,
                                &from[rel].1,
                                &col,
                                op,
                                v,
                                f64::MIN,
                            ))
                        };
                        qb.select(rels[rel], &col, op, v, sel);
                    }
                    None => return Err(p.err("expected number or column after comparison")),
                    _ => {
                        if op != CmpOp::Eq {
                            return Err(p.err("join predicates must use ="));
                        }
                        let rhs = parse_colref(&mut p)?;
                        let marked = matches!(p.peek(), Some(Tok::Question));
                        if marked {
                            p.next();
                        }
                        let (lr, lc) = resolve(catalog, &from, &lhs)?;
                        let (rr, rc) = resolve(catalog, &from, &rhs)?;
                        let sel = if marked {
                            let d = next_dim;
                            next_dim += 1;
                            SelSpec::ErrorProne(d)
                        } else {
                            SelSpec::Fixed(estimate_join(
                                catalog,
                                &from[lr].1,
                                &lc,
                                &from[rr].1,
                                &rc,
                            ))
                        };
                        qb.join(rels[lr], &lc, rels[rr], &rc, sel);
                    }
                }
            }
        }
        if !p.try_keyword("AND") {
            break;
        }
    }

    // Optional GROUP BY.
    if p.try_keyword("GROUP") {
        p.keyword("BY")?;
        loop {
            let c = parse_colref(&mut p)?;
            let (rel, col) = resolve(catalog, &from, &c)?;
            qb.group_by(rels[rel], &col);
            if !matches!(p.peek(), Some(Tok::Comma)) {
                break;
            }
            p.next();
        }
    }

    if p.peek().is_some() {
        return Err(p.err("trailing input"));
    }
    Ok(qb.build())
}

fn parse_colref(p: &mut Parser) -> Result<ColRef, ParseError> {
    let first = p.ident()?;
    if matches!(p.peek(), Some(Tok::Dot)) {
        p.next();
        let column = p.ident()?;
        Ok(ColRef {
            qualifier: Some(first),
            column,
        })
    } else {
        Ok(ColRef {
            qualifier: None,
            column: first,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;

    #[test]
    fn parses_the_papers_eq_query() {
        let cat = tpch::catalog(1.0);
        let q = parse(
            &cat,
            "SELECT * FROM lineitem, orders, part \
             WHERE p_partkey = l_partkey AND l_orderkey = o_orderkey \
             AND p_retailprice < 1000?",
        )
        .unwrap();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.num_dims, 1);
        // The marked predicate became dim 0; joins are fixed AVI estimates.
        assert!(q.joins.iter().all(|j| j.selectivity.error_dim().is_none()));
        let sel = &q.relations[2].selections[0];
        assert_eq!(sel.selectivity.error_dim(), Some(0));
        assert_eq!(sel.op, CmpOp::Lt);
    }

    #[test]
    fn marked_joins_become_dims_in_order() {
        let cat = tpch::catalog(1.0);
        let q = parse(
            &cat,
            "SELECT * FROM part, lineitem, orders \
             WHERE p_partkey = l_partkey? AND l_orderkey = o_orderkey?",
        )
        .unwrap();
        assert_eq!(q.num_dims, 2);
        assert_eq!(q.joins[0].selectivity.error_dim(), Some(0));
        assert_eq!(q.joins[1].selectivity.error_dim(), Some(1));
    }

    #[test]
    fn aliases_and_qualified_columns() {
        let cat = tpch::catalog(1.0);
        let q = parse(
            &cat,
            "SELECT * FROM nation AS n1, supplier AS s, customer AS c, nation AS n2 \
             WHERE n1.n_nationkey = s.s_nationkey AND s.s_suppkey > 10 \
             AND c.c_nationkey = n2.n_nationkey AND c.c_acctbal < 0? \
             AND s.s_nationkey = c.c_nationkey",
        )
        .unwrap();
        assert_eq!(q.num_relations(), 4);
        assert_eq!(q.relations[0].alias, "n1");
        assert_eq!(q.relations[3].alias, "n2");
        assert_eq!(q.num_dims, 1);
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let cat = tpch::catalog(1.0);
        let err = parse(
            &cat,
            "SELECT * FROM nation AS a, nation AS b WHERE n_nationkey = n_regionkey",
        )
        .unwrap_err();
        assert!(err.message.contains("ambiguous"), "{err}");
    }

    #[test]
    fn not_exists_becomes_anti_join() {
        let cat = tpch::catalog(1.0);
        let q = parse(
            &cat,
            "SELECT * FROM part, lineitem WHERE p_partkey = l_partkey \
             AND NOT EXISTS (SELECT * FROM partsupp WHERE ps_partkey = p_partkey)?",
        )
        .unwrap();
        assert_eq!(q.num_relations(), 3);
        let anti = q.joins.iter().find(|j| j.anti).expect("anti edge");
        assert_eq!(anti.selectivity.error_dim(), Some(0));
    }

    #[test]
    fn between_and_group_by() {
        let cat = tpch::catalog(1.0);
        let q = parse(
            &cat,
            "SELECT COUNT(*) FROM part, lineitem \
             WHERE p_partkey = l_partkey? AND p_size BETWEEN 5 AND 10 \
             GROUP BY p_brand",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        let between = &q.relations[0].selections[0];
        assert_eq!(between.op, CmpOp::Between);
        assert_eq!(between.constant2, 5.0);
        assert_eq!(between.constant, 10.0);
        // Fixed estimate ≈ 6/50 for p_size in [1,50].
        if let SelSpec::Fixed(v) = between.selectivity {
            assert!((v - 0.1).abs() < 0.05, "{v}");
        } else {
            panic!("unmarked BETWEEN should be fixed");
        }
    }

    #[test]
    fn error_messages_are_located() {
        let cat = tpch::catalog(1.0);
        for (sql, frag) in [
            ("SELECT * FROM nosuch WHERE a = b", "unknown table"),
            ("SELECT * FROM part WHERE p_zzz < 3", "not found"),
            (
                "SELECT * FROM part WHERE p_size < ",
                "expected number or column",
            ),
            ("FROM part", "expected SELECT"),
            (
                "SELECT * FROM part WHERE p_size < 3 GROUP p_brand",
                "expected BY",
            ),
            (
                "SELECT * FROM part WHERE p_size < 3 EXTRA",
                "trailing input",
            ),
        ] {
            let err = parse(&cat, sql).unwrap_err();
            assert!(err.message.contains(frag), "{sql}: {err}");
        }
    }
}
