//! Join graphs over relation indices: connectivity, subgraph enumeration and
//! the chain/star/branch shape taxonomy of the paper's Table 2.

use serde::{Deserialize, Serialize};

/// Geometry of a join graph, per the paper's workload description (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphShape {
    /// Every vertex has degree ≤ 2 and the graph is a path.
    Chain,
    /// One hub joined to all other relations.
    Star,
    /// A tree that is neither a chain nor a star.
    Branch,
    /// Contains a cycle.
    Cyclic,
}

/// Undirected join graph over `n` relations, represented with adjacency
/// bitmasks (the optimizer's DP requires `n <= 32`; the paper's queries use
/// 4–8 relations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGraph {
    n: usize,
    adj: Vec<u32>,
    edges: Vec<(usize, usize)>,
}

impl JoinGraph {
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        assert!(n <= 32, "join graphs limited to 32 relations");
        let mut adj = vec![0u32; n];
        for &(u, v) in &edges {
            assert!(u < n && v < n && u != v, "bad edge ({u},{v})");
            adj[u] |= 1 << v;
            adj[v] |= 1 << u;
        }
        JoinGraph { n, adj, edges }
    }

    pub fn num_relations(&self) -> usize {
        self.n
    }

    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Bitmask of neighbours of vertex `v`.
    pub fn neighbours(&self, v: usize) -> u32 {
        self.adj[v]
    }

    /// Bitmask of neighbours of any vertex in `set`.
    pub fn neighbours_of_set(&self, set: u32) -> u32 {
        let mut out = 0u32;
        let mut s = set;
        while s != 0 {
            let v = s.trailing_zeros() as usize;
            out |= self.adj[v];
            s &= s - 1;
        }
        out & !set
    }

    /// Whether the vertex subset `set` induces a connected subgraph.
    pub fn is_subset_connected(&self, set: u32) -> bool {
        if set == 0 {
            return false;
        }
        let start = set.trailing_zeros();
        let mut seen = 1u32 << start;
        loop {
            let grow = self.neighbours_of_set(seen) & set;
            if grow == 0 {
                break;
            }
            seen |= grow;
        }
        seen == set
    }

    /// Whether the full graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        self.is_subset_connected(((1u64 << self.n) - 1) as u32)
    }

    /// Whether any edge crosses between disjoint subsets `a` and `b`.
    pub fn connects(&self, a: u32, b: u32) -> bool {
        self.neighbours_of_set(a) & b != 0
    }

    /// Classify the graph shape (assumes connectivity).
    pub fn shape(&self) -> GraphShape {
        if self.edges.len() >= self.n {
            return GraphShape::Cyclic;
        }
        let degrees: Vec<usize> = (0..self.n)
            .map(|v| self.adj[v].count_ones() as usize)
            .collect();
        let max_deg = degrees.iter().copied().max().unwrap_or(0);
        if max_deg <= 2 {
            GraphShape::Chain
        } else if max_deg == self.n - 1 && self.n > 2 {
            GraphShape::Star
        } else {
            GraphShape::Branch
        }
    }

    /// Build a chain 0–1–2–…–(n−1).
    pub fn chain(n: usize) -> Self {
        JoinGraph::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect())
    }

    /// Build a star with hub 0.
    pub fn star(n: usize) -> Self {
        JoinGraph::new(n, (1..n).map(|i| (0, i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = JoinGraph::chain(6);
        assert!(g.is_connected());
        assert_eq!(g.shape(), GraphShape::Chain);
    }

    #[test]
    fn star_shape() {
        let g = JoinGraph::star(5);
        assert!(g.is_connected());
        assert_eq!(g.shape(), GraphShape::Star);
    }

    #[test]
    fn branch_shape() {
        // 0-1-2 with 1-3, 3-4: vertex 1 and 3 have degree >2 / tree, not star.
        let g = JoinGraph::new(5, vec![(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(g.shape(), GraphShape::Branch);
    }

    #[test]
    fn cyclic_shape() {
        let g = JoinGraph::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.shape(), GraphShape::Cyclic);
    }

    #[test]
    fn subset_connectivity() {
        let g = JoinGraph::chain(4); // 0-1-2-3
        assert!(g.is_subset_connected(0b0011));
        assert!(g.is_subset_connected(0b0111));
        assert!(!g.is_subset_connected(0b0101)); // {0,2} not adjacent
        assert!(!g.is_subset_connected(0));
    }

    #[test]
    fn connects_detects_cross_edges() {
        let g = JoinGraph::chain(4);
        assert!(g.connects(0b0011, 0b0100)); // {0,1} to {2} via 1-2
        assert!(!g.connects(0b0001, 0b0100)); // {0} to {2}
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = JoinGraph::new(4, vec![(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn two_relation_graph_is_chain() {
        assert_eq!(JoinGraph::chain(2).shape(), GraphShape::Chain);
    }
}
