//! Physical plan trees.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

use pb_catalog::{Catalog, ColumnId};
use serde::{Deserialize, Serialize};

use crate::query::{QuerySpec, RelIdx};

/// Stable structural identity of a plan, used to recognise "the same plan"
/// at different selectivity locations during POSP generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlanFingerprint(pub u64);

/// A node of a physical operator tree. Join nodes reference the query's join
/// predicates by index (`edges`); the first edge is the primary join key
/// (hash key / merge key / index-lookup key), any remaining edges are applied
/// as residual predicates.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub enum PlanNode {
    /// Full sequential scan; all the relation's selections applied on the fly.
    SeqScan { rel: RelIdx },
    /// B-tree index scan using selection `sel_idx` as the index condition;
    /// the relation's other selections are applied as residual filters.
    IndexScan { rel: RelIdx, sel_idx: usize },
    /// Full scan through an index to obtain tuples ordered on `column`
    /// (useful as a sort-avoiding input to a merge join).
    FullIndexScan { rel: RelIdx, column: ColumnId },
    /// Classic hybrid hash join; `build` is hashed, `probe` streams.
    HashJoin {
        build: Box<PlanNode>,
        probe: Box<PlanNode>,
        edges: Vec<usize>,
    },
    /// Sort-merge join. `sort_left` / `sort_right` record whether an explicit
    /// sort is required on that input (the optimizer omits the sort when the
    /// input already delivers the merge order).
    SortMergeJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        edges: Vec<usize>,
        sort_left: bool,
        sort_right: bool,
    },
    /// Index nested-loops join: for every outer tuple, probe the inner base
    /// relation's index on the join column. The inner relation's selections
    /// are applied as residuals after each lookup.
    IndexNLJoin {
        outer: Box<PlanNode>,
        inner_rel: RelIdx,
        edges: Vec<usize>,
    },
    /// Block nested-loops join (no index requirement; quadratic I/O).
    BlockNLJoin {
        outer: Box<PlanNode>,
        inner: Box<PlanNode>,
        edges: Vec<usize>,
    },
    /// Hash aggregation over the query's `group_by` columns (COUNT per
    /// group). Always the plan root; its output is never consumed by
    /// another operator.
    HashAggregate { input: Box<PlanNode> },
    /// Hash anti-join (NOT EXISTS): emit `left` rows with no key match in
    /// `right`. Output cardinality *decreases* as the match selectivity
    /// grows — the PCM-violating operator of the paper's Section 2.
    AntiJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        edges: Vec<usize>,
    },
    /// Bouquet spill directive (Section 5.3): execute the input subtree,
    /// count its output tuples, and discard them — deliberately breaking the
    /// pipeline just above the first error-prone node so the entire cost
    /// budget is spent on selectivity learning.
    Spill { input: Box<PlanNode> },
    /// Hash semi-join (EXISTS): emit `left` rows with at least one key match
    /// in `right`. Output grows monotonically with the match selectivity
    /// (saturating at the left cardinality), so it is PCM-clean.
    ///
    /// NOTE: this variant is deliberately declared *last*. [`PlanNode`]
    /// derives `Hash`, and plan fingerprints feed persisted bouquets and
    /// golden traces — appending keeps every pre-existing variant's
    /// discriminant (and hence every legacy fingerprint) unchanged.
    SemiJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        edges: Vec<usize>,
    },
}

impl PlanNode {
    /// Child subtrees, outer/left first.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::SeqScan { .. }
            | PlanNode::IndexScan { .. }
            | PlanNode::FullIndexScan { .. } => vec![],
            PlanNode::HashJoin { build, probe, .. } => vec![build, probe],
            PlanNode::SortMergeJoin { left, right, .. } => vec![left, right],
            PlanNode::AntiJoin { left, right, .. } | PlanNode::SemiJoin { left, right, .. } => {
                vec![left, right]
            }
            PlanNode::IndexNLJoin { outer, .. } => vec![outer],
            PlanNode::BlockNLJoin { outer, inner, .. } => vec![outer, inner],
            PlanNode::HashAggregate { input } | PlanNode::Spill { input } => vec![input],
        }
    }

    /// Join-predicate indices applied at this node (empty for scans).
    pub fn edges(&self) -> &[usize] {
        match self {
            PlanNode::HashJoin { edges, .. }
            | PlanNode::SortMergeJoin { edges, .. }
            | PlanNode::IndexNLJoin { edges, .. }
            | PlanNode::BlockNLJoin { edges, .. }
            | PlanNode::AntiJoin { edges, .. }
            | PlanNode::SemiJoin { edges, .. } => edges,
            _ => &[],
        }
    }

    /// Bitmask of the relations covered by this subtree.
    pub fn rels_mask(&self) -> u32 {
        match self {
            PlanNode::SeqScan { rel }
            | PlanNode::IndexScan { rel, .. }
            | PlanNode::FullIndexScan { rel, .. } => 1 << rel,
            PlanNode::IndexNLJoin {
                outer, inner_rel, ..
            } => outer.rels_mask() | (1 << inner_rel),
            _ => self.children().iter().fold(0, |m, c| m | c.rels_mask()),
        }
    }

    /// Preorder visit of every node in the subtree.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of operator nodes in the subtree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Depth of this operator tree.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Error-prone dimensions referenced anywhere in this subtree (through
    /// join edges or scan selections), in ascending order.
    pub fn error_dims(&self, query: &QuerySpec) -> Vec<usize> {
        let mut dims = Vec::new();
        self.visit(&mut |n| {
            for &e in n.edges() {
                if let Some(d) = query.joins[e].selectivity.error_dim() {
                    dims.push(d);
                }
            }
            if let PlanNode::SeqScan { rel }
            | PlanNode::IndexScan { rel, .. }
            | PlanNode::FullIndexScan { rel, .. } = n
            {
                for s in &query.relations[*rel].selections {
                    if let Some(d) = s.selectivity.error_dim() {
                        dims.push(d);
                    }
                }
            }
            if let PlanNode::IndexNLJoin { inner_rel, .. } = n {
                for s in &query.relations[*inner_rel].selections {
                    if let Some(d) = s.selectivity.error_dim() {
                        dims.push(d);
                    }
                }
            }
        });
        dims.sort_unstable();
        dims.dedup();
        dims
    }

    /// Depth (distance from this root) at which error dimension `d` is first
    /// applied; `None` if the subtree never references it. Deeper is better
    /// for the AxisPlans heuristic (Section 5.1): a deep error node means the
    /// budget is not wasted on error-free upstream work.
    pub fn error_dim_depth(&self, query: &QuerySpec, d: usize) -> Option<usize> {
        fn applies_here(n: &PlanNode, query: &QuerySpec, d: usize) -> bool {
            if n.edges()
                .iter()
                .any(|&e| query.joins[e].selectivity.error_dim() == Some(d))
            {
                return true;
            }
            let scan_rel = match n {
                PlanNode::SeqScan { rel }
                | PlanNode::IndexScan { rel, .. }
                | PlanNode::FullIndexScan { rel, .. } => Some(*rel),
                PlanNode::IndexNLJoin { inner_rel, .. } => Some(*inner_rel),
                _ => None,
            };
            scan_rel.is_some_and(|r| {
                query.relations[r]
                    .selections
                    .iter()
                    .any(|s| s.selectivity.error_dim() == Some(d))
            })
        }
        fn go(n: &PlanNode, query: &QuerySpec, d: usize, depth: usize) -> Option<usize> {
            let deepest_child = n
                .children()
                .iter()
                .filter_map(|c| go(c, query, d, depth + 1))
                .max();
            deepest_child.or_else(|| applies_here(n, query, d).then_some(depth))
        }
        go(self, query, d, 0)
    }

    /// Structural fingerprint (stable within a process run and across runs of
    /// the same binary — plan identity in POSP sets, diagrams and bouquets).
    pub fn fingerprint(&self) -> PlanFingerprint {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        PlanFingerprint(h.finish())
    }

    /// Wrap this subtree in a [`PlanNode::Spill`] directive.
    pub fn spilled(self) -> PlanNode {
        PlanNode::Spill {
            input: Box::new(self),
        }
    }

    /// Subtrees along the first-executed chain: the nodes reached by
    /// repeatedly descending into the first-executed child (`children()[0]`
    /// — the build side of a hash join, the left input of a merge or anti
    /// join, the outer of a nested-loops join), returned deepest-first with
    /// the full plan last. Every operator evaluates its first child to
    /// completion before doing its own work, so a budget-limited execution
    /// completes exactly the chain subtrees whose cost fits the spend —
    /// these are the checkpointable prefixes used by the substrate
    /// checkpoint/resume contract.
    pub fn exec_chain(&self) -> Vec<&PlanNode> {
        let mut chain = Vec::new();
        let mut node = self;
        loop {
            chain.push(node);
            match node.children().first() {
                Some(c) => node = c,
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Pretty-print an EXPLAIN-style operator tree.
    pub fn explain(&self, query: &QuerySpec, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.explain_into(query, catalog, 0, &mut out);
        out
    }

    fn explain_into(&self, query: &QuerySpec, catalog: &Catalog, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let rel_name = |r: RelIdx| -> &str { &query.relations[r].alias };
        let col_name = |c: ColumnId| -> String {
            let t = catalog.table_by_id(c.table);
            t.columns[c.column as usize].name.clone()
        };
        let edge_desc = |edges: &[usize]| -> String {
            edges
                .iter()
                .map(|&e| {
                    let j = &query.joins[e];
                    let op = match j.op {
                        crate::query::CmpOp::Lt => "<",
                        crate::query::CmpOp::Gt => ">",
                        _ => "=",
                    };
                    format!(
                        "{}.{} {op} {}.{}",
                        rel_name(j.left_rel),
                        col_name(j.left_col),
                        rel_name(j.right_rel),
                        col_name(j.right_col)
                    )
                })
                .collect::<Vec<_>>()
                .join(" AND ")
        };
        match self {
            PlanNode::SeqScan { rel } => {
                let _ = writeln!(out, "{pad}SeqScan({})", rel_name(*rel));
            }
            PlanNode::IndexScan { rel, sel_idx } => {
                let s = &query.relations[*rel].selections[*sel_idx];
                let _ = writeln!(
                    out,
                    "{pad}IndexScan({} on {})",
                    rel_name(*rel),
                    col_name(s.column)
                );
            }
            PlanNode::FullIndexScan { rel, column } => {
                let _ = writeln!(
                    out,
                    "{pad}FullIndexScan({} ordered by {})",
                    rel_name(*rel),
                    col_name(*column)
                );
            }
            PlanNode::HashJoin {
                build,
                probe,
                edges,
            } => {
                let _ = writeln!(out, "{pad}HashJoin [{}]", edge_desc(edges));
                build.explain_into(query, catalog, indent + 1, out);
                probe.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::SortMergeJoin {
                left,
                right,
                edges,
                sort_left,
                sort_right,
            } => {
                let s = match (sort_left, sort_right) {
                    (true, true) => " (sort both)",
                    (true, false) => " (sort left)",
                    (false, true) => " (sort right)",
                    (false, false) => "",
                };
                let _ = writeln!(out, "{pad}MergeJoin{s} [{}]", edge_desc(edges));
                left.explain_into(query, catalog, indent + 1, out);
                right.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::IndexNLJoin {
                outer,
                inner_rel,
                edges,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexNLJoin -> {} [{}]",
                    rel_name(*inner_rel),
                    edge_desc(edges)
                );
                outer.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::BlockNLJoin {
                outer,
                inner,
                edges,
            } => {
                let _ = writeln!(out, "{pad}BlockNLJoin [{}]", edge_desc(edges));
                outer.explain_into(query, catalog, indent + 1, out);
                inner.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::AntiJoin { left, right, edges } => {
                let _ = writeln!(out, "{pad}AntiJoin (NOT EXISTS) [{}]", edge_desc(edges));
                left.explain_into(query, catalog, indent + 1, out);
                right.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::SemiJoin { left, right, edges } => {
                let _ = writeln!(out, "{pad}SemiJoin (EXISTS) [{}]", edge_desc(edges));
                left.explain_into(query, catalog, indent + 1, out);
                right.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::HashAggregate { input } => {
                let groups: Vec<String> = query
                    .group_by
                    .iter()
                    .map(|&(r, c)| format!("{}.{}", rel_name(r), col_name(c)))
                    .collect();
                let _ = writeln!(out, "{pad}HashAggregate [{}]", groups.join(", "));
                input.explain_into(query, catalog, indent + 1, out);
            }
            PlanNode::Spill { input } => {
                let _ = writeln!(out, "{pad}Spill (discard output)");
                input.explain_into(query, catalog, indent + 1, out);
            }
        }
    }
}

/// A complete physical plan: a root node plus its cached fingerprint.
///
/// Serialization round-trips through the bare [`PlanNode`]: the fingerprint
/// is recomputed on load, so persisted bouquets stay valid even if the
/// hashing implementation changes between builds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "PlanNode", into = "PlanNode")]
pub struct PhysicalPlan {
    pub root: PlanNode,
    fingerprint: PlanFingerprint,
}

impl From<PhysicalPlan> for PlanNode {
    fn from(p: PhysicalPlan) -> PlanNode {
        p.root
    }
}

impl PhysicalPlan {
    pub fn new(root: PlanNode) -> Self {
        let fingerprint = root.fingerprint();
        PhysicalPlan { root, fingerprint }
    }

    pub fn fingerprint(&self) -> PlanFingerprint {
        self.fingerprint
    }
}

impl From<PlanNode> for PhysicalPlan {
    fn from(root: PlanNode) -> Self {
        PhysicalPlan::new(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, QueryBuilder, SelSpec};
    use pb_catalog::tpch;

    fn eq_query() -> (pb_catalog::Catalog, QuerySpec) {
        let cat = tpch::catalog(0.1);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        (cat, q)
    }

    fn sample_plan() -> PlanNode {
        // (part IXS ⋈HJ lineitem) ⋈INL orders
        PlanNode::IndexNLJoin {
            outer: Box::new(PlanNode::HashJoin {
                build: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            }),
            inner_rel: 2,
            edges: vec![1],
        }
    }

    #[test]
    fn rels_mask_covers_all_relations() {
        assert_eq!(sample_plan().rels_mask(), 0b111);
    }

    #[test]
    fn fingerprint_stable_and_structure_sensitive() {
        let a = sample_plan();
        let b = sample_plan();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn error_dims_collects_join_and_selection_dims() {
        let (_, q) = eq_query();
        let dims = sample_plan().error_dims(&q);
        assert_eq!(dims, vec![0, 1]);
    }

    #[test]
    fn error_dim_depth_prefers_deepest_occurrence() {
        let (_, q) = eq_query();
        let p = sample_plan();
        // dim 0 (selection on part) sits at the IndexScan leaf: depth 2.
        assert_eq!(p.error_dim_depth(&q, 0), Some(2));
        // dim 1 (p⋈l edge) is applied at the hash join: depth 1.
        assert_eq!(p.error_dim_depth(&q, 1), Some(1));
        // dim 7 never appears.
        assert_eq!(p.error_dim_depth(&q, 7), None);
    }

    #[test]
    fn size_and_depth() {
        let p = sample_plan();
        assert_eq!(p.size(), 4);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.clone().spilled().size(), 5);
    }

    #[test]
    fn exec_chain_follows_first_executed_child() {
        let p = sample_plan();
        let chain = p.exec_chain();
        // IndexScan leaf first, then the hash join (build side), then root.
        assert_eq!(chain.len(), 3);
        assert!(matches!(chain[0], PlanNode::IndexScan { rel: 0, .. }));
        assert!(matches!(chain[1], PlanNode::HashJoin { .. }));
        assert!(matches!(chain[2], PlanNode::IndexNLJoin { .. }));
        assert_eq!(chain[2].fingerprint(), p.fingerprint());
        // A shared prefix fingerprints identically from a different root.
        let other = PlanNode::SortMergeJoin {
            left: Box::new(chain[1].clone()),
            right: Box::new(PlanNode::SeqScan { rel: 2 }),
            edges: vec![1],
            sort_left: true,
            sort_right: true,
        };
        assert_eq!(other.exec_chain()[1].fingerprint(), chain[1].fingerprint());
    }

    #[test]
    fn explain_renders_tree() {
        let (cat, q) = eq_query();
        let text = sample_plan().explain(&q, &cat);
        assert!(text.contains("IndexNLJoin -> orders"));
        assert!(text.contains("HashJoin"));
        assert!(text.contains("IndexScan(part on p_retailprice)"));
    }

    #[test]
    fn spill_wraps_and_explains() {
        let (cat, q) = eq_query();
        let text = sample_plan().spilled().explain(&q, &cat);
        assert!(text.starts_with("Spill"));
    }
}
