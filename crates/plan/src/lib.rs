//! Query specifications, join graphs and physical plan trees.
//!
//! A [`QuerySpec`] is a select-project-join query over a `pb-catalog`
//! catalog: a set of base relations, selection predicates, and equi-join
//! edges. Every predicate's selectivity is either *fixed* (estimated from
//! statistics, assumed reliable) or *error-prone* — an axis of the paper's
//! error-prone selectivity space (ESS) whose true value is only discovered
//! at run time.
//!
//! A [`PhysicalPlan`] is an operator tree over a query: scans (sequential or
//! index), joins (hash, sort-merge, index / block nested-loops) and the
//! bouquet-specific spill directive of Section 5.3. Plans carry a stable
//! structural [`fingerprint`](PhysicalPlan::fingerprint) so the POSP
//! machinery can identify "the same plan" across selectivity locations.

pub mod graph;
pub mod plan;
pub mod query;
pub mod sql;

pub use graph::{GraphShape, JoinGraph};
pub use plan::{PhysicalPlan, PlanFingerprint, PlanNode};
pub use query::{
    CmpOp, DimId, DimKind, JoinPredicate, QueryBuilder, QuerySpec, RelIdx, RelationRef, SelSpec,
    SelectionPredicate,
};
pub use sql::{parse as parse_sql, ParseError};
