//! Select-project-join query specifications with error-prone selectivities.

use pb_catalog::{Catalog, ColumnId, TableId};
use serde::{Deserialize, Serialize};

use crate::graph::JoinGraph;

/// Index of a relation within a [`QuerySpec`] (not a catalog table id — the
/// same table may appear under several aliases).
pub type RelIdx = usize;

/// Index of an error-prone selectivity dimension within the query's ESS.
pub type DimId = usize;

/// The *kind* of plan site an error-prone selectivity dimension is bound
/// to. The paper's ESS only ever prices selection and PK–FK join
/// selectivities; the typed model makes the binding explicit so the stack
/// can express (and validate) axes with different cost/observation
/// semantics:
///
/// * [`DimKind::Selection`] — a base-relation filter predicate.
/// * [`DimKind::PkFkJoin`] — an equi-join match density.
/// * [`DimKind::InequalityJoin`] — a non-equi (`<`/`>`) join pair density;
///   only nested-loop operators can evaluate it.
/// * [`DimKind::AntiJoin`] — a NOT EXISTS match density. PCM-violating in
///   raw form (output shrinks as it grows); run under the axis flip.
/// * [`DimKind::SemiJoin`] — an EXISTS match density (output saturates at
///   the left cardinality but grows monotonically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DimKind {
    #[default]
    Selection,
    PkFkJoin,
    InequalityJoin,
    AntiJoin,
    SemiJoin,
}

impl DimKind {
    /// Short lowercase label used in reports and docs.
    pub fn label(self) -> &'static str {
        match self {
            DimKind::Selection => "selection",
            DimKind::PkFkJoin => "pk-fk-join",
            DimKind::InequalityJoin => "inequality-join",
            DimKind::AntiJoin => "anti-join",
            DimKind::SemiJoin => "semi-join",
        }
    }
}

impl std::fmt::Display for DimKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a predicate's selectivity is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelSpec {
    /// Trusted compile-time estimate (error-free dimension).
    Fixed(f64),
    /// Error-prone: the value is an ESS coordinate, injected at run time.
    /// This is the paper's "selectivity injection" (Section 4.2).
    ErrorProne(DimId),
    /// Error-prone with a *reversed* axis: the predicate's actual
    /// selectivity is `pivot / coordinate`, so a plan cost that decreases
    /// with the raw selectivity (existential operators — paper, Section 2)
    /// becomes increasing in the ESS coordinate. This is the paper's
    /// "(1 − s) instead of s on the selectivity axes" remedy, realized
    /// geometrically (the grids are log-scale, so the reflection is
    /// multiplicative).
    Flipped { dim: DimId, pivot: f64 },
}

impl SelSpec {
    /// Resolve against an ESS location `q` (absolute selectivities per dim).
    #[inline]
    pub fn resolve(&self, q: &[f64]) -> f64 {
        match *self {
            SelSpec::Fixed(s) => s,
            SelSpec::ErrorProne(d) => q[d],
            SelSpec::Flipped { dim, pivot } => (pivot / q[dim]).clamp(0.0, 1.0),
        }
    }

    pub fn error_dim(&self) -> Option<DimId> {
        match *self {
            SelSpec::Fixed(_) => None,
            SelSpec::ErrorProne(d) => Some(d),
            SelSpec::Flipped { dim, .. } => Some(dim),
        }
    }

    /// Map a *raw* (actual) selectivity into the ESS coordinate this spec's
    /// dimension uses — the inverse of [`SelSpec::resolve`] along the
    /// error axis. Identity for plain error-prone dims; the multiplicative
    /// reflection `pivot / s` for flipped (anti-join) axes. Callers clamp
    /// the result into the dimension's `[lo, hi]` box.
    #[inline]
    pub fn to_coordinate(&self, raw: f64) -> f64 {
        match *self {
            SelSpec::Flipped { pivot, .. } => pivot / raw.max(f64::MIN_POSITIVE),
            _ => raw,
        }
    }
}

/// Comparison operator of a selection predicate (and, for `Eq`/`Lt`/`Gt`,
/// of a join predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CmpOp {
    #[default]
    Eq,
    Lt,
    Gt,
    /// `lo <= col <= hi`; the engine uses `constant` as `hi` and
    /// `constant2` as `lo`.
    Between,
}

/// A selection predicate `column op constant` on a base relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionPredicate {
    pub column: ColumnId,
    pub op: CmpOp,
    pub constant: f64,
    pub constant2: f64,
    pub selectivity: SelSpec,
}

/// A join predicate `left.col op right.col` between two relations.
///
/// The default shape (`op == Eq`, `anti == semi == false`) is the plain
/// equi-join. With `anti == true` the edge is a NOT EXISTS (anti-join): the
/// left side keeps the tuples with *no* match on the right. The selectivity
/// parameter is still the match density `|matches| / (|L|·|R|)`, but the
/// operator's output — and hence downstream cost — *decreases* as it grows:
/// the PCM-breaking case of the paper's Section 2. With `semi == true` the
/// edge is an EXISTS (semi-join): the left side keeps the tuples with at
/// least one right match, which is monotone-increasing in the density.
/// With `op` of `Lt`/`Gt` the edge is an inequality join (`left.col op
/// right.col`); only nested-loop operators can evaluate it, and its
/// selectivity is the fraction of cross-product pairs satisfying the
/// comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinPredicate {
    pub left_rel: RelIdx,
    pub left_col: ColumnId,
    pub right_rel: RelIdx,
    pub right_col: ColumnId,
    pub selectivity: SelSpec,
    #[serde(default)]
    pub anti: bool,
    #[serde(default)]
    pub semi: bool,
    #[serde(default)]
    pub op: CmpOp,
}

impl JoinPredicate {
    /// The two relations this edge connects.
    pub fn rels(&self) -> (RelIdx, RelIdx) {
        (self.left_rel, self.right_rel)
    }

    /// The join column on relation `rel`, if the edge touches it.
    pub fn col_on(&self, rel: RelIdx) -> Option<ColumnId> {
        if self.left_rel == rel {
            Some(self.left_col)
        } else if self.right_rel == rel {
            Some(self.right_col)
        } else {
            None
        }
    }

    /// Whether the comparison is an equality (hash/merge/index operators
    /// apply). Anti/semi edges are equality membership tests, so they count.
    pub fn is_equi(&self) -> bool {
        self.op == CmpOp::Eq
    }

    /// Whether the edge is existential (anti or semi): its right relation
    /// hangs off the core join tree and is applied on top as a filter.
    pub fn existential(&self) -> bool {
        self.anti || self.semi
    }

    /// The typed dimension kind this edge binds (regardless of whether its
    /// selectivity is error-prone).
    pub fn dim_kind(&self) -> DimKind {
        if self.anti {
            DimKind::AntiJoin
        } else if self.semi {
            DimKind::SemiJoin
        } else if self.op != CmpOp::Eq {
            DimKind::InequalityJoin
        } else {
            DimKind::PkFkJoin
        }
    }
}

/// A base-relation occurrence in the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationRef {
    pub table: TableId,
    pub alias: String,
    pub selections: Vec<SelectionPredicate>,
}

/// A select-project-join query with designated error-prone selectivities,
/// optionally aggregated (`GROUP BY` + COUNT) at the top.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    pub name: String,
    pub relations: Vec<RelationRef>,
    pub joins: Vec<JoinPredicate>,
    /// Number of error-prone dimensions (D of the ESS).
    pub num_dims: usize,
    /// Grouping columns; empty = no aggregation. The optimizer places a
    /// hash aggregate above the join tree when non-empty.
    #[serde(default)]
    pub group_by: Vec<(RelIdx, ColumnId)>,
}

impl QuerySpec {
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The join graph over relation indices.
    pub fn join_graph(&self) -> JoinGraph {
        JoinGraph::new(
            self.relations.len(),
            self.joins.iter().map(|j| j.rels()).collect(),
        )
    }

    /// All predicates (selections and joins) tagged with the given error dim.
    /// Returns `(rel, Some(sel_idx))` for selections and the joining rels for
    /// join predicates via `JoinDimRef`.
    pub fn dims_of_joins(&self) -> Vec<Option<DimId>> {
        self.joins
            .iter()
            .map(|j| j.selectivity.error_dim())
            .collect()
    }

    /// The typed kind of error dimension `d`, derived from the predicate it
    /// is bound to: selections are [`DimKind::Selection`]; join edges carry
    /// their own kind ([`JoinPredicate::dim_kind`]). `None` when no
    /// predicate references `d`. If several predicates share the dimension
    /// the join edge's kind wins (join kinds drive operator-specific
    /// observation; shared selection dims stay plain selections).
    pub fn dim_kind(&self, d: DimId) -> Option<DimKind> {
        if let Some(j) = self
            .joins
            .iter()
            .find(|j| j.selectivity.error_dim() == Some(d))
        {
            return Some(j.dim_kind());
        }
        self.relations
            .iter()
            .flat_map(|r| &r.selections)
            .find(|s| s.selectivity.error_dim() == Some(d))
            .map(|_| DimKind::Selection)
    }

    /// The selectivity spec binding error dimension `d` (the join edge's if
    /// one exists, mirroring [`QuerySpec::dim_kind`]).
    pub fn spec_for_dim(&self, d: DimId) -> Option<SelSpec> {
        if let Some(j) = self
            .joins
            .iter()
            .find(|j| j.selectivity.error_dim() == Some(d))
        {
            return Some(j.selectivity);
        }
        self.relations
            .iter()
            .flat_map(|r| &r.selections)
            .find(|s| s.selectivity.error_dim() == Some(d))
            .map(|s| s.selectivity)
    }

    /// Whether dimension `d` is referenced by any predicate (sanity check).
    pub fn references_dim(&self, d: DimId) -> bool {
        self.joins
            .iter()
            .any(|j| j.selectivity.error_dim() == Some(d))
            || self.relations.iter().any(|r| {
                r.selections
                    .iter()
                    .any(|s| s.selectivity.error_dim() == Some(d))
            })
    }

    /// Validate internal consistency against a catalog; panics on structural
    /// errors (used by workload constructors and tests).
    pub fn validate(&self, catalog: &Catalog) {
        assert!(!self.relations.is_empty(), "query has no relations");
        for (i, r) in self.relations.iter().enumerate() {
            let t = catalog.table_by_id(r.table);
            for s in &r.selections {
                assert_eq!(
                    s.column.table, r.table,
                    "selection on rel {i} references a foreign table"
                );
                assert!(
                    (s.column.column as usize) < t.columns.len(),
                    "selection column out of range"
                );
            }
        }
        for j in &self.joins {
            assert!(j.left_rel < self.relations.len() && j.right_rel < self.relations.len());
            assert_ne!(j.left_rel, j.right_rel, "self-join edge");
            assert_eq!(j.left_col.table, self.relations[j.left_rel].table);
            assert_eq!(j.right_col.table, self.relations[j.right_rel].table);
            assert!(
                !(j.anti && j.semi),
                "a join edge cannot be both anti and semi"
            );
            assert!(
                !j.existential() || j.op == CmpOp::Eq,
                "anti/semi edges are equality membership tests"
            );
            assert!(
                matches!(j.op, CmpOp::Eq | CmpOp::Lt | CmpOp::Gt),
                "join comparison must be Eq, Lt or Gt"
            );
        }
        assert!(
            self.join_graph().is_connected(),
            "join graph must be connected"
        );
        for d in 0..self.num_dims {
            assert!(self.references_dim(d), "dimension {d} unused");
        }
    }
}

/// Convenience builder used by the workload definitions.
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    spec: QuerySpec,
}

impl<'a> QueryBuilder<'a> {
    pub fn new(catalog: &'a Catalog, name: impl Into<String>) -> Self {
        QueryBuilder {
            catalog,
            spec: QuerySpec {
                name: name.into(),
                relations: Vec::new(),
                joins: Vec::new(),
                num_dims: 0,
                group_by: Vec::new(),
            },
        }
    }

    /// Add a base relation by table name; the alias defaults to the name.
    pub fn rel(&mut self, table: &str) -> RelIdx {
        self.rel_aliased(table, table)
    }

    pub fn rel_aliased(&mut self, table: &str, alias: &str) -> RelIdx {
        let t = self
            .catalog
            .table(table)
            .unwrap_or_else(|| panic!("unknown table {table}"));
        self.spec.relations.push(RelationRef {
            table: t.id,
            alias: alias.to_string(),
            selections: Vec::new(),
        });
        self.spec.relations.len() - 1
    }

    /// Add a selection predicate on `rel.column`.
    pub fn select(
        &mut self,
        rel: RelIdx,
        column: &str,
        op: CmpOp,
        constant: f64,
        sel: SelSpec,
    ) -> &mut Self {
        let table = self.spec.relations[rel].table;
        let col = self
            .catalog
            .table_by_id(table)
            .column(column)
            .unwrap_or_else(|| panic!("unknown column {column}"))
            .id;
        self.track_dim(sel);
        self.spec.relations[rel]
            .selections
            .push(SelectionPredicate {
                column: col,
                op,
                constant,
                // Unused except by CmpOp::Between (see `select_between`); kept
                // finite so plans serialize cleanly to JSON.
                constant2: f64::MIN,
                selectivity: sel,
            });
        self
    }

    /// Aggregate the result, grouping on `rel.column` (COUNT per group).
    pub fn group_by(&mut self, rel: RelIdx, column: &str) -> &mut Self {
        let table = self.spec.relations[rel].table;
        let col = self
            .catalog
            .table_by_id(table)
            .column(column)
            .unwrap_or_else(|| panic!("unknown column {column}"))
            .id;
        self.spec.group_by.push((rel, col));
        self
    }

    /// Add a range predicate `lo <= rel.column <= hi`.
    pub fn select_between(
        &mut self,
        rel: RelIdx,
        column: &str,
        lo: f64,
        hi: f64,
        sel: SelSpec,
    ) -> &mut Self {
        let table = self.spec.relations[rel].table;
        let col = self
            .catalog
            .table_by_id(table)
            .column(column)
            .unwrap_or_else(|| panic!("unknown column {column}"))
            .id;
        self.track_dim(sel);
        self.spec.relations[rel]
            .selections
            .push(SelectionPredicate {
                column: col,
                op: CmpOp::Between,
                constant: hi,
                constant2: lo,
                selectivity: sel,
            });
        self
    }

    /// Add an equi-join edge `l.lcol = r.rcol`.
    pub fn join(
        &mut self,
        l: RelIdx,
        lcol: &str,
        r: RelIdx,
        rcol: &str,
        sel: SelSpec,
    ) -> &mut Self {
        let lcid = self
            .catalog
            .table_by_id(self.spec.relations[l].table)
            .column(lcol)
            .unwrap_or_else(|| panic!("unknown column {lcol}"))
            .id;
        let rcid = self
            .catalog
            .table_by_id(self.spec.relations[r].table)
            .column(rcol)
            .unwrap_or_else(|| panic!("unknown column {rcol}"))
            .id;
        self.track_dim(sel);
        self.spec.joins.push(JoinPredicate {
            left_rel: l,
            left_col: lcid,
            right_rel: r,
            right_col: rcid,
            selectivity: sel,
            anti: false,
            semi: false,
            op: CmpOp::Eq,
        });
        self
    }

    /// Add an anti-join edge: keep `l` rows with no `r` match on
    /// `l.lcol = r.rcol` (NOT EXISTS). The relation `r` must hang off the
    /// query exclusively through this edge.
    pub fn anti_join(
        &mut self,
        l: RelIdx,
        lcol: &str,
        r: RelIdx,
        rcol: &str,
        sel: SelSpec,
    ) -> &mut Self {
        self.join(l, lcol, r, rcol, sel);
        self.spec.joins.last_mut().unwrap().anti = true;
        self
    }

    /// Add a semi-join edge: keep `l` rows with at least one `r` match on
    /// `l.lcol = r.rcol` (EXISTS). The relation `r` must hang off the query
    /// exclusively through this edge.
    pub fn semi_join(
        &mut self,
        l: RelIdx,
        lcol: &str,
        r: RelIdx,
        rcol: &str,
        sel: SelSpec,
    ) -> &mut Self {
        self.join(l, lcol, r, rcol, sel);
        self.spec.joins.last_mut().unwrap().semi = true;
        self
    }

    /// Add an inequality-join edge `l.lcol op r.rcol` (`op` of `Lt`/`Gt`).
    /// Only nested-loop operators can evaluate the edge, so it is always a
    /// residual or BNL predicate in physical plans.
    pub fn ineq_join(
        &mut self,
        l: RelIdx,
        lcol: &str,
        op: CmpOp,
        r: RelIdx,
        rcol: &str,
        sel: SelSpec,
    ) -> &mut Self {
        assert!(
            matches!(op, CmpOp::Lt | CmpOp::Gt),
            "inequality join requires Lt or Gt"
        );
        self.join(l, lcol, r, rcol, sel);
        self.spec.joins.last_mut().unwrap().op = op;
        self
    }

    fn track_dim(&mut self, sel: SelSpec) {
        if let Some(d) = sel.error_dim() {
            self.spec.num_dims = self.spec.num_dims.max(d + 1);
        }
    }

    /// Rewrite every predicate's selectivity spec (used by the axis-flip
    /// remedy for PCM-violating dimensions).
    pub fn rewrite_specs(spec: &mut QuerySpec, f: impl Fn(&SelSpec) -> SelSpec) {
        for r in &mut spec.relations {
            for s in &mut r.selections {
                s.selectivity = f(&s.selectivity);
            }
        }
        for j in &mut spec.joins {
            j.selectivity = f(&j.selectivity);
        }
    }

    /// Finish, validating against the catalog.
    pub fn build(self) -> QuerySpec {
        self.spec.validate(self.catalog);
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;

    fn three_way() -> (Catalog, QuerySpec) {
        let cat = tpch::catalog(0.1);
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        (cat, q)
    }

    #[test]
    fn builder_produces_connected_query() {
        let (_, q) = three_way();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.num_dims, 1);
        assert!(q.join_graph().is_connected());
    }

    #[test]
    fn selspec_resolution() {
        let q = [0.25, 0.5];
        assert_eq!(SelSpec::Fixed(0.1).resolve(&q), 0.1);
        assert_eq!(SelSpec::ErrorProne(1).resolve(&q), 0.5);
        assert_eq!(SelSpec::ErrorProne(0).error_dim(), Some(0));
        assert_eq!(SelSpec::Fixed(0.1).error_dim(), None);
    }

    #[test]
    fn references_dim_sees_selections_and_joins() {
        let (_, q) = three_way();
        assert!(q.references_dim(0));
        assert!(!q.references_dim(1));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_join_graph_rejected() {
        let cat = tpch::catalog(0.1);
        let mut qb = QueryBuilder::new(&cat, "bad");
        let _p = qb.rel("part");
        let _l = qb.rel("lineitem");
        qb.build();
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_column_rejected() {
        let cat = tpch::catalog(0.1);
        let mut qb = QueryBuilder::new(&cat, "bad");
        let p = qb.rel("part");
        qb.select(p, "no_such_col", CmpOp::Lt, 0.0, SelSpec::Fixed(0.1));
    }

    #[test]
    fn join_predicate_col_on() {
        let (_, q) = three_way();
        let j = &q.joins[0];
        assert!(j.col_on(j.left_rel).is_some());
        assert!(j.col_on(99).is_none());
    }
}
