//! Registry of the benchmark suite (the paper's Table 2) plus auxiliary
//! workloads, addressable by name.

use pb_bouquet::Workload;
use pb_plan::GraphShape;

use crate::{hostile::*, tpcds_queries::*, tpch_queries::*};

/// Static description of one Table 2 entry.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    pub name: &'static str,
    pub shape: GraphShape,
    pub relations: usize,
    pub dims: usize,
    /// The paper's reported C_max/C_min (Table 2) — our calibration target.
    pub paper_cost_ratio: f64,
}

/// The ten benchmark error spaces of Table 2, in the paper's order.
pub fn specs() -> Vec<WorkloadSpec> {
    use GraphShape::*;
    vec![
        WorkloadSpec {
            name: "3D_H_Q5",
            shape: Chain,
            relations: 6,
            dims: 3,
            paper_cost_ratio: 16.0,
        },
        WorkloadSpec {
            name: "3D_H_Q7",
            shape: Chain,
            relations: 6,
            dims: 3,
            paper_cost_ratio: 5.0,
        },
        WorkloadSpec {
            name: "4D_H_Q8",
            shape: Branch,
            relations: 8,
            dims: 4,
            paper_cost_ratio: 28.0,
        },
        WorkloadSpec {
            name: "5D_H_Q7",
            shape: Chain,
            relations: 6,
            dims: 5,
            paper_cost_ratio: 50.0,
        },
        WorkloadSpec {
            name: "3D_DS_Q15",
            shape: Chain,
            relations: 4,
            dims: 3,
            paper_cost_ratio: 668.0,
        },
        WorkloadSpec {
            name: "3D_DS_Q96",
            shape: Star,
            relations: 4,
            dims: 3,
            paper_cost_ratio: 185.0,
        },
        WorkloadSpec {
            name: "4D_DS_Q7",
            shape: Star,
            relations: 5,
            dims: 4,
            paper_cost_ratio: 283.0,
        },
        WorkloadSpec {
            name: "4D_DS_Q26",
            shape: Star,
            relations: 5,
            dims: 4,
            paper_cost_ratio: 341.0,
        },
        WorkloadSpec {
            name: "4D_DS_Q91",
            shape: Branch,
            relations: 7,
            dims: 4,
            paper_cost_ratio: 149.0,
        },
        WorkloadSpec {
            name: "5D_DS_Q19",
            shape: Branch,
            relations: 6,
            dims: 5,
            paper_cost_ratio: 183.0,
        },
    ]
}

/// Instantiate the full Table 2 suite.
pub fn benchmark_suite() -> Vec<Workload> {
    vec![
        h_q5_3d(),
        h_q7_3d(),
        h_q8_4d(),
        h_q7_5d(),
        ds_q15_3d(),
        ds_q96_3d(),
        ds_q7_4d(),
        ds_q26_4d(),
        ds_q91_4d(),
        ds_q19_5d(),
    ]
}

/// Look up any workload (benchmark suite + auxiliaries) by name.
pub fn by_name(name: &str) -> Option<Workload> {
    match name {
        "EQ_1D" => Some(eq_1d()),
        "2D_H_Q8A" => Some(h_q8a_2d(0.01)),
        "3D_H_Q5" => Some(h_q5_3d()),
        "3D_H_Q7" => Some(h_q7_3d()),
        "4D_H_Q8" => Some(h_q8_4d()),
        "5D_H_Q7" => Some(h_q7_5d()),
        "3D_DS_Q15" => Some(ds_q15_3d()),
        "3D_DS_Q96" => Some(ds_q96_3d()),
        "4D_DS_Q7" => Some(ds_q7_4d()),
        "4D_DS_Q26" => Some(ds_q26_4d()),
        "4D_DS_Q91" => Some(ds_q91_4d()),
        "5D_DS_Q19" => Some(ds_q19_5d()),
        "ANTI_2D" => Some(anti_2d()),
        "3D_H_Q5B" => Some(h_q5b_3d_com()),
        "4D_H_Q8B" => Some(h_q8b_4d_com()),
        "HOSTILE_INEQ_2D" => Some(hostile_ineq_2d(0.01)),
        "HOSTILE_ANTI_2D" => Some(hostile_anti_2d(0.01)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_specs() {
        let suite = benchmark_suite();
        let specs = specs();
        assert_eq!(suite.len(), specs.len());
        for (w, s) in suite.iter().zip(&specs) {
            assert_eq!(w.name, s.name);
            assert_eq!(w.query.join_graph().shape(), s.shape, "{}", s.name);
            assert_eq!(w.query.num_relations(), s.relations, "{}", s.name);
            assert_eq!(w.d(), s.dims, "{}", s.name);
        }
    }

    #[test]
    fn by_name_resolves_all_specs() {
        for s in specs() {
            assert!(by_name(s.name).is_some(), "{} missing", s.name);
        }
        assert!(by_name("EQ_1D").is_some());
        assert!(by_name("HOSTILE_INEQ_2D").is_some());
        assert!(by_name("HOSTILE_ANTI_2D").is_some());
        assert!(by_name("nope").is_none());
    }
}
