//! The paper's benchmark error-selectivity spaces (Table 2).
//!
//! Queries are named `xD_y_Qz`: `x` error-prone dimensions, `y` the
//! benchmark (H = TPC-H at 1 GB, DS = TPC-DS at 100 GB), `z` the benchmark
//! query number. Each constructor reproduces the paper's join-graph geometry
//! (chain / star / branch with the stated relation count) and declares the
//! same number of error-prone join-selectivity dimensions; the ESS ranges
//! are calibrated so the cost gradient C_max/C_min is in the neighbourhood
//! of the paper's Table 2 values.
//!
//! Also provided: the 1D introductory example `EQ` (Figures 1–4), the
//! run-time experiment query `2D_H_Q8A` (Table 3), the commercial-engine
//! variants `3D_H_Q5B` / `4D_H_Q8B` whose error dimensions are selection
//! predicates (Section 6.8), and the hostile typed-dimension spaces
//! `HOSTILE_INEQ_2D` / `HOSTILE_ANTI_2D` (inequality-join and anti-join
//! axes).

pub mod from_sql;
pub mod hostile;
pub mod random;
pub mod registry;
pub mod tpcds_queries;
pub mod tpch_queries;

pub use from_sql::{derive_ess, workload_from_sql};
pub use hostile::{hostile_anti_2d, hostile_ineq_2d};
pub use random::{random_workload, RandomConfig};
pub use registry::{benchmark_suite, by_name, specs, WorkloadSpec};
pub use tpcds_queries::*;
pub use tpch_queries::*;
