//! Randomized SPJ workload generation over the TPC-H schema.
//!
//! The paper's evaluation uses ten handcrafted error spaces; to gain
//! confidence that the bouquet machinery is not overfitted to them, this
//! module draws random connected join trees from TPC-H's foreign-key graph,
//! marks random joins error-prone, and sprinkles random selections. Stress
//! tests then assert the full pipeline (identification → discovery →
//! guarantee) on every draw.

use pb_bouquet::Workload;
use pb_catalog::tpch;
use pb_cost::{CostModel, Ess, EssDim};
use pb_plan::{CmpOp, QueryBuilder, SelSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Relations in the join tree (2..=8).
    pub relations: usize,
    /// Error-prone join dimensions (≤ relations − 1).
    pub dims: usize,
    /// Decades each error dimension spans below its legal maximum.
    pub decades: f64,
    /// Grid resolution per dimension.
    pub resolution: usize,
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            relations: 4,
            dims: 2,
            decades: 3.0,
            resolution: 12,
            seed: 0,
        }
    }
}

/// TPC-H FK edges as (fk_table, fk_col, pk_table, pk_col).
const FK_EDGES: &[(&str, &str, &str, &str)] = &[
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
];

/// Candidate range-selection columns per table (column, lo, hi).
const SELECTIONS: &[(&str, &str, f64, f64)] = &[
    ("part", "p_retailprice", 900.0, 2099.0),
    ("part", "p_size", 1.0, 50.0),
    ("supplier", "s_acctbal", -999.99, 9999.99),
    ("customer", "c_acctbal", -999.99, 9999.99),
    ("orders", "o_totalprice", 857.71, 555285.16),
    ("lineitem", "l_quantity", 1.0, 50.0),
];

/// Draw a random workload. Deterministic in `cfg.seed`.
pub fn random_workload(cfg: &RandomConfig) -> Workload {
    assert!((2..=8).contains(&cfg.relations));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cat = tpch::catalog(1.0);

    // Grow a random connected subtree of the FK graph.
    let mut tables: Vec<&str> = Vec::new();
    let mut edges: Vec<(usize, &str, usize, &str, &str)> = Vec::new(); // (fk_rel, fk_col, pk_rel, pk_col, pk_table)
    let start = FK_EDGES[rng.random_range(0..FK_EDGES.len())];
    tables.push(start.0);
    while tables.len() < cfg.relations {
        // Candidate edges touching exactly one chosen table.
        let cands: Vec<&(&str, &str, &str, &str)> = FK_EDGES
            .iter()
            .filter(|(f, _, p, _)| tables.contains(f) != tables.contains(p))
            .collect();
        if cands.is_empty() {
            break;
        }
        let e = cands[rng.random_range(0..cands.len())];
        let (f, fc, p, pc) = *e;
        if !tables.contains(&f) {
            tables.push(f);
        }
        if !tables.contains(&p) {
            tables.push(p);
        }
        let fi = tables.iter().position(|t| *t == f).unwrap();
        let pi = tables.iter().position(|t| *t == p).unwrap();
        if !edges
            .iter()
            .any(|(a, ac, b, _, _)| *a == fi && *b == pi && *ac == fc)
        {
            edges.push((fi, fc, pi, pc, p));
        }
    }

    // Assign error-prone dims to a random subset of edges.
    let dims = cfg.dims.min(edges.len());
    let mut order: Vec<usize> = (0..edges.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let error_edges: Vec<usize> = order.into_iter().take(dims).collect();

    let mut qb = QueryBuilder::new(&cat, format!("random-{}", cfg.seed));
    let rels: Vec<usize> = tables.iter().map(|t| qb.rel(t)).collect();
    let mut ess_dims = Vec::new();
    for (ei, (fi, fc, pi, pc, pk_table)) in edges.iter().enumerate() {
        let spec = if let Some(d) = error_edges.iter().position(|&x| x == ei) {
            let hi = (1.0 / cat.table(pk_table).unwrap().rows).min(1.0);
            ess_dims.push((
                d,
                EssDim::pk_fk_join(format!("{fc}⋈{pc}"), hi / 10f64.powf(cfg.decades), hi),
            ));
            SelSpec::ErrorProne(d)
        } else {
            SelSpec::Fixed((1.0 / cat.table(pk_table).unwrap().rows).min(1.0))
        };
        qb.join(rels[*fi], fc, rels[*pi], pc, spec);
    }
    // Random fixed selections (error-free, per the paper's premise that
    // base-predicate selectivities are estimable).
    for (t, col, lo, hi) in SELECTIONS {
        if let Some(pos) = tables.iter().position(|x| x == t) {
            if rng.random::<f64>() < 0.4 {
                let c = lo + rng.random::<f64>() * (hi - lo);
                let sel = ((c - lo) / (hi - lo)).clamp(0.05, 1.0);
                qb.select(rels[pos], col, CmpOp::Lt, c, SelSpec::Fixed(sel));
            }
        }
    }
    let query = qb.build();
    ess_dims.sort_by_key(|(d, _)| *d);
    let ess = Ess::uniform(
        ess_dims.into_iter().map(|(_, d)| d).collect(),
        cfg.resolution,
    );
    Workload::new(
        format!("random-{}", cfg.seed),
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_bouquet::{Bouquet, BouquetConfig};

    #[test]
    fn generator_is_deterministic() {
        let cfg = RandomConfig {
            seed: 5,
            ..Default::default()
        };
        let a = random_workload(&cfg);
        let b = random_workload(&cfg);
        assert_eq!(a.query, b.query);
        assert_eq!(a.ess, b.ess);
    }

    #[test]
    fn draws_are_structurally_valid() {
        for seed in 0..20 {
            let cfg = RandomConfig {
                seed,
                ..Default::default()
            };
            let w = random_workload(&cfg);
            w.query.validate(&w.catalog);
            assert!(w.d() >= 1 && w.d() <= cfg.dims);
            assert!(w.query.num_relations() >= 2);
        }
    }

    /// The paper's guarantee must hold on arbitrary draws, not just the
    /// curated suite — the whole point of this generator.
    #[test]
    fn bouquet_guarantee_holds_on_random_workloads() {
        for seed in 0..8 {
            let cfg = RandomConfig {
                seed,
                resolution: 10,
                ..Default::default()
            };
            let w = random_workload(&cfg);
            let b = match Bouquet::identify(&w, &BouquetConfig::default()) {
                Ok(b) => b,
                Err(e) => panic!("seed {seed}: identification failed: {e}"),
            };
            let n = w.ess.num_points();
            for li in (0..n).step_by((n / 50).max(1)) {
                let qa = w.ess.point(&w.ess.unlinear(li));
                for run in [b.run_basic(&qa).unwrap(), b.run_optimized(&qa).unwrap()] {
                    assert!(run.completed(), "seed {seed} li {li}");
                    let so = run.suboptimality(b.pic_cost_at(li));
                    assert!(
                        so <= b.mso_bound() * (1.0 + 1e-9),
                        "seed {seed} li {li}: {so} > {}",
                        b.mso_bound()
                    );
                }
            }
        }
    }

    #[test]
    fn varying_shapes_come_out() {
        let mut shapes = std::collections::BTreeSet::new();
        for seed in 0..30 {
            let cfg = RandomConfig {
                seed,
                relations: 5,
                ..Default::default()
            };
            let w = random_workload(&cfg);
            shapes.insert(format!("{:?}", w.query.join_graph().shape()));
        }
        assert!(
            shapes.len() >= 2,
            "generator stuck on one shape: {shapes:?}"
        );
    }
}
