//! TPC-DS based error spaces (100 GB scale, per the paper).

use pb_bouquet::Workload;
use pb_catalog::tpcds;
use pb_cost::{CostModel, Ess};
use pb_plan::{QueryBuilder, SelSpec};

use crate::tpch_queries::{default_resolution, join_dim};

const DS_SCALE: f64 = 100.0;

/// 3D_DS_Q15 — chain(4): date_dim–catalog_sales–customer–customer_address,
/// all three joins error-prone (Table 2: C_max/C_min ≈ 668).
pub fn ds_q15_3d() -> Workload {
    let cat = tpcds::catalog(DS_SCALE);
    let mut qb = QueryBuilder::new(&cat, "3D_DS_Q15");
    let d = qb.rel("date_dim");
    let cs = qb.rel("catalog_sales");
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    qb.join(
        d,
        "d_date_sk",
        cs,
        "cs_sold_date_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(
        cs,
        "cs_bill_customer_sk",
        c,
        "c_customer_sk",
        SelSpec::ErrorProne(1),
    );
    qb.join(
        c,
        "c_current_addr_sk",
        ca,
        "ca_address_sk",
        SelSpec::ErrorProne(2),
    );
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("d⋈cs", &cat, "date_dim", 4.0),
            join_dim("cs⋈c", &cat, "customer", 4.0),
            join_dim("c⋈ca", &cat, "customer_address", 4.0),
        ],
        default_resolution(3),
    );
    Workload::new(
        "3D_DS_Q15",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 3D_DS_Q96 — star(4): store_sales hub with date_dim,
/// household_demographics and store (Table 2: C_max/C_min ≈ 185).
pub fn ds_q96_3d() -> Workload {
    let cat = tpcds::catalog(DS_SCALE);
    let mut qb = QueryBuilder::new(&cat, "3D_DS_Q96");
    let ss = qb.rel("store_sales");
    let d = qb.rel("date_dim");
    let hd = qb.rel("household_demographics");
    let s = qb.rel("store");
    qb.join(
        ss,
        "ss_sold_date_sk",
        d,
        "d_date_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(ss, "ss_hdemo_sk", hd, "hd_demo_sk", SelSpec::ErrorProne(1));
    qb.join(ss, "ss_store_sk", s, "s_store_sk", SelSpec::ErrorProne(2));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("ss⋈d", &cat, "date_dim", 4.0),
            join_dim("ss⋈hd", &cat, "household_demographics", 4.0),
            join_dim("ss⋈s", &cat, "store", 4.0),
        ],
        default_resolution(3),
    );
    Workload::new(
        "3D_DS_Q96",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 4D_DS_Q7 — star(5): store_sales hub with customer_demographics,
/// date_dim, item and promotion (Table 2: C_max/C_min ≈ 283).
pub fn ds_q7_4d() -> Workload {
    let cat = tpcds::catalog(DS_SCALE);
    let mut qb = QueryBuilder::new(&cat, "4D_DS_Q7");
    let ss = qb.rel("store_sales");
    let cd = qb.rel("customer_demographics");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let p = qb.rel("promotion");
    qb.join(ss, "ss_cdemo_sk", cd, "cd_demo_sk", SelSpec::ErrorProne(0));
    qb.join(
        ss,
        "ss_sold_date_sk",
        d,
        "d_date_sk",
        SelSpec::ErrorProne(1),
    );
    qb.join(ss, "ss_item_sk", i, "i_item_sk", SelSpec::ErrorProne(2));
    qb.join(ss, "ss_promo_sk", p, "p_promo_sk", SelSpec::ErrorProne(3));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("ss⋈cd", &cat, "customer_demographics", 4.0),
            join_dim("ss⋈d", &cat, "date_dim", 4.0),
            join_dim("ss⋈i", &cat, "item", 4.0),
            join_dim("ss⋈p", &cat, "promotion", 4.0),
        ],
        default_resolution(4),
    );
    Workload::new(
        "4D_DS_Q7",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 4D_DS_Q26 — star(5): catalog_sales hub with customer_demographics,
/// date_dim, item and promotion (Table 2: C_max/C_min ≈ 341).
pub fn ds_q26_4d() -> Workload {
    let cat = tpcds::catalog(DS_SCALE);
    let mut qb = QueryBuilder::new(&cat, "4D_DS_Q26");
    let cs = qb.rel("catalog_sales");
    let cd = qb.rel("customer_demographics");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let p = qb.rel("promotion");
    qb.join(
        cs,
        "cs_bill_cdemo_sk",
        cd,
        "cd_demo_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(
        cs,
        "cs_sold_date_sk",
        d,
        "d_date_sk",
        SelSpec::ErrorProne(1),
    );
    qb.join(cs, "cs_item_sk", i, "i_item_sk", SelSpec::ErrorProne(2));
    qb.join(cs, "cs_promo_sk", p, "p_promo_sk", SelSpec::ErrorProne(3));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("cs⋈cd", &cat, "customer_demographics", 4.0),
            join_dim("cs⋈d", &cat, "date_dim", 4.0),
            join_dim("cs⋈i", &cat, "item", 4.0),
            join_dim("cs⋈p", &cat, "promotion", 4.0),
        ],
        default_resolution(4),
    );
    Workload::new(
        "4D_DS_Q26",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 4D_DS_Q91 — branch(7): catalog_returns joined to call_center and
/// date_dim, customer joined to address/demographics branches
/// (Table 2: C_max/C_min ≈ 149).
pub fn ds_q91_4d() -> Workload {
    let cat = tpcds::catalog(DS_SCALE);
    let mut qb = QueryBuilder::new(&cat, "4D_DS_Q91");
    let cr = qb.rel("catalog_returns");
    let cc = qb.rel("call_center");
    let d = qb.rel("date_dim");
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    let cd = qb.rel("customer_demographics");
    let hd = qb.rel("household_demographics");
    qb.join(
        cr,
        "cr_item_sk",
        cc,
        "cc_call_center_sk",
        SelSpec::Fixed(1.0 / 30.0),
    );
    qb.join(
        cr,
        "cr_returned_date_sk",
        d,
        "d_date_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(
        cr,
        "cr_returning_customer_sk",
        c,
        "c_customer_sk",
        SelSpec::ErrorProne(1),
    );
    qb.join(
        c,
        "c_current_addr_sk",
        ca,
        "ca_address_sk",
        SelSpec::ErrorProne(2),
    );
    qb.join(
        c,
        "c_current_cdemo_sk",
        cd,
        "cd_demo_sk",
        SelSpec::ErrorProne(3),
    );
    qb.join(
        c,
        "c_current_hdemo_sk",
        hd,
        "hd_demo_sk",
        SelSpec::Fixed(1.0 / 7200.0),
    );
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("cr⋈d", &cat, "date_dim", 4.0),
            join_dim("cr⋈c", &cat, "customer", 4.0),
            join_dim("c⋈ca", &cat, "customer_address", 4.0),
            join_dim("c⋈cd", &cat, "customer_demographics", 4.0),
        ],
        default_resolution(4),
    );
    Workload::new(
        "4D_DS_Q91",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 5D_DS_Q19 — branch(6): store_sales hub (date_dim, item, store, customer)
/// with a customer–customer_address tail; all five joins error-prone
/// (Table 2: C_max/C_min ≈ 183). The paper's flagship example: NAT's MSO of
/// ~10⁶ collapses to ~10 under the bouquet.
pub fn ds_q19_5d() -> Workload {
    let cat = tpcds::catalog(DS_SCALE);
    let mut qb = QueryBuilder::new(&cat, "5D_DS_Q19");
    let ss = qb.rel("store_sales");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    let s = qb.rel("store");
    qb.join(
        ss,
        "ss_sold_date_sk",
        d,
        "d_date_sk",
        SelSpec::ErrorProne(0),
    );
    qb.join(ss, "ss_item_sk", i, "i_item_sk", SelSpec::ErrorProne(1));
    qb.join(
        ss,
        "ss_customer_sk",
        c,
        "c_customer_sk",
        SelSpec::ErrorProne(2),
    );
    qb.join(
        c,
        "c_current_addr_sk",
        ca,
        "ca_address_sk",
        SelSpec::ErrorProne(3),
    );
    qb.join(ss, "ss_store_sk", s, "s_store_sk", SelSpec::ErrorProne(4));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("ss⋈d", &cat, "date_dim", 4.0),
            join_dim("ss⋈i", &cat, "item", 4.0),
            join_dim("ss⋈c", &cat, "customer", 4.0),
            join_dim("c⋈ca", &cat, "customer_address", 4.0),
            join_dim("ss⋈s", &cat, "store", 4.0),
        ],
        default_resolution(5),
    );
    Workload::new(
        "5D_DS_Q19",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_plan::GraphShape;

    #[test]
    fn join_graph_geometries_match_table2() {
        assert_eq!(ds_q15_3d().query.join_graph().shape(), GraphShape::Chain);
        assert_eq!(ds_q15_3d().query.num_relations(), 4);
        assert_eq!(ds_q96_3d().query.join_graph().shape(), GraphShape::Star);
        assert_eq!(ds_q96_3d().query.num_relations(), 4);
        assert_eq!(ds_q7_4d().query.join_graph().shape(), GraphShape::Star);
        assert_eq!(ds_q7_4d().query.num_relations(), 5);
        assert_eq!(ds_q26_4d().query.join_graph().shape(), GraphShape::Star);
        assert_eq!(ds_q26_4d().query.num_relations(), 5);
        assert_eq!(ds_q91_4d().query.join_graph().shape(), GraphShape::Branch);
        assert_eq!(ds_q91_4d().query.num_relations(), 7);
        assert_eq!(ds_q19_5d().query.join_graph().shape(), GraphShape::Branch);
        assert_eq!(ds_q19_5d().query.num_relations(), 6);
    }

    #[test]
    fn dimensionalities_match_names() {
        assert_eq!(ds_q15_3d().d(), 3);
        assert_eq!(ds_q96_3d().d(), 3);
        assert_eq!(ds_q7_4d().d(), 4);
        assert_eq!(ds_q26_4d().d(), 4);
        assert_eq!(ds_q91_4d().d(), 4);
        assert_eq!(ds_q19_5d().d(), 5);
    }
}
