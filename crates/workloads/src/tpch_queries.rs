//! TPC-H based error spaces.

use pb_bouquet::Workload;
use pb_catalog::{tpch, Catalog};
use pb_cost::{CostModel, Ess, EssDim};
use pb_plan::{CmpOp, QueryBuilder, SelSpec};

/// Grid resolutions per dimensionality (exhaustive ground truth stays cheap).
pub fn default_resolution(dims: usize) -> usize {
    match dims {
        1 => 100,
        2 => 48,
        3 => 20,
        4 => 11,
        _ => 7,
    }
}

/// An error-prone join dimension spanning `decades` decades below the
/// maximum legal join selectivity `1 / |PK relation|` (Section 4.1).
pub(crate) fn join_dim(name: &str, catalog: &Catalog, pk_table: &str, decades: f64) -> EssDim {
    let hi = (1.0 / catalog.table(pk_table).unwrap().rows).min(1.0);
    EssDim::pk_fk_join(name, hi / 10f64.powf(decades), hi)
}

/// The paper's introductory example EQ (Figure 1): part ⋈ lineitem ⋈ orders
/// with an error-prone selection on p_retailprice. One dimension spanning
/// 0.01%–100%, as in the paper's Figures 2–4.
pub fn eq_1d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "EQ");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        1000.0,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![EssDim::selection("p_retailprice", 1e-4, 1.0)],
        default_resolution(1),
    );
    Workload::new("EQ_1D", cat.clone(), query, ess, CostModel::postgresish())
}

/// The run-time experiment query of Section 6.7 / Table 3: a 2D join error
/// space on a part–lineitem–orders chain. Built at a reduced scale factor so
/// the tuple engine (`pb-engine`) can execute it end to end.
///
/// The ESS upper bounds deliberately exceed the PK–FK reciprocal cap: the
/// experiment's generated data duplicates the "key" columns (the AVI
/// violation that manufactures the under-estimate), so actual join
/// selectivities can legally rise well above `1/|PK relation|`.
pub fn h_q8a_2d(scale: f64) -> Workload {
    let cat = tpch::catalog(scale);
    let mut qb = QueryBuilder::new(&cat, "2D_H_Q8A");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        1100.0,
        SelSpec::Fixed(200.0 / 1199.0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::ErrorProne(1));
    let query = qb.build();
    let hi0 = (50.0 / cat.table("part").unwrap().rows).min(1.0);
    let hi1 = (100.0 / cat.table("orders").unwrap().rows).min(1.0);
    let ess = Ess::uniform(
        vec![
            EssDim::pk_fk_join("p⋈l", hi0 / 10f64.powf(3.5), hi0),
            EssDim::pk_fk_join("l⋈o", hi1 / 10f64.powf(3.5), hi1),
        ],
        default_resolution(2),
    );
    Workload::new(
        "2D_H_Q8A",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 3D_H_Q5 — chain(6): region–nation–supplier–lineitem–orders–customer,
/// three error-prone join selectivities (Table 2: C_max/C_min ≈ 16).
pub fn h_q5_3d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "3D_H_Q5");
    let r = qb.rel("region");
    let n = qb.rel("nation");
    let s = qb.rel("supplier");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    let c = qb.rel("customer");
    qb.join(r, "r_regionkey", n, "n_regionkey", SelSpec::Fixed(0.2));
    qb.join(n, "n_nationkey", s, "s_nationkey", SelSpec::Fixed(0.04));
    qb.join(s, "s_suppkey", l, "l_suppkey", SelSpec::ErrorProne(0));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::ErrorProne(1));
    qb.join(o, "o_custkey", c, "c_custkey", SelSpec::ErrorProne(2));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("s⋈l", &cat, "supplier", 4.0),
            join_dim("l⋈o", &cat, "orders", 4.0),
            join_dim("o⋈c", &cat, "customer", 4.0),
        ],
        default_resolution(3),
    );
    Workload::new("3D_H_Q5", cat.clone(), query, ess, CostModel::postgresish())
}

/// 3D_H_Q7 — chain(6): nation–supplier–lineitem–orders–customer–nation,
/// three error-prone joins (Table 2: C_max/C_min ≈ 5).
pub fn h_q7_3d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "3D_H_Q7");
    let n1 = qb.rel_aliased("nation", "n1");
    let s = qb.rel("supplier");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    let c = qb.rel("customer");
    let n2 = qb.rel_aliased("nation", "n2");
    qb.join(n1, "n_nationkey", s, "s_nationkey", SelSpec::Fixed(0.04));
    qb.join(s, "s_suppkey", l, "l_suppkey", SelSpec::ErrorProne(0));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::ErrorProne(1));
    qb.join(o, "o_custkey", c, "c_custkey", SelSpec::ErrorProne(2));
    qb.join(c, "c_nationkey", n2, "n_nationkey", SelSpec::Fixed(0.04));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("s⋈l", &cat, "supplier", 4.0),
            join_dim("l⋈o", &cat, "orders", 4.0),
            join_dim("o⋈c", &cat, "customer", 4.0),
        ],
        default_resolution(3),
    );
    Workload::new("3D_H_Q7", cat.clone(), query, ess, CostModel::postgresish())
}

/// 4D_H_Q8 — branch(8): part and supplier branch off lineitem; nations and
/// region hang off customer (Table 2: C_max/C_min ≈ 28).
pub fn h_q8_4d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "4D_H_Q8");
    let p = qb.rel("part");
    let s = qb.rel("supplier");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    let c = qb.rel("customer");
    let n1 = qb.rel_aliased("nation", "n1");
    let n2 = qb.rel_aliased("nation", "n2");
    let r = qb.rel("region");
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
    qb.join(s, "s_suppkey", l, "l_suppkey", SelSpec::ErrorProne(1));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::ErrorProne(2));
    qb.join(o, "o_custkey", c, "c_custkey", SelSpec::ErrorProne(3));
    qb.join(c, "c_nationkey", n1, "n_nationkey", SelSpec::Fixed(0.04));
    qb.join(n1, "n_regionkey", r, "r_regionkey", SelSpec::Fixed(0.2));
    qb.join(s, "s_nationkey", n2, "n_nationkey", SelSpec::Fixed(0.04));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("p⋈l", &cat, "part", 4.0),
            join_dim("s⋈l", &cat, "supplier", 4.0),
            join_dim("l⋈o", &cat, "orders", 4.0),
            join_dim("o⋈c", &cat, "customer", 4.0),
        ],
        default_resolution(4),
    );
    Workload::new("4D_H_Q8", cat.clone(), query, ess, CostModel::postgresish())
}

/// 5D_H_Q7 — the chain(6) of Q7 with all five joins error-prone
/// (Table 2: C_max/C_min ≈ 50).
pub fn h_q7_5d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "5D_H_Q7");
    let n1 = qb.rel_aliased("nation", "n1");
    let s = qb.rel("supplier");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    let c = qb.rel("customer");
    let n2 = qb.rel_aliased("nation", "n2");
    qb.join(n1, "n_nationkey", s, "s_nationkey", SelSpec::ErrorProne(0));
    qb.join(s, "s_suppkey", l, "l_suppkey", SelSpec::ErrorProne(1));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::ErrorProne(2));
    qb.join(o, "o_custkey", c, "c_custkey", SelSpec::ErrorProne(3));
    qb.join(c, "c_nationkey", n2, "n_nationkey", SelSpec::ErrorProne(4));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            join_dim("n1⋈s", &cat, "nation", 1.5),
            join_dim("s⋈l", &cat, "supplier", 1.5),
            join_dim("l⋈o", &cat, "orders", 1.5),
            join_dim("o⋈c", &cat, "customer", 1.5),
            join_dim("c⋈n2", &cat, "nation", 1.5),
        ],
        default_resolution(5),
    );
    Workload::new("5D_H_Q7", cat.clone(), query, ess, CostModel::postgresish())
}

/// 3D_H_Q5B — commercial-engine variant (Section 6.8): the error dimensions
/// are *selection* predicates on base relations (which COM can inject by
/// changing query constants), costed with the commercial personality.
pub fn h_q5b_3d_com() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "3D_H_Q5B");
    let s = qb.rel("supplier");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    let c = qb.rel("customer");
    qb.select(s, "s_acctbal", CmpOp::Lt, 0.0, SelSpec::ErrorProne(0));
    qb.select(o, "o_totalprice", CmpOp::Lt, 0.0, SelSpec::ErrorProne(1));
    qb.select(c, "c_acctbal", CmpOp::Lt, 0.0, SelSpec::ErrorProne(2));
    qb.join(s, "s_suppkey", l, "l_suppkey", SelSpec::Fixed(1e-4));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
    qb.join(o, "o_custkey", c, "c_custkey", SelSpec::Fixed(6.7e-6));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            EssDim::selection("s_acctbal", 1e-3, 1.0),
            EssDim::selection("o_totalprice", 1e-3, 1.0),
            EssDim::selection("c_acctbal", 1e-3, 1.0),
        ],
        default_resolution(3),
    );
    Workload::new(
        "3D_H_Q5B",
        cat.clone(),
        query,
        ess,
        CostModel::commercialish(),
    )
}

/// 4D_H_Q8B — commercial-engine variant with four selection dimensions.
pub fn h_q8b_4d_com() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "4D_H_Q8B");
    let p = qb.rel("part");
    let s = qb.rel("supplier");
    let l = qb.rel("lineitem");
    let o = qb.rel("orders");
    let c = qb.rel("customer");
    qb.select(p, "p_retailprice", CmpOp::Lt, 0.0, SelSpec::ErrorProne(0));
    qb.select(s, "s_acctbal", CmpOp::Lt, 0.0, SelSpec::ErrorProne(1));
    qb.select(o, "o_totalprice", CmpOp::Lt, 0.0, SelSpec::ErrorProne(2));
    qb.select(c, "c_acctbal", CmpOp::Lt, 0.0, SelSpec::ErrorProne(3));
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
    qb.join(s, "s_suppkey", l, "l_suppkey", SelSpec::Fixed(1e-4));
    qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
    qb.join(o, "o_custkey", c, "c_custkey", SelSpec::Fixed(6.7e-6));
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            EssDim::selection("p_retailprice", 1e-3, 1.0),
            EssDim::selection("s_acctbal", 1e-3, 1.0),
            EssDim::selection("o_totalprice", 1e-3, 1.0),
            EssDim::selection("c_acctbal", 1e-3, 1.0),
        ],
        default_resolution(4),
    );
    Workload::new(
        "4D_H_Q8B",
        cat.clone(),
        query,
        ess,
        CostModel::commercialish(),
    )
}

/// ANTI_2D — the PCM-violating space of the `pcmflip` exhibit: a NOT EXISTS
/// (anti-join) dimension whose raw axis makes the PIC *decrease*.
/// Identification on this workload is expected to fail until the axis is
/// flipped with `pb_bouquet::flip::flip_decreasing`.
pub fn anti_2d() -> Workload {
    let cat = tpch::catalog(1.0);
    let mut qb = QueryBuilder::new(&cat, "ANTI_2D");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let ps = qb.rel("partsupp");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        1000.0,
        SelSpec::ErrorProne(0),
    );
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
    qb.anti_join(l, "l_partkey", ps, "ps_partkey", SelSpec::ErrorProne(1));
    let query = qb.build();
    let hi = 1.0 / cat.table("partsupp").unwrap().rows;
    let ess = Ess::uniform(
        vec![
            EssDim::selection("p_retailprice", 1e-4, 1.0),
            EssDim::anti_join("anti l⋈ps", hi / 100.0, hi),
        ],
        16,
    );
    Workload::new("ANTI_2D", cat.clone(), query, ess, CostModel::postgresish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_plan::GraphShape;

    #[test]
    fn join_graph_geometries_match_table2() {
        assert_eq!(h_q5_3d().query.join_graph().shape(), GraphShape::Chain);
        assert_eq!(h_q5_3d().query.num_relations(), 6);
        assert_eq!(h_q7_3d().query.join_graph().shape(), GraphShape::Chain);
        assert_eq!(h_q7_3d().query.num_relations(), 6);
        assert_eq!(h_q8_4d().query.join_graph().shape(), GraphShape::Branch);
        assert_eq!(h_q8_4d().query.num_relations(), 8);
        assert_eq!(h_q7_5d().query.join_graph().shape(), GraphShape::Chain);
        assert_eq!(h_q7_5d().query.num_relations(), 6);
    }

    #[test]
    fn dimensionalities_match_names() {
        assert_eq!(eq_1d().d(), 1);
        assert_eq!(h_q8a_2d(0.01).d(), 2);
        assert_eq!(h_q5_3d().d(), 3);
        assert_eq!(h_q8_4d().d(), 4);
        assert_eq!(h_q7_5d().d(), 5);
        assert_eq!(h_q5b_3d_com().d(), 3);
        assert_eq!(h_q8b_4d_com().d(), 4);
    }

    #[test]
    fn join_dims_respect_pk_fk_legal_maximum() {
        let w = h_q5_3d();
        // s⋈l max legal = 1/|supplier| = 1e-4.
        assert!((w.ess.dims[0].hi - 1e-4).abs() < 1e-12);
        assert!(w.ess.dims[0].lo < w.ess.dims[0].hi);
    }

    #[test]
    fn anti_2d_has_an_anti_edge() {
        let w = anti_2d();
        assert!(w.query.joins.iter().any(|j| j.anti));
        assert_eq!(w.d(), 2);
    }

    #[test]
    fn com_variants_use_commercial_personality() {
        assert_eq!(h_q5b_3d_com().model.name, "commercialish");
        assert_eq!(h_q8b_4d_com().model.name, "commercialish");
        assert_eq!(h_q5_3d().model.name, "postgresish");
    }
}
