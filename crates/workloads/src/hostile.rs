//! Hostile workloads: error spaces whose axes are *not* the classic
//! selection / PK–FK kinds the paper evaluates.
//!
//! These exercise the typed-dimension machinery end to end:
//!
//! * [`hostile_ineq_2d`] — an **inequality-join** axis (`p_size <
//!   s_acctbal`). Only nested-loop operators can evaluate the edge, so the
//!   plan space is skewed toward BNL pipelines and the axis spans pair
//!   densities far above any PK–FK reciprocal cap.
//! * [`hostile_anti_2d`] — an **anti-join** (NOT EXISTS) axis, declared
//!   *pre-flipped* (`SelSpec::Flipped`): the raw match density makes plan
//!   costs decrease, so the workload ships with the Section 2 axis
//!   reflection already applied and identification succeeds directly.
//!
//! Both are sized by a scale factor so the tuple/vectorized engines can run
//! them to completion; both substrates (engine and cost-unit simulator)
//! drive them through the full ladder in `pbq table3`'s hostile section.

use pb_bouquet::Workload;
use pb_catalog::tpch;
use pb_cost::{CostModel, Ess, EssDim};
use pb_plan::{CmpOp, QueryBuilder, SelSpec};

/// 2D hostile space with an inequality-join dimension: part ⋈ lineitem on
/// the PK–FK edge (fixed), part ⋈< supplier on `p_size < s_acctbal`
/// (error-prone dim 1), and an error-prone selection on `p_retailprice`
/// (dim 0).
pub fn hostile_ineq_2d(scale: f64) -> Workload {
    let cat = tpch::catalog(scale);
    let mut qb = QueryBuilder::new(&cat, "HOSTILE_INEQ_2D");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let s = qb.rel("supplier");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        1000.0,
        SelSpec::ErrorProne(0),
    );
    let pkfk = (1.0 / cat.table("part").unwrap().rows).min(1.0);
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(pkfk));
    qb.ineq_join(
        p,
        "p_size",
        CmpOp::Lt,
        s,
        "s_acctbal",
        SelSpec::ErrorProne(1),
    );
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            EssDim::selection("p_retailprice", 1e-4, 1.0),
            // Inequality pair densities are macroscopic: the axis spans
            // "almost never true" to "always true".
            EssDim::inequality_join("p<s", 1e-3, 1.0),
        ],
        16,
    );
    Workload::new(
        "HOSTILE_INEQ_2D",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

/// 2D hostile space with an anti-join dimension, shipped pre-flipped:
/// part ⋈ lineitem (fixed PK–FK), NOT EXISTS(partsupp) on `l_partkey =
/// ps_partkey` whose *match density* is the error-prone quantity. The axis
/// is declared as `SelSpec::Flipped` with `pivot = lo · hi`, so the ESS
/// coordinate runs opposite to the raw density and plan costs are
/// monotonically increasing — no `flip_decreasing` pass needed.
pub fn hostile_anti_2d(scale: f64) -> Workload {
    let cat = tpch::catalog(scale);
    // Raw match densities of `l_partkey = ps_partkey` sit near
    // 1/NDV(partkey); span two decades either side so realistic data (and
    // hostile NDV skew) lands in the interior.
    let hi = (100.0 / cat.table("part").unwrap().rows).min(1.0);
    let lo = hi / 1e4;
    let mut qb = QueryBuilder::new(&cat, "HOSTILE_ANTI_2D");
    let p = qb.rel("part");
    let l = qb.rel("lineitem");
    let ps = qb.rel("partsupp");
    qb.select(
        p,
        "p_retailprice",
        CmpOp::Lt,
        1000.0,
        SelSpec::ErrorProne(0),
    );
    let pkfk = (1.0 / cat.table("part").unwrap().rows).min(1.0);
    qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(pkfk));
    qb.anti_join(
        l,
        "l_partkey",
        ps,
        "ps_partkey",
        SelSpec::Flipped {
            dim: 1,
            pivot: lo * hi,
        },
    );
    let query = qb.build();
    let ess = Ess::uniform(
        vec![
            EssDim::selection("p_retailprice", 1e-4, 1.0),
            EssDim::anti_join("anti l⋈ps", lo, hi),
        ],
        16,
    );
    Workload::new(
        "HOSTILE_ANTI_2D",
        cat.clone(),
        query,
        ess,
        CostModel::postgresish(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_bouquet::{Bouquet, BouquetConfig};
    use pb_cost::DimKind;

    #[test]
    fn hostile_dims_carry_their_kinds() {
        let w = hostile_ineq_2d(0.01);
        assert_eq!(w.ess.dims[0].kind, DimKind::Selection);
        assert_eq!(w.ess.dims[1].kind, DimKind::InequalityJoin);
        assert_eq!(w.query.dim_kind(1), Some(DimKind::InequalityJoin));
        let w = hostile_anti_2d(0.01);
        assert_eq!(w.ess.dims[1].kind, DimKind::AntiJoin);
        assert_eq!(w.query.dim_kind(1), Some(DimKind::AntiJoin));
    }

    #[test]
    fn hostile_ineq_identifies_with_full_guarantee() {
        let w = hostile_ineq_2d(0.01);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
        for li in [0, w.ess.num_points() / 2, w.ess.num_points() - 1] {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            assert!(run.completed());
            assert!(run.suboptimality(b.pic_cost_at(li)) <= b.mso_bound() * (1.0 + 1e-9));
        }
    }

    #[test]
    fn hostile_anti_is_pcm_clean_as_declared() {
        let w = hostile_anti_2d(0.01);
        // Pre-flipped: identification succeeds without flip_decreasing, and
        // a further flip pass finds nothing to reverse.
        let b = Bouquet::identify(&w, &BouquetConfig::default()).expect("identify");
        let (same, flips) = pb_bouquet::flip::flip_decreasing(&w).unwrap();
        assert!(flips.iter().all(|&f| !f), "{flips:?}");
        assert_eq!(same.query, w.query);
        for li in [0, w.ess.num_points() / 2, w.ess.num_points() - 1] {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            assert!(run.completed());
            assert!(run.suboptimality(b.pic_cost_at(li)) <= b.mso_bound() * (1.0 + 1e-9));
        }
    }
}
