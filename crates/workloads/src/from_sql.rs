//! Build a complete [`Workload`] straight from SQL text.
//!
//! The ESS is derived automatically: each `?`-marked predicate becomes a
//! dimension whose upper bound is its maximum legal selectivity (1 for
//! selections; `1 / max(|L|, |R|)` for equi-joins, the PK–FK reciprocal
//! rule of Section 4.1), spanning `decades` decades below it.

use pb_bouquet::Workload;
use pb_catalog::Catalog;
use pb_cost::{CostModel, Ess, EssDim};
use pb_plan::{parse_sql, ParseError, QuerySpec};

/// Derive the ESS for a parsed query's error dimensions.
pub fn derive_ess(catalog: &Catalog, query: &QuerySpec, decades: f64, resolution: usize) -> Ess {
    let mut dims: Vec<Option<EssDim>> = vec![None; query.num_dims];
    for r in &query.relations {
        for s in &r.selections {
            if let Some(d) = s.selectivity.error_dim() {
                let t = catalog.table_by_id(s.column.table);
                let name = format!("{}.{}", r.alias, t.columns[s.column.column as usize].name);
                dims[d] = Some(EssDim::selection(name, 10f64.powf(-decades), 1.0));
            }
        }
    }
    for j in &query.joins {
        if let Some(d) = j.selectivity.error_dim() {
            let rows_l = catalog.table_by_id(j.left_col.table).rows;
            let rows_r = catalog.table_by_id(j.right_col.table).rows;
            let hi = (1.0 / rows_l.max(rows_r)).min(1.0);
            let name = format!(
                "{}⋈{}",
                query.relations[j.left_rel].alias, query.relations[j.right_rel].alias
            );
            // Join axes carry the edge's own kind (PK–FK, inequality,
            // anti/semi) so the typed-dimension validation holds for any
            // parsed query shape.
            dims[d] = Some(EssDim::new(name, hi / 10f64.powf(decades), hi).with_kind(j.dim_kind()));
        }
    }
    Ess::uniform(
        dims.into_iter()
            .map(|d| d.expect("every dim is referenced by a predicate"))
            .collect(),
        resolution,
    )
}

/// Parse `sql` against `catalog` and wrap it into a ready-to-identify
/// workload. `decades` controls each dimension's span; `resolution` the
/// grid steps per dimension.
pub fn workload_from_sql(
    catalog: &Catalog,
    sql: &str,
    name: impl Into<String>,
    decades: f64,
    resolution: usize,
) -> Result<Workload, ParseError> {
    let mut query = parse_sql(catalog, sql)?;
    let name = name.into();
    query.name = name.clone();
    let ess = derive_ess(catalog, &query, decades, resolution);
    Ok(Workload::new(
        name,
        catalog.clone(),
        query,
        ess,
        CostModel::postgresish(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_bouquet::{Bouquet, BouquetConfig};
    use pb_catalog::tpch;

    /// The paper's Figure 1 query, end to end from SQL text to a verified
    /// bouquet run — the full pipeline in one test.
    #[test]
    fn figure1_sql_to_discovery() {
        let cat = tpch::catalog(1.0);
        let w = workload_from_sql(
            &cat,
            "SELECT * FROM lineitem, orders, part \
             WHERE p_partkey = l_partkey AND l_orderkey = o_orderkey \
             AND p_retailprice < 1000?",
            "EQ_SQL",
            4.0,
            48,
        )
        .unwrap();
        assert_eq!(w.d(), 1);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        assert!(b.stats.bouquet_cardinality >= 2);
        let qa = w.ess.point_at_fractions(&[0.7]);
        let run = b.run_basic(&qa).unwrap();
        assert!(run.completed());
        assert!(run.suboptimality(b.pic_cost(&qa)) <= b.mso_bound() * (1.0 + 1e-9));
    }

    #[test]
    fn join_dims_get_reciprocal_upper_bounds() {
        let cat = tpch::catalog(1.0);
        let w = workload_from_sql(
            &cat,
            "SELECT * FROM part, lineitem WHERE p_partkey = l_partkey?",
            "J",
            3.0,
            10,
        )
        .unwrap();
        // hi = 1/max(|part|, |lineitem|) = 1/6M.
        assert!((w.ess.dims[0].hi - 1.0 / 6_000_000.0).abs() < 1e-15);
        assert!((w.ess.dims[0].lo - w.ess.dims[0].hi / 1e3).abs() < 1e-18);
    }

    #[test]
    fn selection_dims_span_to_one() {
        let cat = tpch::catalog(1.0);
        let w = workload_from_sql(
            &cat,
            "SELECT * FROM part, lineitem WHERE p_partkey = l_partkey \
             AND p_retailprice < 1200? AND p_size > 10?",
            "S",
            4.0,
            8,
        )
        .unwrap();
        assert_eq!(w.d(), 2);
        assert_eq!(w.ess.dims[0].hi, 1.0);
        assert_eq!(w.ess.dims[1].hi, 1.0);
        assert!(w.ess.dims[0].name.contains("p_retailprice"));
    }

    #[test]
    fn parse_errors_propagate() {
        let cat = tpch::catalog(1.0);
        assert!(workload_from_sql(&cat, "SELECT * FROM nope WHERE a = b", "X", 3.0, 8).is_err());
    }
}
