//! Whole-workload evaluation harness: NAT vs SEER vs BOU over the full ESS
//! grid — the machinery behind the paper's Figures 14–18 and Table 1.

use pb_faults::PbError;
use pb_optimizer::SeerReduction;
use serde::{Deserialize, Serialize};

use crate::baselines::{parqo_assignment, ParqoConfig};
use crate::bouquet::{Bouquet, BouquetConfig};
use crate::contour::Contour;
use crate::metrics::{
    bouquet_metrics, harm, robustness_distribution, single_plan_metrics, single_plan_worst_profile,
    HarmReport, MetricsSummary, RobustnessDistribution,
};
use crate::workload::Workload;

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    pub bouquet: BouquetConfig,
    /// λ used by the SEER baseline's safety check.
    pub seer_lambda: f64,
    /// Error-neighborhood shape for the PARQO penalty-aware baseline.
    pub parqo: ParqoConfig,
    /// Also evaluate the optimized (Figure 13) driver.
    pub run_optimized: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            bouquet: BouquetConfig::default(),
            seer_lambda: 0.2,
            parqo: ParqoConfig::default(),
            run_optimized: true,
        }
    }
}

/// Table 1 row: guarantees before and after anorexic reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuaranteeRow {
    pub rho_posp: usize,
    pub bound_posp: f64,
    pub rho_anorexic: usize,
    pub bound_anorexic: f64,
}

/// Complete evaluation of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadEvaluation {
    pub name: String,
    pub dims: usize,
    pub grid_points: usize,
    pub cmin: f64,
    pub cmax: f64,
    pub num_contours: usize,
    /// Native optimizer (Figure 14/15 "NAT").
    pub nat: MetricsSummary,
    /// SEER robust selection (Figure 14/15 "SEER").
    pub seer: MetricsSummary,
    /// PARQO penalty-aware selection (third static baseline).
    pub parqo: MetricsSummary,
    /// Basic bouquet driver.
    pub bou_basic: MetricsSummary,
    pub bou_basic_harm: HarmReport,
    /// Optimized bouquet driver, if requested.
    pub bou_opt: Option<MetricsSummary>,
    pub bou_opt_harm: Option<HarmReport>,
    /// Figure 16 distribution (for the basic driver).
    pub distribution: RobustnessDistribution,
    /// Figure 18 cardinalities.
    pub posp_cardinality: usize,
    pub seer_cardinality: usize,
    pub parqo_cardinality: usize,
    pub bouquet_cardinality: usize,
    /// Table 1 row.
    pub guarantees: GuaranteeRow,
    /// Per-location bouquet sub-optimality (basic driver), for plotting.
    pub subopt_bou: Vec<f64>,
    /// Per-location NAT worst-case sub-optimality, for plotting.
    pub nat_worst: Vec<f64>,
}

/// Evaluate a workload end to end.
pub fn evaluate(w: &Workload, cfg: &EvalConfig) -> Result<WorkloadEvaluation, PbError> {
    let bouquet = Bouquet::identify(w, &cfg.bouquet)?;
    evaluate_with_bouquet(w, cfg, &bouquet)
}

/// Evaluate using an already-identified bouquet (lets callers reuse the
/// expensive compile-time artefacts).
pub fn evaluate_with_bouquet(
    w: &Workload,
    cfg: &EvalConfig,
    bouquet: &Bouquet,
) -> Result<WorkloadEvaluation, PbError> {
    let d = &bouquet.diagram;
    let costs = &bouquet.costs;
    let n = w.ess.num_points();

    // NAT: picks the optimal plan at the estimated location.
    let nat_assignment: Vec<usize> = d.optimal.iter().map(|&p| p as usize).collect();
    let nat = single_plan_metrics(costs, &d.opt_cost, &nat_assignment);
    let nat_worst = single_plan_worst_profile(costs, &d.opt_cost, &nat_assignment);

    // SEER: globally-safe reduced assignment.
    let seer_red = SeerReduction::reduce(d, costs, cfg.seer_lambda);
    let seer = single_plan_metrics(costs, &d.opt_cost, &seer_red.assignment);

    // PARQO: locally penalty-hedged assignment.
    let parqo_asg = parqo_assignment(&w.ess, d, costs, &cfg.parqo);
    let parqo = single_plan_metrics(costs, &d.opt_cost, &parqo_asg);
    let parqo_cardinality = {
        let mut used = parqo_asg;
        used.sort_unstable();
        used.dedup();
        used.len()
    };

    // Bouquet drivers, evaluated at every grid location in parallel.
    let subopt_bou = run_profile(bouquet, false)?;
    let bou_basic = bouquet_metrics(&subopt_bou, bouquet.stats.bouquet_cardinality);
    let bou_basic_harm = harm(&subopt_bou, &nat_worst);
    let distribution = robustness_distribution(&subopt_bou, &nat_worst);

    let (bou_opt, bou_opt_harm) = if cfg.run_optimized {
        let profile = run_profile(bouquet, true)?;
        let m = bouquet_metrics(&profile, bouquet.stats.bouquet_cardinality);
        let h = harm(&profile, &nat_worst);
        (Some(m), Some(h))
    } else {
        (None, None)
    };

    let guarantees = guarantee_row(bouquet);

    Ok(WorkloadEvaluation {
        name: w.name.clone(),
        dims: w.ess.d(),
        grid_points: n,
        cmin: bouquet.stats.cmin,
        cmax: bouquet.stats.cmax,
        num_contours: bouquet.stats.num_contours,
        nat,
        seer,
        parqo,
        bou_basic,
        bou_basic_harm,
        bou_opt,
        bou_opt_harm,
        distribution,
        posp_cardinality: d.plan_count(),
        seer_cardinality: seer_red.plan_count(),
        parqo_cardinality,
        bouquet_cardinality: bouquet.stats.bouquet_cardinality,
        guarantees,
        subopt_bou,
        nat_worst,
    })
}

/// Sub-optimality profile of a driver over the whole grid, in parallel.
pub fn run_profile(bouquet: &Bouquet, optimized: bool) -> Result<Vec<f64>, PbError> {
    let ess = &bouquet.workload.ess;
    let n = ess.num_points();
    pb_cost::par_map(pb_cost::Parallelism::auto(), n, |li| {
        let qa = ess.point(&ess.unlinear(li));
        let run = if optimized {
            bouquet.run_optimized(&qa)
        } else {
            bouquet.run_basic(&qa)
        }?;
        if !run.completed() {
            return Err(PbError::Identification(format!(
                "driver failed at grid point {li}"
            )));
        }
        Ok(run.suboptimality(bouquet.pic_cost_at(li)))
    })
    .into_iter()
    .collect()
}

/// Compute the Table 1 guarantee row: Equation 8 evaluated with the raw
/// POSP contour densities (λ = 0) and with the anorexically reduced
/// densities (budgets inflated by 1+λ).
pub fn guarantee_row(bouquet: &Bouquet) -> GuaranteeRow {
    let d = &bouquet.diagram;
    let lambda = bouquet.config.lambda;

    // Raw POSP density per contour.
    let posp_densities: Vec<usize> = bouquet
        .grading
        .steps
        .iter()
        .map(|&b| {
            let f = Contour::frontier(d, b);
            let mut plans: Vec<u32> = f.iter().map(|&li| d.optimal[li]).collect();
            plans.sort_unstable();
            plans.dedup();
            plans.len()
        })
        .collect();
    let anorexic_densities: Vec<usize> = bouquet.contours.iter().map(|c| c.density()).collect();

    let eq8 = |densities: &[usize], inflate: f64| -> f64 {
        let mut cum = 0.0;
        let mut worst: f64 = 0.0;
        for (k, (&nk, &step)) in densities.iter().zip(&bouquet.grading.steps).enumerate() {
            cum += nk as f64 * step * inflate;
            let floor = if k == 0 {
                bouquet.stats.cmin
            } else {
                bouquet.grading.steps[k - 1]
            };
            worst = worst.max(cum / floor);
        }
        worst
    };

    GuaranteeRow {
        rho_posp: posp_densities.iter().copied().max().unwrap_or(0),
        bound_posp: eq8(&posp_densities, 1.0),
        rho_anorexic: anorexic_densities.iter().copied().max().unwrap_or(0),
        bound_anorexic: eq8(&anorexic_densities, 1.0 + lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_2d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            16,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn full_evaluation_shapes_match_the_paper() {
        let w = eq_2d();
        let ev = evaluate(&w, &EvalConfig::default()).unwrap();
        // Bouquet's MSO must respect its theoretical bound.
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        assert!(ev.bou_basic.mso <= b.mso_bound() * (1.0 + 1e-9));
        // NAT is much worse in the worst case (the paper's headline shape).
        assert!(
            ev.nat.mso > ev.bou_basic.mso,
            "NAT MSO {} should exceed BOU MSO {}",
            ev.nat.mso,
            ev.bou_basic.mso
        );
        // SEER does not materially improve on NAT's MSO (Section 6.2).
        assert!(ev.seer.mso > ev.bou_basic.mso);
        // PARQO hedges locally but, like NAT/SEER, has no ladder bound.
        assert!(ev.parqo.mso >= 1.0 && ev.parqo.mso.is_finite());
        assert!(ev.parqo.mso > ev.bou_basic.mso);
        // Cardinalities: bouquet ≤ SEER ≤ POSP (Figure 18 shape).
        assert!(ev.bouquet_cardinality <= ev.posp_cardinality);
        assert!(ev.seer_cardinality <= ev.posp_cardinality);
        assert!(ev.parqo_cardinality <= ev.posp_cardinality);
    }

    #[test]
    fn optimized_driver_dominates_basic_on_average() {
        let w = eq_2d();
        let ev = evaluate(&w, &EvalConfig::default()).unwrap();
        let opt = ev.bou_opt.expect("optimized run requested");
        assert!(
            opt.aso <= ev.bou_basic.aso * 1.02,
            "optimized ASO {} should not exceed basic {}",
            opt.aso,
            ev.bou_basic.aso
        );
    }

    #[test]
    fn guarantee_row_anorexic_bound_is_tighter() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let row = guarantee_row(&b);
        assert!(row.rho_anorexic <= row.rho_posp);
        // The whole point of Section 3.3: reduction shrinks the bound
        // (possibly equal on tiny 2D spaces).
        assert!(row.bound_anorexic <= row.bound_posp * 1.2 + 1e-9);
        assert!(row.bound_posp >= 1.0 && row.bound_anorexic >= 1.0);
    }

    #[test]
    fn harm_is_bounded_by_mso_minus_one() {
        let w = eq_2d();
        let ev = evaluate(&w, &EvalConfig::default()).unwrap();
        assert!(ev.bou_basic_harm.max_harm <= ev.bou_basic.mso - 1.0 + 1e-9);
        assert!(ev.bou_basic_harm.harm_fraction <= 1.0);
    }
}
