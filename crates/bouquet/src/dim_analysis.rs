//! ESS dimensionality reduction by cost-sensitivity analysis.
//!
//! The paper's critique (Section 8) observes that bouquet identification
//! scales exponentially with dimensionality, and suggests computing "the
//! partial derivatives of the POSP plan cost functions along each dimension
//! … on a low-resolution mapping of the ESS", eliminating any dimension
//! whose cost impact is marginal. This module implements that analysis:
//! for each dimension we probe a coarse lattice of anchor locations and
//! measure the optimal-cost swing between the dimension's extremes; a
//! dimension whose maximum swing is below `1 + threshold` is frozen at its
//! upper bound (the conservative end — budgets can only over-provision).

use pb_plan::{QuerySpec, SelSpec};
use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Sensitivity of the optimal cost to one ESS dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimSensitivity {
    pub dim: usize,
    pub name: String,
    /// The axis's dimension kind (selection, pk-fk join, …), carried from
    /// the ESS declaration so reports can group sensitivities by kind.
    #[serde(default)]
    pub kind: pb_cost::DimKind,
    /// Maximum over anchors of `opt_cost(dim = hi) / opt_cost(dim = lo)`.
    pub max_cost_ratio: f64,
}

/// Probe each dimension's cost swing over a coarse anchor lattice of
/// `probe_res` points per *other* dimension (the Section 8 low-resolution
/// map). Total optimizer calls: `D · probe_res^(D−1) · 2`.
pub fn sensitivities(w: &Workload, probe_res: usize) -> Vec<DimSensitivity> {
    assert!(probe_res >= 1);
    let d = w.ess.d();
    let opt = w.optimizer();
    (0..d)
        .map(|dim| {
            let mut worst: f64 = 1.0;
            // Anchor lattice over the other dimensions (fractions).
            let others: Vec<usize> = (0..d).filter(|&x| x != dim).collect();
            let mut counters = vec![0usize; others.len()];
            loop {
                let mut fr = vec![0.0; d];
                for (slot, &od) in others.iter().enumerate() {
                    fr[od] = if probe_res == 1 {
                        0.5
                    } else {
                        counters[slot] as f64 / (probe_res - 1) as f64
                    };
                }
                fr[dim] = 0.0;
                let lo = opt.optimize(&w.ess.point_at_fractions(&fr)).cost;
                fr[dim] = 1.0;
                let hi = opt.optimize(&w.ess.point_at_fractions(&fr)).cost;
                worst = worst.max(hi / lo);
                // odometer
                let mut i = others.len();
                for slot in (0..others.len()).rev() {
                    if counters[slot] + 1 < probe_res {
                        i = slot;
                        break;
                    }
                }
                if i == others.len() {
                    break;
                }
                counters[i] += 1;
                for c in counters.iter_mut().skip(i + 1) {
                    *c = 0;
                }
            }
            DimSensitivity {
                dim,
                name: w.ess.dims[dim].name.clone(),
                kind: w.ess.dims[dim].kind,
                max_cost_ratio: worst,
            }
        })
        .collect()
}

/// Freeze every dimension whose cost swing is ≤ `1 + threshold` at its
/// upper bound, returning the reduced workload and the frozen dimensions.
/// Freezing at the top keeps every remaining guarantee conservative: true
/// costs can only be *lower* than the reduced model's.
pub fn eliminate_insensitive(
    w: &Workload,
    threshold: f64,
    probe_res: usize,
) -> (Workload, Vec<DimSensitivity>) {
    let sens = sensitivities(w, probe_res);
    let frozen: Vec<usize> = sens
        .iter()
        .filter(|s| s.max_cost_ratio <= 1.0 + threshold)
        .map(|s| s.dim)
        .collect();
    if frozen.is_empty() {
        return (w.clone(), Vec::new());
    }
    // Remap dimension ids: kept dims are renumbered densely.
    let d = w.ess.d();
    let mut remap: Vec<Option<usize>> = vec![None; d];
    let mut next = 0usize;
    for (dim, slot) in remap.iter_mut().enumerate() {
        if !frozen.contains(&dim) {
            *slot = Some(next);
            next += 1;
        }
    }
    let fix_value = |dim: usize| w.ess.dims[dim].hi;
    let rewrite = |spec: &SelSpec| -> SelSpec {
        match *spec {
            SelSpec::Fixed(v) => SelSpec::Fixed(v),
            SelSpec::ErrorProne(dim) => match remap[dim] {
                Some(nd) => SelSpec::ErrorProne(nd),
                None => SelSpec::Fixed(fix_value(dim)),
            },
            SelSpec::Flipped { dim, pivot } => match remap[dim] {
                Some(nd) => SelSpec::Flipped { dim: nd, pivot },
                // Frozen at the coordinate's top => the *lowest* actual
                // selectivity of the flipped predicate; stay conservative
                // by freezing at the flipped maximum instead.
                None => SelSpec::Fixed((pivot / w.ess.dims[dim].lo).clamp(0.0, 1.0)),
            },
        }
    };
    let mut query: QuerySpec = w.query.clone();
    pb_plan::QueryBuilder::rewrite_specs(&mut query, rewrite);
    query.num_dims = next;
    let dims: Vec<_> = (0..d)
        .filter(|dim| remap[*dim].is_some())
        .map(|dim| w.ess.dims[dim].clone())
        .collect();
    let res: Vec<_> = (0..d)
        .filter(|dim| remap[*dim].is_some())
        .map(|dim| w.ess.res[dim])
        .collect();
    let ess = pb_cost::Ess::new(dims, res);
    let reduced = Workload::new(
        format!("{}(reduced)", w.name),
        w.catalog.clone(),
        query,
        ess,
        w.model.clone(),
    );
    let dropped = sens
        .into_iter()
        .filter(|s| frozen.contains(&s.dim))
        .collect();
    (reduced, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::{Bouquet, BouquetConfig};
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder};

    /// 3D workload where the third dimension is nearly cost-irrelevant
    /// (a selection on the tiny `nation` relation).
    fn workload_with_dead_dim() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "dead_dim");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let n = qb.rel("nation");
        let s = qb.rel("supplier");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_suppkey", s, "s_suppkey", SelSpec::Fixed(1e-4));
        qb.join(s, "s_nationkey", n, "n_nationkey", SelSpec::Fixed(0.04));
        // The "dead" dimension: a selection on nation (25 rows) whose cost
        // impact is swamped by the lineitem-side work.
        qb.select(n, "n_name", CmpOp::Lt, 20.0, SelSpec::ErrorProne(2));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 5e-10, 5e-6),
                EssDim::new("n_name", 0.04, 1.0),
            ],
            10,
        );
        Workload::new("dead_dim", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn sensitivity_separates_live_from_dead_dimensions() {
        let w = workload_with_dead_dim();
        let sens = sensitivities(&w, 3);
        assert_eq!(sens.len(), 3);
        assert!(sens[0].max_cost_ratio > 2.0, "price dim is live: {sens:?}");
        assert!(sens[1].max_cost_ratio > 2.0, "join dim is live: {sens:?}");
        assert!(
            sens[2].max_cost_ratio < 2.0,
            "nation dim should be nearly dead: {sens:?}"
        );
    }

    #[test]
    fn elimination_reduces_dimensionality_and_preserves_discovery() {
        let w = workload_with_dead_dim();
        let (reduced, dropped) = eliminate_insensitive(&w, 1.0, 3);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].dim, 2);
        assert_eq!(reduced.d(), 2);
        reduced.query.validate(&reduced.catalog);
        // A bouquet on the reduced space still works end to end.
        let b = Bouquet::identify(&reduced, &BouquetConfig::default()).unwrap();
        let qa = reduced.ess.point_at_fractions(&[0.6, 0.6]);
        let run = b.run_basic(&qa).unwrap();
        assert!(run.completed());
        assert!(run.suboptimality(b.pic_cost(&qa)) <= b.mso_bound() * (1.0 + 1e-9));
    }

    #[test]
    fn nothing_eliminated_with_zero_threshold() {
        let w = workload_with_dead_dim();
        let (reduced, dropped) = eliminate_insensitive(&w, 0.0, 2);
        assert!(dropped.is_empty());
        assert_eq!(reduced.d(), w.d());
    }
}
