//! The axis-flip remedy for PCM-violating dimensions (paper, Section 2).
//!
//! The bouquet machinery requires Plan Cost Monotonicity: optimal cost
//! non-decreasing in every ESS coordinate. Existential operators (NOT
//! EXISTS / anti-joins) break it — their output *shrinks* as the match
//! selectivity grows, so plan costs decrease along that axis. The paper's
//! remedy: "the basic bouquet technique can be utilized by the simple
//! expedient of plotting the ESS with (1 − s) instead of s on the
//! selectivity axes"; only surfaces with an interior extremum are truly out
//! of reach.
//!
//! Our grids are geometric, so the reflection is realised multiplicatively:
//! a decreasing dimension's coordinate `v` maps to the actual selectivity
//! `pivot / v` with `pivot = lo · hi`, which is a bijection of `[lo, hi]`
//! onto itself that reverses the axis. [`flip_decreasing`] probes each
//! dimension's direction, rewrites the query's selectivity specs
//! accordingly, and rejects genuinely non-monotone dimensions.

use pb_plan::{QueryBuilder, SelSpec};
use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Direction of the optimal-cost surface along one ESS dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimDirection {
    Increasing,
    Decreasing,
    /// Interior extremum — not amenable to the bouquet technique.
    NonMonotone,
}

/// Probe the optimal cost along each axis (at `anchors` anchor settings of
/// the other dimensions, `steps` samples per axis) and classify it.
pub fn dim_directions(w: &Workload, anchors: usize, steps: usize) -> Vec<DimDirection> {
    assert!(steps >= 2);
    let d = w.ess.d();
    let opt = w.optimizer();
    (0..d)
        .map(|dim| {
            let mut increasing = true;
            let mut decreasing = true;
            for a in 0..anchors.max(1) {
                let anchor = if anchors <= 1 {
                    0.5
                } else {
                    a as f64 / (anchors - 1) as f64
                };
                let mut last = None;
                for t in 0..steps {
                    let mut fr = vec![anchor; d];
                    fr[dim] = t as f64 / (steps - 1) as f64;
                    let c = opt.optimize(&w.ess.point_at_fractions(&fr)).cost;
                    if let Some(prev) = last {
                        if c > prev * (1.0 + 1e-9) {
                            decreasing = false;
                        }
                        if c < prev * (1.0 - 1e-9) {
                            increasing = false;
                        }
                    }
                    last = Some(c);
                }
            }
            match (increasing, decreasing) {
                (true, _) => DimDirection::Increasing,
                (false, true) => DimDirection::Decreasing,
                (false, false) => DimDirection::NonMonotone,
            }
        })
        .collect()
}

/// Flip every decreasing dimension's axis; errors on non-monotone ones.
/// Returns the rewritten workload and the per-dimension flip flags.
pub fn flip_decreasing(w: &Workload) -> Result<(Workload, Vec<bool>), String> {
    let dirs = dim_directions(w, 2, 4);
    if let Some(bad) = dirs.iter().position(|&d| d == DimDirection::NonMonotone) {
        return Err(format!(
            "dimension {bad} ({}) has an interior cost extremum; \
             not amenable to the bouquet technique (paper, Section 2)",
            w.ess.dims[bad].name
        ));
    }
    let flips: Vec<bool> = dirs
        .iter()
        .map(|&d| d == DimDirection::Decreasing)
        .collect();
    if !flips.iter().any(|&f| f) {
        return Ok((w.clone(), flips));
    }
    let mut query = w.query.clone();
    QueryBuilder::rewrite_specs(&mut query, |spec| match *spec {
        SelSpec::ErrorProne(dim) if flips[dim] => {
            let d = &w.ess.dims[dim];
            SelSpec::Flipped {
                dim,
                pivot: d.lo * d.hi,
            }
        }
        // Unflip a previously-flipped dimension that now reads decreasing
        // (flip is an involution).
        SelSpec::Flipped { dim, .. } if flips[dim] => SelSpec::ErrorProne(dim),
        other => other,
    });
    let flipped = Workload::new(
        w.name.clone(),
        w.catalog.clone(),
        query,
        w.ess.clone(),
        w.model.clone(),
    );
    Ok((flipped, flips))
}

/// Translate a true (raw-selectivity) location into the flipped ESS
/// coordinates, so callers can express `qa` in natural terms.
pub fn to_coordinates(w: &Workload, flips: &[bool], raw: &[f64]) -> pb_cost::SelPoint {
    let vals = raw
        .iter()
        .enumerate()
        .map(|(d, &s)| {
            if flips[d] {
                let dim = &w.ess.dims[d];
                (dim.lo * dim.hi / s).clamp(dim.lo, dim.hi)
            } else {
                s
            }
        })
        .collect();
    pb_cost::SelPoint(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::{Bouquet, BouquetConfig};
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder};

    /// part ⋈ lineitem with a NOT EXISTS(partsupp) anti-join whose match
    /// selectivity is error-prone — plan costs *decrease* along that axis.
    fn anti_workload() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "anti");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let ps = qb.rel("partsupp");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.anti_join(l, "l_partkey", ps, "ps_partkey", SelSpec::ErrorProne(1));
        let q = qb.build();
        let hi = 1.0 / cat.table("partsupp").unwrap().rows;
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("anti l⋈ps", hi / 100.0, hi),
            ],
            12,
        );
        Workload::new("ANTI_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn anti_join_dimension_reads_decreasing() {
        let w = anti_workload();
        let dirs = dim_directions(&w, 2, 4);
        assert_eq!(dirs[0], DimDirection::Increasing);
        assert_eq!(dirs[1], DimDirection::Decreasing);
    }

    #[test]
    fn identification_fails_before_flip_and_succeeds_after() {
        let w = anti_workload();
        let err = Bouquet::identify(&w, &BouquetConfig::default());
        assert!(
            err.is_err() && err.unwrap_err().to_string().contains("Monotonicity"),
            "raw anti-join space must violate PCM"
        );
        let (flipped, flips) = flip_decreasing(&w).unwrap();
        assert_eq!(flips, vec![false, true]);
        let b = Bouquet::identify(&flipped, &BouquetConfig::default())
            .expect("flipped space is PCM-clean");
        // Full guarantee over the flipped grid.
        for li in 0..flipped.ess.num_points() {
            let qa = flipped.ess.point(&flipped.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            assert!(run.completed());
            assert!(
                run.suboptimality(b.pic_cost_at(li)) <= b.mso_bound() * (1.0 + 1e-9),
                "bound violated at {li}"
            );
        }
    }

    #[test]
    fn coordinate_translation_reverses_axis() {
        let w = anti_workload();
        let (flipped, flips) = flip_decreasing(&w).unwrap();
        let dim = &flipped.ess.dims[1];
        // The highest raw selectivity maps to the lowest coordinate.
        let q = to_coordinates(&flipped, &flips, &[0.5, dim.hi]);
        assert!((q[1] - dim.lo).abs() < 1e-12 * dim.lo);
        let q = to_coordinates(&flipped, &flips, &[0.5, dim.lo]);
        assert!((q[1] - dim.hi).abs() < 1e-9 * dim.hi);
        // Unflipped dims pass through.
        assert_eq!(q[0], 0.5);
    }

    #[test]
    fn flip_is_an_involution() {
        let w = anti_workload();
        let (once, _) = flip_decreasing(&w).unwrap();
        // The flipped space is increasing everywhere; flipping again is a
        // no-op.
        let (twice, flips2) = flip_decreasing(&once).unwrap();
        assert!(flips2.iter().all(|&f| !f));
        assert_eq!(once.query, twice.query);
    }

    #[test]
    fn plain_workloads_need_no_flip() {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "plain");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("s", 1e-4, 1.0)], 10);
        let w = Workload::new("plain", cat.clone(), q, ess, CostModel::postgresish());
        let (same, flips) = flip_decreasing(&w).unwrap();
        assert!(flips.iter().all(|&f| !f));
        assert_eq!(same.query, w.query);
    }
}
