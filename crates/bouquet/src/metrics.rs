//! Robustness metrics (paper, Section 2): SubOpt, MSO, ASO, MaxHarm, and
//! the spatial robustness distribution of Figure 16.

use pb_cost::CostMatrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of a strategy's sub-optimality profile over the ESS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Maximum sub-optimality over the space (Equation 3).
    pub mso: f64,
    /// Linear grid index where the MSO is attained.
    pub mso_location: usize,
    /// Average sub-optimality (Equation 4).
    pub aso: f64,
    /// Number of distinct plans the strategy can execute.
    pub plan_cardinality: usize,
}

/// Per-location worst-case sub-optimality of a *single-plan* strategy that
/// picks `assignment[qe]` when it estimates location `qe` (NAT and SEER).
///
/// `SubOpt_worst(qa) = max_qe c_{assignment(qe)}(qa) / opt(qa)`; because the
/// maximum ranges only over the distinct assigned plans, it is computed in
/// `O(|plans| · |grid|)` rather than `O(|grid|²)`.
pub fn single_plan_worst_profile(
    costs: &CostMatrix,
    opt_cost: &[f64],
    assignment: &[usize],
) -> Vec<f64> {
    let mut used: Vec<usize> = assignment.to_vec();
    used.sort_unstable();
    used.dedup();
    (0..opt_cost.len())
        .map(|qa| {
            used.iter()
                .map(|&p| costs[p][qa] / opt_cost[qa])
                .fold(1.0f64, f64::max)
        })
        .collect()
}

/// MSO/ASO for a single-plan strategy under the paper's uniformity
/// assumption (estimates and actuals uniform over the grid).
pub fn single_plan_metrics(
    costs: &CostMatrix,
    opt_cost: &[f64],
    assignment: &[usize],
) -> MetricsSummary {
    let n = opt_cost.len();
    assert_eq!(assignment.len(), n);
    let worst = single_plan_worst_profile(costs, opt_cost, assignment);
    let (mso_location, mso) = worst
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, 0.0));

    // ASO: E_{qe,qa}[c_{P(qe)}(qa)/opt(qa)] = E_qa[ Σ_P w_P c_P(qa) ] / opt(qa)
    // with w_P the fraction of the grid assigned to P.
    let mut used: Vec<usize> = assignment.to_vec();
    used.sort_unstable();
    used.dedup();
    let mut weight = vec![0.0f64; costs.len()];
    for &p in assignment {
        weight[p] += 1.0 / n as f64;
    }
    let aso = (0..n)
        .map(|qa| used.iter().map(|&p| weight[p] * costs[p][qa]).sum::<f64>() / opt_cost[qa])
        .sum::<f64>()
        / n as f64;

    MetricsSummary {
        mso,
        mso_location,
        aso,
        plan_cardinality: used.len(),
    }
}

/// MSO/ASO for a bouquet given its per-location sub-optimality profile
/// `subopt[qa] = c_bouquet(qa) / opt(qa)` (estimates are "don't care").
pub fn bouquet_metrics(subopt: &[f64], plan_cardinality: usize) -> MetricsSummary {
    let (mso_location, mso) = subopt
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, 0.0));
    let aso = subopt.iter().sum::<f64>() / subopt.len() as f64;
    MetricsSummary {
        mso,
        mso_location,
        aso,
        plan_cardinality,
    }
}

/// MaxHarm (Equation 5): how much worse the bouquet can be than the native
/// optimizer's *worst* case at the same location, and how often harm occurs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarmReport {
    /// `MH = max_qa (SubOpt_bou(qa) / SubOpt_worst_nat(qa) − 1)`.
    pub max_harm: f64,
    pub max_harm_location: usize,
    /// Fraction of locations with positive harm.
    pub harm_fraction: f64,
}

pub fn harm(bouquet_subopt: &[f64], nat_worst: &[f64]) -> HarmReport {
    assert_eq!(bouquet_subopt.len(), nat_worst.len());
    let mut max_harm = f64::NEG_INFINITY;
    let mut loc = 0;
    let mut harmed = 0usize;
    for (i, (&b, &w)) in bouquet_subopt.iter().zip(nat_worst).enumerate() {
        let h = b / w - 1.0;
        if h > max_harm {
            max_harm = h;
            loc = i;
        }
        if h > 0.0 {
            harmed += 1;
        }
    }
    HarmReport {
        max_harm,
        max_harm_location: loc,
        harm_fraction: harmed as f64 / nat_worst.len() as f64,
    }
}

/// Spatial distribution of robustness enhancement (Figure 16): the fraction
/// of locations whose improvement factor `SubOpt_worst_nat / SubOpt_bou`
/// falls in each decade bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessDistribution {
    /// `(bucket label, fraction of locations)`, buckets: <1, [1,10),
    /// [10,100), [100,1000), ≥1000.
    pub buckets: Vec<(String, f64)>,
}

pub fn robustness_distribution(
    bouquet_subopt: &[f64],
    nat_worst: &[f64],
) -> RobustnessDistribution {
    let edges = [1.0, 10.0, 100.0, 1000.0];
    let labels = ["<1 (harm)", "[1,10)", "[10,100)", "[100,1000)", ">=1000"];
    let mut counts = [0usize; 5];
    for (&b, &w) in bouquet_subopt.iter().zip(nat_worst) {
        let f = w / b;
        let idx = edges.iter().position(|&e| f < e).unwrap_or(edges.len());
        counts[idx] += 1;
    }
    let n = bouquet_subopt.len() as f64;
    RobustnessDistribution {
        buckets: labels
            .iter()
            .zip(counts)
            .map(|(l, c)| (l.to_string(), c as f64 / n))
            .collect(),
    }
}

/// A prior distribution over grid locations. The paper's base definitions
/// assume estimates and actuals uniform over the ESS, "easily extended to
/// the general case where the estimated and actual locations have
/// idiosyncratic probability distributions" (Section 2) — this is that
/// extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationPrior {
    /// Per-grid-point probability; sums to 1.
    pub weights: Vec<f64>,
}

impl LocationPrior {
    pub fn uniform(n: usize) -> Self {
        LocationPrior {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// A prior proportional to `decay^rank` where rank orders points by
    /// their optimal cost — `decay < 1` favours cheap (low-selectivity)
    /// locations, `decay > 1` expensive ones.
    pub fn cost_ranked(opt_cost: &[f64], decay: f64) -> Self {
        assert!(decay > 0.0);
        let mut order: Vec<usize> = (0..opt_cost.len()).collect();
        order.sort_by(|&a, &b| opt_cost[a].total_cmp(&opt_cost[b]));
        let mut weights = vec![0.0; opt_cost.len()];
        let mut w = 1.0;
        let mut total = 0.0;
        for &li in &order {
            weights[li] = w;
            total += w;
            w *= decay;
            // Avoid denormal underflow on big grids.
            if w < 1e-300 {
                w = 1e-300;
            }
        }
        for v in &mut weights {
            *v /= total;
        }
        LocationPrior { weights }
    }
}

/// Weighted ASO for a single-plan strategy: expectation over independent
/// qe ~ prior, qa ~ prior of `c_{P(qe)}(qa) / opt(qa)`.
pub fn single_plan_aso_weighted(
    costs: &CostMatrix,
    opt_cost: &[f64],
    assignment: &[usize],
    prior: &LocationPrior,
) -> f64 {
    let n = opt_cost.len();
    assert_eq!(prior.weights.len(), n);
    let mut plan_weight = vec![0.0f64; costs.len()];
    for (qe, &p) in assignment.iter().enumerate() {
        plan_weight[p] += prior.weights[qe];
    }
    (0..n)
        .map(|qa| {
            let expected_cost: f64 = plan_weight
                .iter()
                .enumerate()
                .filter(|(_, &w)| w > 0.0)
                .map(|(p, &w)| w * costs[p][qa])
                .sum();
            prior.weights[qa] * expected_cost / opt_cost[qa]
        })
        .sum()
}

/// Weighted ASO for a bouquet: expectation over qa ~ prior of its
/// sub-optimality profile (estimates are "don't care").
pub fn bouquet_aso_weighted(subopt: &[f64], prior: &LocationPrior) -> f64 {
    subopt
        .iter()
        .zip(&prior.weights)
        .map(|(&s, &w)| s * w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two plans over three points; plan 0 optimal at 0/1, plan 1 at 2.
    fn fixture() -> (CostMatrix, Vec<f64>, Vec<usize>) {
        let costs = CostMatrix::from_rows(vec![vec![10.0, 20.0, 400.0], vec![100.0, 90.0, 40.0]]);
        let opt = vec![10.0, 20.0, 40.0];
        let assignment = vec![0, 0, 1];
        (costs, opt, assignment)
    }

    #[test]
    fn worst_profile_maximizes_over_used_plans() {
        let (costs, opt, asg) = fixture();
        let w = single_plan_worst_profile(&costs, &opt, &asg);
        assert_eq!(w, vec![10.0, 4.5, 10.0]);
    }

    #[test]
    fn single_plan_metrics_mso_and_aso() {
        let (costs, opt, asg) = fixture();
        let m = single_plan_metrics(&costs, &opt, &asg);
        assert_eq!(m.mso, 10.0);
        assert_eq!(m.plan_cardinality, 2);
        // weights: plan0 2/3, plan1 1/3.
        let expect_aso = ((2.0 / 3.0 * 10.0 + 1.0 / 3.0 * 100.0) / 10.0
            + (2.0 / 3.0 * 20.0 + 1.0 / 3.0 * 90.0) / 20.0
            + (2.0 / 3.0 * 400.0 + 1.0 / 3.0 * 40.0) / 40.0)
            / 3.0;
        assert!((m.aso - expect_aso).abs() < 1e-12);
    }

    #[test]
    fn bouquet_metrics_max_and_mean() {
        let m = bouquet_metrics(&[2.0, 3.0, 2.5], 4);
        assert_eq!(m.mso, 3.0);
        assert_eq!(m.mso_location, 1);
        assert!((m.aso - 2.5).abs() < 1e-12);
    }

    #[test]
    fn harm_detects_locations_worse_than_nat_worst() {
        let r = harm(&[2.0, 12.0], &[4.0, 10.0]);
        assert!((r.max_harm - 0.2).abs() < 1e-12);
        assert_eq!(r.max_harm_location, 1);
        assert!((r.harm_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_prior_recovers_unweighted_aso() {
        let (costs, opt, asg) = fixture();
        let prior = LocationPrior::uniform(3);
        let weighted = single_plan_aso_weighted(&costs, &opt, &asg, &prior);
        let plain = single_plan_metrics(&costs, &opt, &asg).aso;
        assert!((weighted - plain).abs() < 1e-12);
        let b = bouquet_aso_weighted(&[2.0, 3.0, 2.5], &prior);
        assert!((b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_priors_shift_the_average() {
        let (costs, opt, asg) = fixture();
        // Heavily favour cheap locations.
        let cheap = LocationPrior::cost_ranked(&opt, 0.01);
        let dear = LocationPrior::cost_ranked(&opt, 100.0);
        assert!((cheap.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let a_cheap = single_plan_aso_weighted(&costs, &opt, &asg, &cheap);
        let a_dear = single_plan_aso_weighted(&costs, &opt, &asg, &dear);
        // At the cheap corner, NAT's plan-0 choice is right (SubOpt ~1); at
        // the dear corner plan 0 is 10x off.
        assert!(a_cheap < a_dear, "{a_cheap} vs {a_dear}");
    }

    #[test]
    fn distribution_buckets_sum_to_one() {
        let bou = vec![1.0, 2.0, 3.0, 4.0];
        let nat = vec![0.5, 30.0, 500.0, 100_000.0];
        let d = robustness_distribution(&bou, &nat);
        let total: f64 = d.buckets.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.buckets[0].1, 0.25); // 0.5/1.0 < 1 → harm bucket
        assert_eq!(d.buckets[2].1, 0.25); // 15 → [10,100)
        assert_eq!(d.buckets[4].1, 0.25); // 25000 → >=1000
    }
}
