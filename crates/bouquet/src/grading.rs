//! Geometric isocost gradings (paper, Section 3.1).
//!
//! The PIC is sliced by a geometric progression of isocost steps
//! `IC_1 … IC_m` with common ratio `r`, anchored so that
//! `IC_1 / r < C_min ≤ IC_1` and `IC_m = C_max`. Theorem 1 bounds the 1D MSO
//! by `r²/(r−1)`, minimized at `r = 2` (the "doubling" grading), and
//! Theorem 2 shows no deterministic algorithm can beat the resulting 4.

use serde::{Deserialize, Serialize};

/// A geometric progression of isocost budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsoCostGrading {
    pub r: f64,
    pub steps: Vec<f64>,
}

impl IsoCostGrading {
    /// Build the grading for a PIC spanning `[cmin, cmax]` with ratio `r`.
    ///
    /// Steps are anchored at the top: `IC_m = cmax`, `IC_k = cmax / r^(m−k)`,
    /// with `m = ⌈log_r(cmax/cmin)⌉` so the boundary conditions of
    /// Section 3.1 hold.
    pub fn geometric(cmin: f64, cmax: f64, r: f64) -> Self {
        assert!(r > 1.0, "common ratio must exceed 1");
        assert!(
            cmin > 0.0 && cmax >= cmin,
            "need 0 < cmin <= cmax (got {cmin}, {cmax})"
        );
        let m = if cmax == cmin {
            1
        } else {
            ((cmax / cmin).ln() / r.ln()).ceil().max(1.0) as usize
        };
        let steps = (1..=m).map(|k| cmax / r.powi((m - k) as i32)).collect();
        IsoCostGrading { r, steps }
    }

    /// Number of steps, `m`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Budget of step `k` (0-based).
    pub fn budget(&self, k: usize) -> f64 {
        self.steps[k]
    }

    /// Sum of the first `k+1` budgets — the worst-case exploratory spend
    /// after finishing on step `k` (Equation 6).
    pub fn cumulative(&self, k: usize) -> f64 {
        self.steps[..=k].iter().sum()
    }

    /// First step whose budget is at least `cost` (where a query of that
    /// optimal cost will be discovered).
    pub fn step_for_cost(&self, cost: f64) -> usize {
        self.steps
            .iter()
            .position(|&b| b >= cost)
            .unwrap_or(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_conditions_hold() {
        for (cmin, cmax, r) in [
            (10.0, 1000.0, 2.0),
            (1.0, 1.0, 2.0),
            (3.0, 17.0, 2.0),
            (5.0, 5000.0, 3.0),
            (7.2, 7.3, 2.0),
        ] {
            let g = IsoCostGrading::geometric(cmin, cmax, r);
            let m = g.len();
            assert!(m >= 1);
            // IC_m = cmax
            assert!((g.budget(m - 1) - cmax).abs() < 1e-9 * cmax);
            // IC_1 >= cmin > IC_1 / r
            assert!(
                g.budget(0) >= cmin * (1.0 - 1e-12),
                "IC1 {} < cmin {cmin}",
                g.budget(0)
            );
            assert!(g.budget(0) / r < cmin * (1.0 + 1e-12));
            // geometric with ratio r
            for w in g.steps.windows(2) {
                assert!((w[1] / w[0] - r).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn doubling_grading_m_matches_paper_formula() {
        // m = ceil(log_r(Cmax/Cmin))
        let g = IsoCostGrading::geometric(100.0, 100.0 * 2f64.powi(7), 2.0);
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn cumulative_is_prefix_sum() {
        let g = IsoCostGrading::geometric(1.0, 64.0, 2.0);
        // steps: 1,2,4,...,64? anchored at top: 64/2^5=2 ... check via sums.
        let total: f64 = g.steps.iter().sum();
        assert!((g.cumulative(g.len() - 1) - total).abs() < 1e-12);
        assert!((g.cumulative(0) - g.budget(0)).abs() < 1e-12);
    }

    #[test]
    fn step_for_cost_selects_first_sufficient_budget() {
        let g = IsoCostGrading::geometric(10.0, 160.0, 2.0);
        assert_eq!(g.step_for_cost(g.budget(0) * 0.5), 0);
        assert_eq!(g.step_for_cost(g.budget(0)), 0);
        assert_eq!(g.step_for_cost(g.budget(0) * 1.01), 1);
        assert_eq!(g.step_for_cost(1e12), g.len() - 1);
    }

    #[test]
    #[should_panic(expected = "common ratio")]
    fn ratio_one_rejected() {
        IsoCostGrading::geometric(1.0, 10.0, 1.0);
    }
}
