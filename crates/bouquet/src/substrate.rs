//! Execution substrates: the runtime surface the bouquet drivers drive.
//!
//! The paper's drivers (Figures 7 and 13) only ever need three primitives
//! from the thing that executes plans — a budgeted execution, a budgeted
//! execution with selectivity monitoring, and an unbudgeted native run for
//! the degradation rung. [`ExecutionSubstrate`] captures exactly that
//! contract, so the same driver loops run against
//!
//! * [`SimulatorSubstrate`] — the cost-unit simulator
//!   ([`pb_executor::Executor`]), which "executes" a plan by comparing its
//!   actual cost at the true location `qa` against the budget. This is the
//!   substrate every MSO/ASO number in the evaluation is computed on, and
//!   its outputs are **byte-identical** to the pre-substrate drivers
//!   (guarded by `tests/substrate_equivalence.rs` golden snapshots).
//! * [`EngineSubstrate`] — the real vectorized engine
//!   ([`pb_engine::Engine`]) running generated tuples, with budgets enforced
//!   by the engine's cost ledger and selectivities observed from node tuple
//!   counters ([`pb_engine::Instrumentation::observed_selectivity`]) at the
//!   node picked by [`pb_executor::learnable_node`] inversion.
//!
//! The drivers never see `qa` directly: everything they learn arrives
//! through [`SubstrateOutcome::observed`] (selectivity lower bounds) and
//! [`SubstrateOutcome::resolved`] (exactly-known dimensions with their
//! values), which is precisely the information a real system has at run
//! time. Layering: `pb-executor` and `pb-engine` are independent leaves;
//! `pb-bouquet` sits above both and owns the trait.

use pb_cost::{NodeCost, Parallelism, SelPoint};
use pb_engine::{Database, Engine, EngineOutcome, ResumeBook};
use pb_executor::{learnable_node, CostResumeBook, Executor};
use pb_faults::{CancelToken, FaultInjector, PbError};
use pb_optimizer::PlanId;
use pb_plan::{DimId, PlanNode, QuerySpec};
use serde::{Deserialize, Serialize};

use crate::bouquet::Bouquet;

/// What one partial (budget-limited) execution told the driver.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateOutcome {
    /// Cost units actually consumed (charged to the run unconditionally).
    /// With checkpoint/resume enabled this is the cost of the *un-executed
    /// suffix only*: the restart-identical cost minus [`Self::reused`].
    pub spent: f64,
    /// Cost units fast-forwarded from checkpoints of earlier executions
    /// instead of re-executed. Zero on the plain paths. `spent + reused`
    /// is always the restart-semantics cost — resume never changes what is
    /// learned, only what is paid.
    pub reused: f64,
    /// The *query* finished (never true for spilled executions).
    pub completed: bool,
    /// Whether this execution ran a spilled prefix (Section 5.3).
    pub spilled: bool,
    /// Selectivity lower bounds observed from the execution:
    /// `(dim, new_lower_bound)`, first-quadrant safe.
    pub observed: Vec<(DimId, f64)>,
    /// Dimensions whose error node consumed its entire input, with the now
    /// exactly-known selectivity: `(dim, true_value)`.
    pub resolved: Vec<(DimId, f64)>,
    /// Set when the execution died on a fault rather than completing or
    /// exhausting its budget.
    pub error: Option<PbError>,
}

impl SubstrateOutcome {
    fn plain(spent: f64, completed: bool, error: Option<PbError>) -> Self {
        SubstrateOutcome {
            spent,
            reused: 0.0,
            completed,
            spilled: false,
            observed: Vec::new(),
            resolved: Vec::new(),
            error,
        }
    }
}

/// Aggregate counters for a substrate's checkpoint/resume machinery, read
/// through [`ExecutionSubstrate::resume_stats`] (all-zero when resume is
/// unsupported or disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResumeStats {
    /// Total cost units fast-forwarded from checkpoints across the run.
    pub reused_cost: f64,
    /// Executions that engaged at least one checkpoint.
    pub resumed_execs: usize,
    /// Checkpoints currently retained.
    pub checkpoints: usize,
}

/// A runtime surface the bouquet drivers can discover against.
///
/// Implementations are bound to one bouquet and one true query location
/// (explicitly for the simulator, implicitly — via the generated data — for
/// the engine) at construction time; `&mut self` lets them keep scratch
/// state (evaluation stacks, result-row counters) across calls.
pub trait ExecutionSubstrate {
    /// Budget-limited execution of bouquet plan `pid` with no monitoring —
    /// the basic (Figure 7) driver's primitive.
    fn execute_partial(&mut self, pid: PlanId, budget: f64) -> SubstrateOutcome;

    /// Budget-limited execution with selectivity monitoring — the optimized
    /// (Figure 13) driver's primitive. With `spilled` the pipeline is broken
    /// above the first unresolved error node, so the whole budget works on
    /// discovery and the query cannot complete here.
    fn execute_monitored(
        &mut self,
        pid: PlanId,
        resolved: &[bool],
        budget: f64,
        spilled: bool,
    ) -> SubstrateOutcome;

    /// Unbudgeted execution of bouquet plan `pid` — the degradation rung
    /// (classical query processing: one plan, no safety net).
    fn run_native(&mut self, pid: PlanId) -> SubstrateOutcome;

    /// Cost of the native optimizer baseline: pick the optimizer's plan at
    /// the *estimated* location `point` and run it to completion, returning
    /// the actual cost. This is the NAT row of Table 3.
    fn run_native_at(&mut self, point: &SelPoint) -> f64;

    /// Whether a fault injector is armed (drivers relax first-quadrant
    /// assertions and clamp observations when it is).
    fn faults_active(&self) -> bool;

    /// Opt in to checkpoint/resume: completed operator prefixes of partial
    /// executions are checkpointed and later executions sharing them (the
    /// same plan at the next contour budget, or a different plan sharing a
    /// completed join-subtree prefix) are fast-forwarded instead of
    /// re-executed. Observed selectivities, abort points and completion
    /// decisions stay bit-identical to restart semantics; only
    /// [`SubstrateOutcome::spent`] shrinks by the reused cost. Returns
    /// whether the substrate supports resume (the default does not).
    fn enable_checkpoint_resume(&mut self) -> bool {
        false
    }

    /// Counters for the resume machinery; all-zero when resume is
    /// unsupported or was never enabled.
    fn resume_stats(&self) -> ResumeStats {
        ResumeStats::default()
    }
}

// ---------------------------------------------------------------------------
// Cost-unit simulator substrate
// ---------------------------------------------------------------------------

/// The cost-unit simulator as a substrate: plan executions are resolved by
/// [`pb_executor::Executor`] against the true location `qa`, using the
/// bouquet's compiled cost programs on the plain path (the basic driver's
/// hot loop re-costs whole pool plans once per budget probe).
pub struct SimulatorSubstrate<'a> {
    b: &'a Bouquet,
    qa: SelPoint,
    ex: Executor<'a>,
    stack: Vec<NodeCost>,
    /// Checkpoint book for resumable executions (`None` until
    /// [`ExecutionSubstrate::enable_checkpoint_resume`]).
    resume: Option<CostResumeBook>,
    reused_cost: f64,
    resumed_execs: usize,
    /// Byte cap applied to the resume book (`0` = unbounded).
    resume_byte_cap: usize,
    /// Cooperative cancellation token, polled at the entry of every
    /// budgeted execution (executions themselves are closed-form and
    /// instantaneous on this substrate).
    cancel: Option<CancelToken>,
}

impl<'a> SimulatorSubstrate<'a> {
    /// Bind the simulator to `bouquet` at true location `qa` with an armed
    /// (or inert) fault injector. Fails if `qa`'s dimensionality does not
    /// match the workload's ESS.
    pub fn new(
        bouquet: &'a Bouquet,
        qa: &SelPoint,
        faults: FaultInjector,
    ) -> Result<Self, PbError> {
        let d = bouquet.workload.ess.d();
        if qa.dims() != d {
            return Err(PbError::DimensionMismatch {
                expected: d,
                got: qa.dims(),
            });
        }
        let ex =
            Executor::with_perturbation(bouquet.workload.coster(), bouquet.config.perturbation)
                .with_faults(faults);
        Ok(SimulatorSubstrate {
            b: bouquet,
            qa: qa.clone(),
            ex,
            stack: Vec::new(),
            resume: None,
            reused_cost: 0.0,
            resumed_execs: 0,
            resume_byte_cap: 0,
            cancel: None,
        })
    }

    /// Thread a cooperative cancellation token: a tripped token makes every
    /// subsequent budgeted execution return [`PbError::Cancelled`] without
    /// spending, so the driver stops at its next step.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Bound the resume book to roughly `cap` bytes (`0` = unbounded),
    /// evicting least-recently-used checkpoints past it. Applies to the
    /// current book immediately and to any book created later.
    pub fn set_resume_byte_cap(&mut self, cap: usize) {
        self.resume_byte_cap = cap;
        if let Some(book) = self.resume.as_mut() {
            book.set_byte_cap(cap);
        }
    }

    /// Detach the checkpoint book (e.g. to retain it across requests so a
    /// cancelled query's resubmission resumes instead of restarting).
    /// Resume is disabled until a book is installed or re-enabled.
    pub fn take_resume_book(&mut self) -> Option<CostResumeBook> {
        self.resume.take()
    }

    /// Install a previously detached checkpoint book and enable resume.
    pub fn install_resume_book(&mut self, mut book: CostResumeBook) {
        book.set_byte_cap(self.resume_byte_cap);
        self.resume = Some(book);
    }

    /// Chaos hook: corrupt every retained checkpoint. Subsequent lookups
    /// fail bit-identity validation and executions restart from scratch.
    pub fn corrupt_checkpoints(&mut self) {
        if let Some(book) = self.resume.as_mut() {
            book.corrupt_all();
        }
    }

    /// Poll the cancellation token; `Some` is the outcome a cancelled
    /// execution reports (nothing spent, typed error).
    fn cancelled_outcome(&self) -> Option<SubstrateOutcome> {
        let e = self.cancel.as_ref()?.cancel_error()?;
        Some(SubstrateOutcome::plain(0.0, false, Some(e)))
    }

    /// Credit the largest checkpointed prefix of `root`'s first-executed
    /// chain against `spent`, then record the chain subtrees this execution
    /// completed. Returns the reused cost (zero with resume disabled, armed
    /// faults, or a faulted execution — a failed run is never checkpointed
    /// and never discounted, so it cannot double-charge).
    fn resume_discount(
        &mut self,
        root: &PlanNode,
        spent: f64,
        completed: bool,
        errored: bool,
    ) -> f64 {
        if self.ex.faults.is_active() || errored {
            return 0.0;
        }
        let Some(book) = self.resume.as_mut() else {
            return 0.0;
        };
        let credit = book.credit(&self.ex, root, &self.qa).min(spent);
        book.record(&self.ex, root, &self.qa, spent, completed);
        if credit > 0.0 {
            self.reused_cost += credit;
            self.resumed_execs += 1;
        }
        credit
    }
}

impl ExecutionSubstrate for SimulatorSubstrate<'_> {
    fn execute_partial(&mut self, pid: PlanId, budget: f64) -> SubstrateOutcome {
        if let Some(o) = self.cancelled_outcome() {
            return o;
        }
        let out = self.ex.execute_compiled(
            &self.b.programs()[pid],
            self.b.plan(pid).fingerprint(),
            &self.qa,
            budget,
            &mut self.stack,
        );
        let root = &self.b.plan(pid).root;
        let reused =
            self.resume_discount(root, out.spent(), out.completed(), out.error().is_some());
        let mut o =
            SubstrateOutcome::plain(out.spent() - reused, out.completed(), out.error().cloned());
        o.reused = reused;
        o
    }

    fn execute_monitored(
        &mut self,
        pid: PlanId,
        resolved: &[bool],
        budget: f64,
        spilled: bool,
    ) -> SubstrateOutcome {
        if let Some(mut o) = self.cancelled_outcome() {
            o.spilled = spilled;
            return o;
        }
        let plan = &self.b.plan(pid).root;
        let r = self
            .ex
            .execute_monitored(plan, &self.qa, resolved, budget, spilled);
        if !self.ex.faults.is_active() {
            if let Some((dim, v)) = r.learned {
                debug_assert!(
                    v <= self.qa[dim] * (1.0 + 1e-9),
                    "first-quadrant invariant violated"
                );
            }
        }
        // A spilled run executes only the prefix below the first unresolved
        // error node, so the checkpointable chain is that subtree's; the
        // prefix "completed" when the error node consumed its entire input
        // (the dimension resolved).
        let (resume_root, prefix_completed) = if spilled {
            let node = learnable_node(plan, &self.b.workload.query, resolved).map(|(n, _)| n);
            (node.unwrap_or(plan), !r.resolved.is_empty())
        } else {
            (plan, r.completed)
        };
        let reused =
            self.resume_discount(resume_root, r.spent, prefix_completed, r.error.is_some());
        SubstrateOutcome {
            spent: r.spent - reused,
            reused,
            completed: r.completed,
            spilled,
            observed: r.learned.into_iter().collect(),
            // The simulator knows truth exactly: a resolved dimension's value
            // is qa's.
            resolved: r.resolved.into_iter().map(|dm| (dm, self.qa[dm])).collect(),
            error: r.error,
        }
    }

    fn run_native(&mut self, pid: PlanId) -> SubstrateOutcome {
        if let Some(o) = self.cancelled_outcome() {
            return o;
        }
        let out = self
            .ex
            .execute(&self.b.plan(pid).root, &self.qa, f64::INFINITY);
        let root = &self.b.plan(pid).root;
        let reused =
            self.resume_discount(root, out.spent(), out.completed(), out.error().is_some());
        let mut o =
            SubstrateOutcome::plain(out.spent() - reused, out.completed(), out.error().cloned());
        o.reused = reused;
        o
    }

    fn run_native_at(&mut self, point: &SelPoint) -> f64 {
        let plan = self.b.workload.optimizer().optimize(point).plan;
        self.ex.actual_cost(&plan.root, &self.qa)
    }

    fn faults_active(&self) -> bool {
        self.ex.faults.is_active()
    }

    fn enable_checkpoint_resume(&mut self) -> bool {
        let cap = self.resume_byte_cap;
        self.resume
            .get_or_insert_with(|| CostResumeBook::with_byte_cap(cap));
        true
    }

    fn resume_stats(&self) -> ResumeStats {
        ResumeStats {
            reused_cost: self.reused_cost,
            resumed_execs: self.resumed_execs,
            checkpoints: self.resume.as_ref().map_or(0, CostResumeBook::len),
        }
    }
}

// ---------------------------------------------------------------------------
// Real-engine substrate
// ---------------------------------------------------------------------------

/// The vectorized tuple engine as a substrate: budgets are enforced by the
/// engine's cost ledger and selectivities come from node tuple counters,
/// read at the node chosen by [`learnable_node`] inversion — the same node
/// the simulator's learning model reasons about.
pub struct EngineSubstrate<'a> {
    b: &'a Bouquet,
    db: &'a Database,
    engine: Engine<'a>,
    faults: FaultInjector,
    /// Result cardinality of the last completed query execution.
    last_rows: Option<usize>,
    /// Checkpoint book for resumable executions (`None` until
    /// [`ExecutionSubstrate::enable_checkpoint_resume`]).
    resume: Option<ResumeBook>,
    reused_cost: f64,
    resumed_execs: usize,
    /// Byte cap applied to the resume book (`0` = unbounded).
    resume_byte_cap: usize,
    /// Cooperative cancellation token: polled at execution entry here, and
    /// threaded into the engine so a trip also halts a run mid-flight at
    /// its next batch commit.
    cancel: Option<CancelToken>,
}

impl<'a> EngineSubstrate<'a> {
    /// Bind the engine to `bouquet`'s query over the generated `db` with an
    /// armed (or inert) fault injector.
    pub fn new(bouquet: &'a Bouquet, db: &'a Database, faults: FaultInjector) -> Self {
        let w = &bouquet.workload;
        EngineSubstrate {
            b: bouquet,
            db,
            engine: Engine::new(db, &w.query, &w.model.p),
            faults,
            last_rows: None,
            resume: None,
            reused_cost: 0.0,
            resumed_execs: 0,
            resume_byte_cap: 0,
            cancel: None,
        }
    }

    /// Thread a cooperative cancellation token. A trip surfaces as
    /// [`PbError::Cancelled`] at the next execution entry *and* — via the
    /// engine's ledger — at the next batch commit of a run already in
    /// flight, with the interrupted batch's work still charged.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.engine.cancel = Some(token.clone());
        self.cancel = Some(token);
        self
    }

    /// Bound the resume book to roughly `cap` bytes (`0` = unbounded),
    /// evicting least-recently-used snapshots past it. Applies to the
    /// current book immediately and to any book created later.
    pub fn set_resume_byte_cap(&mut self, cap: usize) {
        self.resume_byte_cap = cap;
        if let Some(book) = self.resume.as_mut() {
            book.set_byte_cap(cap);
        }
    }

    /// Detach the checkpoint book (e.g. to retain it across requests so a
    /// cancelled query's resubmission resumes instead of restarting).
    /// Resume is disabled until a book is installed or re-enabled.
    pub fn take_resume_book(&mut self) -> Option<ResumeBook> {
        self.resume.take()
    }

    /// Install a previously detached checkpoint book and enable resume.
    pub fn install_resume_book(&mut self, mut book: ResumeBook) {
        book.set_byte_cap(self.resume_byte_cap);
        self.resume = Some(book);
    }

    /// Poll the cancellation token; `Some` is the outcome a cancelled
    /// execution reports (nothing spent, typed error).
    fn cancelled_outcome(&self) -> Option<SubstrateOutcome> {
        let e = self.cancel.as_ref()?.cancel_error()?;
        Some(SubstrateOutcome::plain(0.0, false, Some(e)))
    }

    /// Chaos hook: corrupt every retained checkpoint's integrity checksum.
    /// Subsequent lookups fail validation and executions restart from
    /// scratch, re-capturing healthy snapshots as subtrees complete.
    pub fn corrupt_checkpoints(&mut self) {
        if let Some(book) = self.resume.as_mut() {
            book.corrupt_all();
        }
    }

    /// Execute `plan` through the checkpoint book when resume is enabled
    /// and no faults are armed (checkpoints must never replay or mask an
    /// injected fault), falling back to the plain fault-aware path
    /// otherwise. Returns the outcome and the cost units fast-forwarded.
    fn run_resumable(&mut self, plan: &PlanNode, budget: f64) -> (EngineOutcome, f64) {
        match self.resume.as_mut() {
            Some(book) if !self.faults.is_active() => {
                let (out, reused) = self.engine.execute_resumable(plan, budget, book);
                if reused > 0.0 {
                    self.reused_cost += reused;
                    self.resumed_execs += 1;
                }
                (out, reused)
            }
            _ => (
                self.engine.execute_with_faults(plan, budget, &self.faults),
                0.0,
            ),
        }
    }

    /// Run the engine's morsel-driven kernels with `par` workers. Outcomes
    /// stay bit-identical to the serial engine for every plan × budget — the
    /// knob only changes wall-clock time.
    pub fn with_engine_parallelism(mut self, par: Parallelism) -> Self {
        self.engine = self.engine.with_parallelism(par);
        self
    }

    /// Lower the morsel-dispatch row threshold (default
    /// [`pb_cost::PARALLEL_MIN_MORSEL_ROWS`]) so parallel kernels engage on
    /// small test-scale relations.
    pub fn with_engine_morsel_threshold(mut self, rows: usize) -> Self {
        self.engine = self.engine.with_morsel_threshold(rows);
        self
    }

    /// Result cardinality of the last completed query execution, if any.
    pub fn result_rows(&self) -> Option<usize> {
        self.last_rows
    }

    /// Measure the true ESS location of the bound query against the data —
    /// the engine-side analogue of the simulator's `qa` argument, used by
    /// cross-substrate checks (`pbq table3`).
    pub fn measured_qa(&self) -> Result<SelPoint, PbError> {
        measure_qa(self.db, &self.b.workload.query, &self.b.workload.ess)
    }

    fn note_completion(&mut self, out: &EngineOutcome) {
        if let EngineOutcome::Completed { rows, .. } = out {
            self.last_rows = Some(*rows);
        }
    }
}

impl ExecutionSubstrate for EngineSubstrate<'_> {
    fn execute_partial(&mut self, pid: PlanId, budget: f64) -> SubstrateOutcome {
        if let Some(o) = self.cancelled_outcome() {
            return o;
        }
        let plan = &self.b.plan(pid).root;
        let (out, reused) = self.run_resumable(plan, budget);
        self.note_completion(&out);
        let mut o =
            SubstrateOutcome::plain(out.cost() - reused, out.completed(), out.error().cloned());
        o.reused = reused;
        o
    }

    fn execute_monitored(
        &mut self,
        pid: PlanId,
        resolved: &[bool],
        budget: f64,
        spilled: bool,
    ) -> SubstrateOutcome {
        if let Some(mut o) = self.cancelled_outcome() {
            o.spilled = spilled;
            return o;
        }
        if spilled && self.faults.is_active() {
            if let Some(error) = self.faults.spill_failure("engine:spill") {
                // The pipeline break failed before any real work; the driver
                // decides whether to retry unspilled.
                return SubstrateOutcome {
                    spent: 0.0,
                    reused: 0.0,
                    completed: false,
                    spilled,
                    observed: Vec::new(),
                    resolved: Vec::new(),
                    error: Some(error),
                };
            }
        }
        let w = &self.b.workload;
        let plan = &self.b.plan(pid).root;
        // Invert the plan to the deepest node applying an unresolved error
        // dimension; for a spilled run only that node's prefix executes.
        let learn = learnable_node(plan, &w.query, resolved);
        let (exec_root, learn_dim): (PlanNode, Option<DimId>) = match (&learn, spilled) {
            (Some((node, dims)), true) => ((*node).clone().spilled(), Some(dims[0])),
            (Some((_, dims)), false) => (plan.clone(), Some(dims[0])),
            (None, _) => (plan.clone(), None),
        };
        let (out, reused) = self.run_resumable(&exec_root, budget);
        let completed_query = out.completed() && !spilled;
        if completed_query {
            self.note_completion(&out);
        }
        let mut observed = Vec::new();
        let mut resolved_out = Vec::new();
        if let Some(dm) = learn_dim {
            if let Some(s) = out
                .instr()
                .observed_selectivity(&exec_root, &w.query, self.db, dm)
            {
                // The engine reports a *raw* selectivity bound; map it into
                // axis coordinates (identity except on flipped axes, where
                // the raw upper bound becomes a coordinate lower bound) and
                // clamp into the ESS so qrun can never leave the space.
                let s = w
                    .query
                    .spec_for_dim(dm)
                    .map_or(s, |spec| spec.to_coordinate(s));
                let s = s.clamp(w.ess.dims[dm].lo, w.ess.dims[dm].hi);
                observed.push((dm, s));
                if spilled && out.completed() {
                    // The prefix consumed its entire input: the counter is
                    // final, so the observation *is* the true selectivity.
                    resolved_out.push((dm, s));
                }
            }
        }
        SubstrateOutcome {
            spent: out.cost() - reused,
            reused,
            completed: completed_query,
            spilled,
            observed,
            resolved: resolved_out,
            error: out.error().cloned(),
        }
    }

    fn run_native(&mut self, pid: PlanId) -> SubstrateOutcome {
        if let Some(o) = self.cancelled_outcome() {
            return o;
        }
        let plan = &self.b.plan(pid).root;
        let (out, reused) = self.run_resumable(plan, f64::INFINITY);
        self.note_completion(&out);
        let mut o =
            SubstrateOutcome::plain(out.cost() - reused, out.completed(), out.error().cloned());
        o.reused = reused;
        o
    }

    fn run_native_at(&mut self, point: &SelPoint) -> f64 {
        let plan = self.b.workload.optimizer().optimize(point).plan;
        self.engine.execute(&plan.root, f64::INFINITY).cost()
    }

    fn faults_active(&self) -> bool {
        self.faults.is_active()
    }

    fn enable_checkpoint_resume(&mut self) -> bool {
        let cap = self.resume_byte_cap;
        self.resume
            .get_or_insert_with(|| ResumeBook::with_byte_cap(cap));
        true
    }

    fn resume_stats(&self) -> ResumeStats {
        ResumeStats {
            reused_cost: self.reused_cost,
            resumed_execs: self.resumed_execs,
            checkpoints: self.resume.as_ref().map_or(0, ResumeBook::checkpoints),
        }
    }
}

/// Measure the true ESS location of a query against generated data: exact
/// selection/join selectivities per dimension kind (equality via value
/// frequencies, inequality via sorted counting, anti/semi via the same
/// pair density their cost formulas consume), mapped into axis coordinates
/// (`SelSpec::to_coordinate` — identity except on flipped axes) and
/// clamped into the ESS box.
pub fn measure_qa(
    db: &Database,
    query: &QuerySpec,
    ess: &pb_cost::Ess,
) -> Result<SelPoint, PbError> {
    let mut qa = vec![f64::NAN; query.num_dims];
    for r in &query.relations {
        for s in &r.selections {
            if let Some(dm) = s.selectivity.error_dim() {
                qa[dm] = s
                    .selectivity
                    .to_coordinate(db.actual_selection_selectivity(s));
            }
        }
    }
    for (ji, j) in query.joins.iter().enumerate() {
        if let Some(dm) = j.selectivity.error_dim() {
            qa[dm] = j
                .selectivity
                .to_coordinate(db.actual_join_selectivity(query, ji));
        }
    }
    for (dm, v) in qa.iter_mut().enumerate() {
        if v.is_nan() {
            return Err(PbError::Internal(format!(
                "error dimension {dm} has no measurable predicate"
            )));
        }
        *v = v.clamp(ess.dims[dm].lo, ess.dims[dm].hi);
    }
    Ok(SelPoint(qa))
}
