//! Degradation-aware robust execution on top of the bouquet drivers.
//!
//! [`Bouquet::run_robust`] wraps the basic (Figure 7) and optimized
//! (Figure 13) drivers with a fault-tolerance ladder:
//!
//! 1. **Per-plan retry** — an execution killed by an operator fault is
//!    retried up to [`RobustConfig::plan_retries`] times; every attempt's
//!    spend is still charged to the run, so MSO accounting stays honest.
//! 2. **Plan abandonment** — a plan that keeps faulting is abandoned and
//!    discovery moves to the next plan / contour, exactly as if the plan had
//!    aborted on budget.
//! 3. **Spill fallback** — a failed spill directive (Section 5.3) is retried
//!    unspilled; the execution loses learning depth but can still complete.
//! 4. **Accounting monitor** — after every execution the observed spend is
//!    checked against the granted budget (aborts must burn exactly their
//!    budget, nothing may exceed it — the invariants the Theorem 3 bound is
//!    built from). Violations are recorded as events.
//! 5. **Graceful degradation** — when faults or monitor violations exceed
//!    the configured tolerance, bouquet discovery is abandoned and the
//!    native optimizer's plan at the best current selectivity estimate runs
//!    without a budget, mirroring classical query processing. The outcome is
//!    [`ExecutionOutcome::Degraded`]; all wasted discovery work remains
//!    charged.
//!
//! With an empty [`FaultPlan`] the wrapper adds no behaviour: the run is
//! structurally identical to [`Bouquet::run_basic`] /
//! [`Bouquet::run_optimized`] (property-tested in `tests/robustness.rs`).

use pb_cost::SelPoint;
use pb_faults::{CancelToken, FaultInjector, FaultPlan, PbError};
use pb_optimizer::PlanId;
use pb_plan::DimId;
use serde::{Deserialize, Serialize};

use crate::bouquet::Bouquet;
use crate::drivers::{BouquetRun, ExecutionOutcome, PartialExec};
use crate::substrate::{ExecutionSubstrate, SimulatorSubstrate};

/// Configuration of the robust driver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustConfig {
    /// Fault plan to arm (empty ⇒ the wrapper is behaviourally inert).
    pub faults: FaultPlan,
    /// Retries per faulted plan execution before the plan is abandoned.
    pub plan_retries: usize,
    /// Monitor violations / plan abandonments tolerated before the driver
    /// degrades to single-plan native-optimizer execution.
    pub max_violations: usize,
    /// Drive with the optimized (Figure 13) driver instead of the basic one.
    pub optimized: bool,
    /// Enable checkpoint/resume on the substrate. Reuse engages only while
    /// no faults are armed — an injected fault is never replayed from or
    /// masked by a checkpoint — so with a non-empty fault plan this only
    /// discounts the healthy executions.
    #[serde(default)]
    pub resume: bool,
    /// Hard cumulative spend cap for the whole run (restart-semantics cost
    /// units: `spent + reused`), the tenant-budget hook the serving layer
    /// uses. When granting the next execution's budget would push past the
    /// cap, discovery stops and the driver finishes on the capped rung:
    /// one native-plan attempt within the leftover budget
    /// ([`ExecutionOutcome::Degraded`] if it completes,
    /// [`ExecutionOutcome::BudgetExhausted`] otherwise). Total charged
    /// spend never exceeds the cap. `None` disables.
    #[serde(default)]
    pub spend_cap: Option<f64>,
    /// Cooperative cancellation token, polled between executions by the
    /// driver loops (and, when threaded into the substrate, inside
    /// executions too). Not serialized: a deserialized config is live.
    #[serde(skip)]
    pub cancel: Option<CancelToken>,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            faults: FaultPlan::none(),
            plan_retries: 1,
            max_violations: 3,
            optimized: false,
            resume: false,
            spend_cap: None,
            cancel: None,
        }
    }
}

/// One recovery or monitoring action taken by the robust driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RobustEvent {
    /// A faulted execution was retried on the same plan.
    Retry {
        contour: usize,
        plan: PlanId,
        attempt: usize,
        error: PbError,
    },
    /// A plan exhausted its retries and was abandoned.
    PlanAbandoned {
        contour: usize,
        plan: PlanId,
        error: PbError,
    },
    /// A failed spill directive was retried unspilled.
    SpillRetry { contour: usize, plan: PlanId },
    /// A learned selectivity observation exceeded the ESS and was clamped
    /// (first-quadrant protection against corrupted observations).
    ObservationRejected {
        dim: DimId,
        observed: f64,
        clamped_to: f64,
    },
    /// The spend monitor flagged an accounting invariant violation.
    MonitorViolation { detail: String },
    /// Discovery was abandoned in favour of the native-optimizer fallback.
    Degraded { reason: String },
    /// The cumulative spend cap blocked the next execution; the run moved
    /// to the capped finishing rung.
    SpendCapReached { cap: f64, spent: f64 },
    /// The run was cooperatively cancelled (client cancel or deadline).
    Cancelled { reason: String },
}

/// A robust run: the underlying bouquet run plus the recovery log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustRun {
    pub run: BouquetRun,
    pub events: Vec<RobustEvent>,
    /// Whether the run ended on the degraded single-plan rung.
    pub degraded: bool,
}

/// Mutable robustness state threaded through the driver loops. The plain
/// drivers use [`RobustCtx::inert`], which never retries, never degrades and
/// records nothing — keeping their behaviour (and cost) unchanged.
pub(crate) struct RobustCtx {
    pub(crate) retries: usize,
    max_violations: usize,
    violations: usize,
    abandonments: usize,
    recording: bool,
    pub(crate) events: Vec<RobustEvent>,
    /// Hard cumulative spend cap (tenant budget); `None` = unbounded.
    pub(crate) spend_cap: Option<f64>,
    /// Cooperative cancellation token polled between executions.
    cancel: Option<CancelToken>,
}

impl RobustCtx {
    pub(crate) fn inert() -> Self {
        RobustCtx {
            retries: 0,
            max_violations: usize::MAX,
            violations: 0,
            abandonments: 0,
            recording: false,
            events: Vec::new(),
            spend_cap: None,
            cancel: None,
        }
    }

    fn new(cfg: &RobustConfig) -> Self {
        RobustCtx {
            retries: cfg.plan_retries,
            max_violations: cfg.max_violations,
            violations: 0,
            abandonments: 0,
            recording: true,
            events: Vec::new(),
            spend_cap: cfg.spend_cap,
            cancel: cfg.cancel.clone(),
        }
    }

    /// Poll the cancellation token (between executions). `Some` carries the
    /// typed error to record; the driver returns
    /// [`ExecutionOutcome::Cancelled`] immediately.
    pub(crate) fn check_cancelled(&self) -> Option<PbError> {
        self.cancel.as_ref().and_then(CancelToken::cancel_error)
    }

    /// Would granting `budget` to the next execution push cumulative spend
    /// past the cap? (Executions spend at most their granted budget, so
    /// blocking here keeps `total ≤ cap` an invariant, not a hope.)
    pub(crate) fn cap_blocks(&self, total: f64, budget: f64) -> bool {
        self.spend_cap
            .is_some_and(|cap| total + budget > cap * (1.0 + 1e-9))
    }

    pub(crate) fn push(&mut self, ev: RobustEvent) {
        if self.recording {
            self.events.push(ev);
        }
    }

    /// Record a plan abandonment (counts toward the degradation threshold).
    pub(crate) fn abandoned(&mut self, contour: usize, plan: PlanId, error: PbError) {
        self.abandonments += 1;
        self.push(RobustEvent::PlanAbandoned {
            contour,
            plan,
            error,
        });
    }

    /// Spend monitor: check one execution's observed spend against the
    /// budget it was granted. Completed and faulted executions may spend
    /// less than the budget; aborts must burn exactly the budget; nothing
    /// may ever exceed it. These are the accounting invariants behind the
    /// worst-case multiplier, so breaking them is a monotonicity violation.
    #[allow(clippy::too_many_arguments)] // mirrors the substrate outcome fields
    pub(crate) fn monitor(
        &mut self,
        contour: usize,
        plan: PlanId,
        budget: f64,
        spent: f64,
        reused: f64,
        completed: bool,
        faulted: bool,
    ) {
        if !budget.is_finite() {
            return;
        }
        // `spent` excludes checkpoint-reused work; the accounting invariants
        // are stated in restart semantics, so the monitor adds it back.
        let spent = spent + reused;
        let overcharge = spent > budget * (1.0 + 1e-9);
        let skewed_abort = !completed && !faulted && spent < budget * (1.0 - 1e-9);
        if overcharge || skewed_abort {
            self.violations += 1;
            self.push(RobustEvent::MonitorViolation {
                detail: format!(
                    "contour {contour} plan {plan}: spent {spent} vs budget {budget} ({})",
                    if overcharge {
                        "spend exceeds budget"
                    } else {
                        "abort burned less than its budget"
                    }
                ),
            });
        }
    }

    /// Has the fault/violation tolerance been exceeded?
    pub(crate) fn should_degrade(&self) -> bool {
        self.violations > self.max_violations || self.abandonments > self.max_violations
    }

    pub(crate) fn degrade_reason(&self) -> String {
        format!(
            "{} monitor violations, {} plan abandonments (tolerance {})",
            self.violations, self.abandonments, self.max_violations
        )
    }
}

impl Bouquet {
    /// Run the degradation-aware robust driver at true location `qa` on the
    /// cost-unit simulator substrate.
    ///
    /// With an empty fault plan the returned [`BouquetRun`] is structurally
    /// identical to the one produced by the underlying driver.
    pub fn run_robust(&self, qa: &SelPoint, cfg: &RobustConfig) -> Result<RobustRun, PbError> {
        let mut sub = SimulatorSubstrate::new(self, qa, FaultInjector::new(&cfg.faults))?;
        self.run_robust_on(&mut sub, cfg)
    }

    /// Run the robust driver on an arbitrary substrate. The substrate must
    /// be bound to this bouquet, and the caller is responsible for arming it
    /// with `cfg.faults` (the config's fault plan is not re-injected here:
    /// a substrate owns its injector from construction).
    pub fn run_robust_on<S: ExecutionSubstrate>(
        &self,
        sub: &mut S,
        cfg: &RobustConfig,
    ) -> Result<RobustRun, PbError> {
        let mut rc = RobustCtx::new(cfg);
        if cfg.resume {
            sub.enable_checkpoint_resume();
        }
        let run = if cfg.optimized {
            self.run_optimized_core(sub, &mut rc)?
        } else {
            self.run_basic_core(sub, &mut rc)?
        };
        Ok(RobustRun {
            degraded: matches!(run.outcome, ExecutionOutcome::Degraded { .. }),
            run,
            events: std::mem::take(&mut rc.events),
        })
    }

    /// The degradation rung: abandon discovery, run the native optimizer's
    /// plan at the estimate `est` (the driver's best current knowledge)
    /// without a budget. Spend from the abandoned discovery, and from every
    /// fallback attempt, stays charged.
    pub(crate) fn degraded_finish<S: ExecutionSubstrate>(
        &self,
        est: &SelPoint,
        sub: &mut S,
        mut trace: Vec<PartialExec>,
        mut total: f64,
        rc: &mut RobustCtx,
        contours_tried: usize,
    ) -> BouquetRun {
        rc.push(RobustEvent::Degraded {
            reason: rc.degrade_reason(),
        });
        let ess = &self.workload.ess;
        let li = ess.linear(&ess.snap_floor(est));
        let pid = self.diagram.optimal[li] as PlanId;
        for attempt in 0..=rc.retries {
            // Under a tenant spend cap even the degraded rung stays
            // budgeted: the fallback gets whatever headroom is left, so the
            // cap is never exceeded (an abort then lands BudgetExhausted).
            let (out, granted) = match rc.spend_cap {
                Some(cap) => {
                    let remaining = cap - total;
                    if remaining <= 0.0 {
                        break;
                    }
                    (sub.execute_partial(pid, remaining), remaining)
                }
                None => (sub.run_native(pid), f64::INFINITY),
            };
            total += out.spent;
            trace.push(PartialExec {
                contour: 0,
                plan: pid,
                budget: granted,
                spent: out.spent,
                completed: out.completed,
                spilled: false,
                learned: None,
                error: out.error.clone(),
            });
            if out.completed {
                return BouquetRun {
                    trace,
                    total_cost: total,
                    outcome: ExecutionOutcome::Degraded {
                        final_plan: pid,
                        final_cost: out.spent,
                    },
                };
            }
            match out.error {
                Some(error) => rc.push(RobustEvent::Retry {
                    contour: 0,
                    plan: pid,
                    attempt,
                    error,
                }),
                // An abort under an infinite budget cannot happen; bail out
                // rather than loop.
                None => break,
            }
        }
        BouquetRun {
            trace,
            total_cost: total,
            outcome: ExecutionOutcome::BudgetExhausted { contours_tried },
        }
    }

    /// The tenant-budget rung: the cumulative spend cap blocks the next
    /// bouquet execution, so discovery stops and the leftover budget (if
    /// any) funds one native-plan attempt at the best current estimate.
    /// Outcome is [`ExecutionOutcome::Degraded`] when that attempt
    /// completes, [`ExecutionOutcome::BudgetExhausted`] otherwise — and
    /// total charged spend never exceeds the cap.
    pub(crate) fn capped_finish<S: ExecutionSubstrate>(
        &self,
        est: &SelPoint,
        sub: &mut S,
        mut trace: Vec<PartialExec>,
        mut total: f64,
        rc: &mut RobustCtx,
        contours_tried: usize,
    ) -> BouquetRun {
        let cap = rc.spend_cap.unwrap_or(f64::INFINITY);
        rc.push(RobustEvent::SpendCapReached { cap, spent: total });
        let remaining = cap - total;
        if remaining > 0.0 {
            let ess = &self.workload.ess;
            let li = ess.linear(&ess.snap_floor(est));
            let pid = self.diagram.optimal[li] as PlanId;
            let out = sub.execute_partial(pid, remaining);
            total += out.spent;
            trace.push(PartialExec {
                contour: 0,
                plan: pid,
                budget: remaining,
                spent: out.spent,
                completed: out.completed,
                spilled: false,
                learned: None,
                error: out.error.clone(),
            });
            rc.monitor(
                0,
                pid,
                remaining,
                out.spent,
                out.reused,
                out.completed,
                out.error.is_some(),
            );
            if out.completed {
                return BouquetRun {
                    trace,
                    total_cost: total,
                    outcome: ExecutionOutcome::Degraded {
                        final_plan: pid,
                        final_cost: out.spent,
                    },
                };
            }
        }
        BouquetRun {
            trace,
            total_cost: total,
            outcome: ExecutionOutcome::BudgetExhausted { contours_tried },
        }
    }
}
