//! Run-time discovery drivers.
//!
//! * [`basic`] — Figure 7: sequential cost-limited executions of every plan
//!   on every contour until one completes.
//! * [`optimized`] — Figure 13: selectivity monitoring (qrun), AxisPlans
//!   plan selection, spill-based learning, first-quadrant pruning and early
//!   contour changes.
//!
//! Both drivers are fully deterministic: the sequence of partial executions
//! for a given (query, qa) never depends on optimizer estimates or database
//! statistics — the repeatability property the paper highlights.

pub mod basic;
pub mod optimized;
pub mod robust;

use pb_faults::PbError;
use pb_optimizer::PlanId;
use pb_plan::DimId;
use serde::{Deserialize, Serialize};

/// One cost-limited (partial or final) plan execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialExec {
    /// Contour number (1-based; values beyond the grading length denote
    /// overflow contours used only under model error; 0 marks a degraded
    /// native-optimizer execution outside the contour schedule).
    pub contour: usize,
    /// Diagram plan id of the executed plan.
    pub plan: PlanId,
    /// Cost budget granted to this execution.
    pub budget: f64,
    /// Cost actually consumed (= budget if aborted).
    pub spent: f64,
    pub completed: bool,
    /// Whether the spill directive was applied (optimized driver only).
    pub spilled: bool,
    /// Selectivity lower bound learned, if any: `(dim, value)`.
    pub learned: Option<(DimId, f64)>,
    /// Fault that killed this execution, if any (the spend above was still
    /// wasted and is charged to the run).
    #[serde(default)]
    pub error: Option<PbError>,
}

/// Terminal state of a bouquet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecutionOutcome {
    /// The query completed; `final_plan` produced the result.
    Completed { final_plan: PlanId, final_cost: f64 },
    /// Every contour budget, including all `MAX_OVERFLOW` geometric
    /// doublings past the grading, was exhausted without a completion.
    /// Reachable only when actual costs exceed every modeled budget (qa
    /// outside the ESS, or unbounded cost-model error / injected faults).
    BudgetExhausted { contours_tried: usize },
    /// The robust driver abandoned bouquet discovery (persistent faults or
    /// accounting-monitor violations) and fell back to a single
    /// native-optimizer plan executed without a budget.
    Degraded { final_plan: PlanId, final_cost: f64 },
    /// The run was cooperatively cancelled (client cancel or deadline)
    /// before reaching any other terminal state. Spend up to the
    /// cancellation point stays charged; checkpoints captured before the
    /// trip survive, so a resubmitted run resumes instead of restarting.
    Cancelled { contours_tried: usize },
}

/// A complete bouquet run: the execution trace and its total cost
/// (conservative accounting — every aborted execution's work is wasted,
/// intermediate results are jettisoned as in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BouquetRun {
    pub trace: Vec<PartialExec>,
    pub total_cost: f64,
    pub outcome: ExecutionOutcome,
}

impl BouquetRun {
    /// SubOpt(∗, qa) = total bouquet cost / optimal cost at qa (Section 2).
    pub fn suboptimality(&self, optimal_cost: f64) -> f64 {
        self.total_cost / optimal_cost
    }

    /// Number of executions that did not complete the query.
    pub fn num_partial_executions(&self) -> usize {
        self.trace.iter().filter(|e| !e.completed).count()
    }

    /// Highest contour reached.
    pub fn contours_crossed(&self) -> usize {
        self.trace.iter().map(|e| e.contour).max().unwrap_or(0)
    }

    /// The query produced its result — via bouquet discovery or, for the
    /// robust driver, via the degraded single-plan fallback.
    pub fn completed(&self) -> bool {
        matches!(
            self.outcome,
            ExecutionOutcome::Completed { .. } | ExecutionOutcome::Degraded { .. }
        )
    }
}
