//! The basic bouquet driver (paper, Figure 7).
//!
//! ```text
//! for cid = 1 to m:                      # each cost contour
//!     for i = 1 to n_cid:                # each plan on the contour
//!         execute P_i^cid with budget cost(IC_cid)
//!         if it finishes: return result
//! ```
//!
//! Under a perfect cost model the loop always terminates by the contour
//! whose step cost reaches the query's optimal cost. Under bounded model
//! error (δ > 0) actual costs can exceed every modeled budget, so the driver
//! extends the grading with geometric *overflow* contours — this is exactly
//! the mechanism behind the `(1+δ)²` inflation bound of Section 3.4.

use pb_cost::SelPoint;
use pb_faults::{FaultInjector, PbError};

use crate::bouquet::Bouquet;
use crate::drivers::robust::{RobustCtx, RobustEvent};
use crate::drivers::{BouquetRun, ExecutionOutcome, PartialExec};
use crate::substrate::{ExecutionSubstrate, ResumeStats, SimulatorSubstrate};

/// Safety valve: overflow contours beyond the grading (only reachable under
/// model error). 64 doublings is far beyond any bounded δ.
pub(crate) const MAX_OVERFLOW: usize = 64;

impl Bouquet {
    /// Run the basic (Figure 7) driver at true location `qa` on the
    /// cost-unit simulator substrate.
    pub fn run_basic(&self, qa: &SelPoint) -> Result<BouquetRun, PbError> {
        let mut sub = SimulatorSubstrate::new(self, qa, FaultInjector::none())?;
        self.run_basic_core(&mut sub, &mut RobustCtx::inert())
    }

    /// Run the basic (Figure 7) driver on an arbitrary substrate (e.g. the
    /// real tuple engine via [`crate::substrate::EngineSubstrate`]). The
    /// substrate must be bound to this bouquet.
    pub fn run_basic_on<S: ExecutionSubstrate>(&self, sub: &mut S) -> Result<BouquetRun, PbError> {
        self.run_basic_core(sub, &mut RobustCtx::inert())
    }

    /// Run the basic driver with checkpoint/resume enabled on the simulator
    /// substrate. The (contour, plan, budget) sequence, the completion
    /// decision and everything learned are identical to
    /// [`Bouquet::run_basic`] — resume never changes *what* happens, only
    /// *what is paid*: prefixes an earlier partial execution already
    /// completed are fast-forwarded instead of re-executed, so `total_cost`
    /// shrinks by the reused units reported in the stats.
    pub fn run_basic_resumable(&self, qa: &SelPoint) -> Result<(BouquetRun, ResumeStats), PbError> {
        let mut sub = SimulatorSubstrate::new(self, qa, FaultInjector::none())?;
        self.run_basic_resumable_on(&mut sub)
    }

    /// Run the basic driver with checkpoint/resume on an arbitrary
    /// substrate (a no-op opt-in on substrates that do not support resume).
    pub fn run_basic_resumable_on<S: ExecutionSubstrate>(
        &self,
        sub: &mut S,
    ) -> Result<(BouquetRun, ResumeStats), PbError> {
        sub.enable_checkpoint_resume();
        let run = self.run_basic_core(sub, &mut RobustCtx::inert())?;
        Ok((run, sub.resume_stats()))
    }

    /// Shared driver loop: the plain entry points use an inert robustness
    /// context (no retries, no degradation, no events), so their behaviour
    /// is unchanged; `run_robust` threads a live one.
    pub(crate) fn run_basic_core<S: ExecutionSubstrate>(
        &self,
        sub: &mut S,
        rc: &mut RobustCtx,
    ) -> Result<BouquetRun, PbError> {
        let d = self.workload.ess.d();
        let mut trace: Vec<PartialExec> = Vec::new();
        let mut total = 0.0;

        let m = self.contours.len();
        for k in 0..m + MAX_OVERFLOW {
            let (contour_id, budget, plan_set) = if k < m {
                let c = &self.contours[k];
                (c.id, c.budget, &c.plan_set)
            } else {
                // Overflow: keep doubling (ratio r) past the last contour
                // with the last contour's plan set.
                let last = &self.contours[m - 1];
                let budget = last.budget * self.config.r.powi((k - m + 1) as i32);
                (k + 1, budget, &last.plan_set)
            };
            for &pid in plan_set {
                let mut attempt = 0usize;
                loop {
                    // Cooperative cancellation: poll between executions so a
                    // tripped token (client cancel, deadline) stops the run
                    // before more budget is committed. Spend so far stays
                    // charged; checkpoints survive for a resumed resubmit.
                    if let Some(error) = rc.check_cancelled() {
                        rc.push(RobustEvent::Cancelled {
                            reason: error.to_string(),
                        });
                        return Ok(BouquetRun {
                            trace,
                            total_cost: total,
                            outcome: ExecutionOutcome::Cancelled {
                                contours_tried: k + 1,
                            },
                        });
                    }
                    // Tenant budget: granting this execution would push past
                    // the cumulative spend cap, so finish on the capped rung
                    // instead of starting work that cannot be afforded.
                    if rc.cap_blocks(total, budget) {
                        let est = self.workload.ess.point_at_fractions(&vec![0.5; d]);
                        return Ok(self.capped_finish(&est, sub, trace, total, rc, k + 1));
                    }
                    let out = sub.execute_partial(pid, budget);
                    total += out.spent;
                    trace.push(PartialExec {
                        contour: contour_id,
                        plan: pid,
                        budget,
                        spent: out.spent,
                        completed: out.completed,
                        spilled: false,
                        learned: None,
                        error: out.error.clone(),
                    });
                    rc.monitor(
                        contour_id,
                        pid,
                        budget,
                        out.spent,
                        out.reused,
                        out.completed,
                        out.error.is_some(),
                    );
                    if out.completed {
                        return Ok(BouquetRun {
                            trace,
                            total_cost: total,
                            outcome: ExecutionOutcome::Completed {
                                final_plan: pid,
                                final_cost: out.spent,
                            },
                        });
                    }
                    if rc.should_degrade() {
                        // Best estimate available to the basic driver: the
                        // centre of the selectivity space.
                        let est = self.workload.ess.point_at_fractions(&vec![0.5; d]);
                        return Ok(self.degraded_finish(&est, sub, trace, total, rc, k + 1));
                    }
                    match out.error {
                        // A cancellation surfaced from inside the substrate
                        // is terminal, never retried: the controller asked
                        // the run to stop.
                        Some(PbError::Cancelled(reason)) => {
                            rc.push(RobustEvent::Cancelled { reason });
                            return Ok(BouquetRun {
                                trace,
                                total_cost: total,
                                outcome: ExecutionOutcome::Cancelled {
                                    contours_tried: k + 1,
                                },
                            });
                        }
                        Some(error) if attempt < rc.retries => {
                            attempt += 1;
                            rc.push(RobustEvent::Retry {
                                contour: contour_id,
                                plan: pid,
                                attempt,
                                error,
                            });
                        }
                        Some(error) => {
                            rc.abandoned(contour_id, pid, error);
                            break;
                        }
                        None => break,
                    }
                }
            }
        }
        Ok(BouquetRun {
            trace,
            total_cost: total,
            outcome: ExecutionOutcome::BudgetExhausted {
                contours_tried: m + MAX_OVERFLOW,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::BouquetConfig;
    use crate::workload::Workload;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_1d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 48);
        Workload::new("EQ_1D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn completes_at_every_grid_point_within_bound() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let bound = b.mso_bound();
        for li in 0..w.ess.num_points() {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            assert!(run.completed(), "failed at grid point {li}");
            let subopt = run.suboptimality(b.pic_cost_at(li));
            assert!(
                subopt <= bound * (1.0 + 1e-9),
                "MSO bound violated at {li}: {subopt} > {bound}"
            );
        }
    }

    #[test]
    fn low_selectivity_query_discovered_on_early_contour() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let cheap = b.run_basic(&w.ess.point(&[0])).unwrap();
        let dear = b.run_basic(&w.ess.point(&[47])).unwrap();
        assert!(cheap.contours_crossed() < dear.contours_crossed());
        assert!(cheap.total_cost < dear.total_cost);
    }

    #[test]
    fn run_is_repeatable() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let qa = w.ess.point_at_fractions(&[0.63]);
        let a = b.run_basic(&qa).unwrap();
        let bb = b.run_basic(&qa).unwrap();
        assert_eq!(a, bb, "execution strategy must be repeatable");
    }

    #[test]
    fn aborted_executions_consume_exactly_their_budget() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let qa = w.ess.point(&[40]);
        let run = b.run_basic(&qa).unwrap();
        for e in &run.trace {
            if !e.completed {
                assert_eq!(e.spent, e.budget);
            } else {
                assert!(e.spent <= e.budget);
            }
        }
        let sum: f64 = run.trace.iter().map(|e| e.spent).sum();
        assert!((sum - run.total_cost).abs() < 1e-9 * run.total_cost);
    }

    #[test]
    fn model_error_still_terminates_within_inflated_bound() {
        use pb_cost::CostPerturbation;
        let w = eq_1d();
        let delta = 0.4;
        let cfg = BouquetConfig {
            perturbation: CostPerturbation::with_delta(delta, 11),
            ..Default::default()
        };
        let b = Bouquet::identify(&w, &cfg).unwrap();
        let inflated = b.mso_bound() * crate::theory::model_error_inflation(delta);
        for li in (0..w.ess.num_points()).step_by(3) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_basic(&qa).unwrap();
            assert!(run.completed());
            // Sub-optimality is measured against the *actual* optimal cost,
            // which is itself within (1+δ) of the modeled PIC.
            let actual_opt = b.pic_cost_at(li) / (1.0 + delta);
            assert!(
                run.suboptimality(actual_opt) <= inflated * (1.0 + delta) * (1.0 + 1e-9),
                "inflated bound violated at {li}"
            );
        }
    }
}
