//! The optimized bouquet driver (paper, Figure 13).
//!
//! Enhancements over the basic driver:
//!
//! * **qrun tracking** (Section 5.2): a running lower bound on the true
//!   location, updated from node tuple counters after every partial
//!   execution. The first-quadrant invariant — `qrun ≤ qa` componentwise —
//!   is maintained throughout.
//! * **First-quadrant pruning** (Section 5.1): contour plans whose frontier
//!   segments fall outside qrun's first quadrant are skipped without
//!   execution.
//! * **AxisPlans selection** (Section 5.1): candidate plans are those at the
//!   intersections of the contour with the axes through qrun; the cheapest
//!   cost-equivalence group is formed and the plan with the deepest
//!   unresolved error node is picked.
//! * **Spill-based learning** (Section 5.3): while more than one of a plan's
//!   error dimensions is unresolved, its spilled version P̃ is executed so
//!   the whole budget works on the first error node (Manhattan movement of
//!   qrun). With at most one unresolved dimension the plan runs unspilled
//!   and may complete the query.
//! * **Early contour change** (Figure 13): when the PIC cost at qrun already
//!   exceeds the contour budget, no plan on the contour can complete, so the
//!   driver jumps ahead without executing anything further.

use std::collections::HashSet;

use pb_cost::SelPoint;
use pb_faults::{FaultInjector, PbError};
use pb_optimizer::PlanId;

use crate::bouquet::Bouquet;
use crate::contour::Contour;
use crate::drivers::basic::MAX_OVERFLOW;
use crate::drivers::robust::{RobustCtx, RobustEvent};
use crate::drivers::{BouquetRun, ExecutionOutcome, PartialExec};
use crate::substrate::{ExecutionSubstrate, ResumeStats, SimulatorSubstrate};

impl Bouquet {
    /// Run the optimized (Figure 13) driver at true location `qa` on the
    /// cost-unit simulator substrate.
    pub fn run_optimized(&self, qa: &SelPoint) -> Result<BouquetRun, PbError> {
        let mut sub = SimulatorSubstrate::new(self, qa, FaultInjector::none())?;
        self.run_optimized_core(&mut sub, &mut RobustCtx::inert())
    }

    /// Run the optimized (Figure 13) driver on an arbitrary substrate. The
    /// substrate must be bound to this bouquet.
    pub fn run_optimized_on<S: ExecutionSubstrate>(
        &self,
        sub: &mut S,
    ) -> Result<BouquetRun, PbError> {
        self.run_optimized_core(sub, &mut RobustCtx::inert())
    }

    /// Run the optimized driver with checkpoint/resume enabled on the
    /// simulator substrate: identical decision sequence, qrun trajectory and
    /// learning to [`Bouquet::run_optimized`], with already-completed
    /// prefixes (including spilled discovery prefixes) fast-forwarded
    /// instead of re-paid. See [`Bouquet::run_basic_resumable`].
    pub fn run_optimized_resumable(
        &self,
        qa: &SelPoint,
    ) -> Result<(BouquetRun, ResumeStats), PbError> {
        let mut sub = SimulatorSubstrate::new(self, qa, FaultInjector::none())?;
        self.run_optimized_resumable_on(&mut sub)
    }

    /// Run the optimized driver with checkpoint/resume on an arbitrary
    /// substrate (a no-op opt-in on substrates that do not support resume).
    pub fn run_optimized_resumable_on<S: ExecutionSubstrate>(
        &self,
        sub: &mut S,
    ) -> Result<(BouquetRun, ResumeStats), PbError> {
        sub.enable_checkpoint_resume();
        let run = self.run_optimized_core(sub, &mut RobustCtx::inert())?;
        Ok((run, sub.resume_stats()))
    }

    /// Shared driver loop (see [`Bouquet::run_basic_core`] for the inert /
    /// robust split).
    pub(crate) fn run_optimized_core<S: ExecutionSubstrate>(
        &self,
        sub: &mut S,
        rc: &mut RobustCtx,
    ) -> Result<BouquetRun, PbError> {
        let ess = &self.workload.ess;
        let faults_active = sub.faults_active();
        let progs = self.programs();
        let mut stack = Vec::new();
        let d = ess.d();
        let m = self.contours.len();

        let mut qrun: Vec<f64> = ess.dims.iter().map(|dim| dim.lo).collect();
        let mut resolved = vec![false; d];
        let mut trace: Vec<PartialExec> = Vec::new();
        let mut total = 0.0;
        let mut cid = 0usize;
        // Plans already executed on the current contour. Each plan runs at
        // most once per contour, so the optimized driver never exceeds the
        // basic driver's per-contour execution count n_k (the quantity the
        // Equation 8 bound is built from).
        let mut executed: HashSet<PlanId> = HashSet::new();

        while cid < m + MAX_OVERFLOW {
            let (contour_id, budget, step_cost) = if cid < m {
                let c = &self.contours[cid];
                (c.id, c.budget, c.step_cost)
            } else {
                let last = &self.contours[m - 1];
                let f = self.config.r.powi((cid - m + 1) as i32);
                (cid + 1, last.budget * f, last.step_cost * f)
            };

            // Early contour change: the PIC at qrun already exceeds this
            // step, so nothing here can complete (PCM argument).
            let qrun_pt = SelPoint(qrun.clone());
            if self.pic_cost(&qrun_pt) > step_cost {
                cid += 1;
                executed.clear();
                continue;
            }

            // Viable plans: first-quadrant pruning against qrun.
            let qix = ess.snap_floor(&qrun_pt);
            let viable: Vec<PlanId> = if cid < m {
                self.contours[cid].viable_plans(&self.diagram, &qix)
            } else {
                self.contours[m - 1].plan_set.clone()
            };
            let candidates: Vec<PlanId> = viable
                .into_iter()
                .filter(|&p| !executed.contains(&p))
                .collect();
            if candidates.is_empty() {
                cid += 1;
                executed.clear();
                continue;
            }

            let contour_for_axes = &self.contours[cid.min(m - 1)];
            let pid = self.select_plan(contour_for_axes, &candidates, &qix, &qrun, &resolved);
            let has_unresolved = self
                .plan(pid)
                .root
                .error_dims(&self.workload.query)
                .iter()
                .any(|&dm| !resolved[dm]);
            // Spill-based learning (Section 5.3) is engaged only when this
            // plan provably cannot complete within the budget: its cost at
            // qrun — a lower bound on its cost at qa, by PCM and the
            // first-quadrant invariant — already exceeds the budget. In that
            // regime the execution is pure discovery, so breaking the
            // pipeline at the first error node maximizes the selectivity
            // movement per unit budget. Otherwise the plan runs unspilled
            // and may complete the query (it still learns on abort, just
            // with a shallower movement).
            let spilled = has_unresolved && progs[pid].eval_with(&qrun, &mut stack).cost > budget;

            executed.insert(pid);
            let mut attempt = 0usize;
            let mut spill_now = spilled;
            loop {
                // Cooperative cancellation: poll between executions (see the
                // basic driver for the contract — spend stays charged,
                // checkpoints survive for a resumed resubmit).
                if let Some(error) = rc.check_cancelled() {
                    rc.push(RobustEvent::Cancelled {
                        reason: error.to_string(),
                    });
                    return Ok(BouquetRun {
                        trace,
                        total_cost: total,
                        outcome: ExecutionOutcome::Cancelled {
                            contours_tried: cid + 1,
                        },
                    });
                }
                // Tenant budget: stop before granting what cannot be paid.
                // qrun is the best current estimate for the capped rung.
                if rc.cap_blocks(total, budget) {
                    let est = SelPoint(qrun.clone());
                    return Ok(self.capped_finish(&est, sub, trace, total, rc, cid + 1));
                }
                let r = sub.execute_monitored(pid, &resolved, budget, spill_now);
                total += r.spent;
                trace.push(PartialExec {
                    contour: contour_id,
                    plan: pid,
                    budget,
                    spent: r.spent,
                    completed: r.completed,
                    spilled: spill_now,
                    learned: r.observed.first().copied(),
                    error: r.error.clone(),
                });
                rc.monitor(
                    contour_id,
                    pid,
                    budget,
                    r.spent,
                    r.reused,
                    r.completed,
                    r.error.is_some(),
                );
                if r.completed {
                    return Ok(BouquetRun {
                        trace,
                        total_cost: total,
                        outcome: ExecutionOutcome::Completed {
                            final_plan: pid,
                            final_cost: r.spent,
                        },
                    });
                }
                for &(dim, v) in &r.observed {
                    let v = if faults_active {
                        // A corrupted observation may exceed the ESS; clamp
                        // it so qrun stays inside the space (first-quadrant
                        // protection) and log the rejection.
                        let hi = ess.dims[dim].hi;
                        if v > hi {
                            rc.push(RobustEvent::ObservationRejected {
                                dim,
                                observed: v,
                                clamped_to: hi,
                            });
                            hi
                        } else {
                            v
                        }
                    } else {
                        v
                    };
                    qrun[dim] = qrun[dim].max(v);
                }
                for &(dm, v) in &r.resolved {
                    resolved[dm] = true;
                    qrun[dm] = v;
                }
                if rc.should_degrade() {
                    let est = SelPoint(qrun.clone());
                    return Ok(self.degraded_finish(&est, sub, trace, total, rc, cid + 1));
                }
                match r.error {
                    // Cancellation from inside the substrate is terminal,
                    // never retried.
                    Some(PbError::Cancelled(reason)) => {
                        rc.push(RobustEvent::Cancelled { reason });
                        return Ok(BouquetRun {
                            trace,
                            total_cost: total,
                            outcome: ExecutionOutcome::Cancelled {
                                contours_tried: cid + 1,
                            },
                        });
                    }
                    Some(PbError::SpillFailure { .. }) if spill_now => {
                        // Spill machinery failed: retry the same plan
                        // unspilled (shallower learning, same budget).
                        rc.push(RobustEvent::SpillRetry {
                            contour: contour_id,
                            plan: pid,
                        });
                        spill_now = false;
                    }
                    Some(error) if attempt < rc.retries => {
                        attempt += 1;
                        rc.push(RobustEvent::Retry {
                            contour: contour_id,
                            plan: pid,
                            attempt,
                            error,
                        });
                    }
                    Some(error) => {
                        rc.abandoned(contour_id, pid, error);
                        break;
                    }
                    None => break,
                }
            }
        }
        Ok(BouquetRun {
            trace,
            total_cost: total,
            outcome: ExecutionOutcome::BudgetExhausted {
                contours_tried: m + MAX_OVERFLOW,
            },
        })
    }

    /// AxisPlans selection (Section 5.1): restrict to the plans responsible
    /// for the contour's intersection with the axes through qrun, then pick
    /// from the cheapest cost-equivalence group the plan whose unresolved
    /// error node sits deepest in the plan tree.
    ///
    /// Public so that alternative run-time backends (e.g. the tuple-engine
    /// driver in `pb-bench`) can reuse the same selection policy.
    pub fn select_plan(
        &self,
        contour: &Contour,
        candidates: &[PlanId],
        qix: &[usize],
        qrun: &[f64],
        resolved: &[bool],
    ) -> PlanId {
        let axis = self.axis_plan_set(contour, qix);
        let pool: Vec<PlanId> = if axis.iter().any(|p| candidates.contains(p)) {
            candidates
                .iter()
                .copied()
                .filter(|p| axis.contains(p))
                .collect()
        } else {
            candidates.to_vec()
        };

        let progs = self.programs();
        let mut stack = Vec::new();
        let costs: Vec<(PlanId, f64)> = pool
            .iter()
            .map(|&p| (p, progs[p].eval_with(qrun, &mut stack).cost))
            .collect();
        let cheapest = costs.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        // Cost-equivalence group: within 20% of the cheapest.
        let group: Vec<PlanId> = costs
            .iter()
            .filter(|&&(_, c)| c <= cheapest * 1.2)
            .map(|&(p, _)| p)
            .collect();
        // Deepest unresolved error node wins (spare budget flows to it).
        // `group` is non-empty whenever `candidates` is (the cheapest pool
        // member always qualifies); an empty candidate list — a caller
        // contract violation — falls back to the first candidate or plan 0
        // rather than panicking.
        group
            .iter()
            .max_by_key(|&&p| {
                let plan = &self.plan(p).root;
                let depth = plan
                    .error_dims(&self.workload.query)
                    .into_iter()
                    .filter(|&dm| !resolved[dm])
                    .filter_map(|dm| plan.error_dim_depth(&self.workload.query, dm))
                    .max()
                    .unwrap_or(0);
                (depth, std::cmp::Reverse(p))
            })
            .copied()
            .unwrap_or_else(|| candidates.first().copied().unwrap_or(0))
    }

    /// Plans at the intersection of `contour` with the positive axes through
    /// grid location `qix`: for each dimension, walk outward along that axis
    /// to the last point still inside the step, and take the cheapest
    /// contour plan that covers it within the budget.
    fn axis_plan_set(&self, contour: &Contour, qix: &[usize]) -> Vec<PlanId> {
        let ess = &self.workload.ess;
        let mut out: Vec<PlanId> = Vec::new();
        for dim in 0..ess.d() {
            let mut ix = qix.to_vec();
            let mut last_inside = None;
            for t in qix[dim]..ess.res[dim] {
                ix[dim] = t;
                if self.diagram.opt_cost[ess.linear(&ix)] <= contour.step_cost {
                    last_inside = Some(t);
                } else {
                    break;
                }
            }
            if let Some(t) = last_inside {
                ix[dim] = t;
                let li = ess.linear(&ix);
                if let Some(&p) = contour
                    .plan_set
                    .iter()
                    .filter(|&&p| self.costs[p][li] <= contour.budget * (1.0 + 1e-9))
                    .min_by(|&&a, &&b| self.costs[a][li].total_cmp(&self.costs[b][li]))
                {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::BouquetConfig;
    use crate::workload::Workload;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_2d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            20,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn completes_everywhere_and_never_wildly_exceeds_basic() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        for li in (0..w.ess.num_points()).step_by(7) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_optimized(&qa).unwrap();
            assert!(run.completed(), "optimized driver failed at {li}");
        }
    }

    #[test]
    fn optimized_is_repeatable() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let qa = w.ess.point_at_fractions(&[0.8, 0.5]);
        assert_eq!(b.run_optimized(&qa).unwrap(), b.run_optimized(&qa).unwrap());
    }

    #[test]
    fn qrun_learning_shows_in_trace() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let qa = w.ess.point_at_fractions(&[0.9, 0.9]);
        let run = b.run_optimized(&qa).unwrap();
        assert!(run.completed());
        // For an expensive location the driver must have learned something.
        assert!(
            run.trace.iter().any(|e| e.learned.is_some()),
            "no learning recorded: {:?}",
            run.trace
        );
        // Learned values never exceed truth (first-quadrant invariant).
        for e in &run.trace {
            if let Some((dm, v)) = e.learned {
                assert!(v <= qa[dm] * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn optimized_uses_no_more_cost_than_basic_on_average() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let (mut tot_basic, mut tot_opt) = (0.0, 0.0);
        for li in (0..w.ess.num_points()).step_by(3) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            tot_basic += b.run_basic(&qa).unwrap().total_cost;
            tot_opt += b.run_optimized(&qa).unwrap().total_cost;
        }
        assert!(
            tot_opt <= tot_basic * 1.05,
            "optimized driver should not cost more overall: {tot_opt} vs {tot_basic}"
        );
    }

    /// Spill-policy soundness: a spilled execution is only issued when the
    /// plan provably cannot complete within the budget, so it must abort at
    /// exactly its budget and can never complete the query. Also checks the
    /// optimized driver's Equation 8 accounting: each plan runs at most once
    /// per contour.
    #[test]
    fn spill_policy_is_sound_across_the_grid() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        for li in (0..w.ess.num_points()).step_by(5) {
            let qa = w.ess.point(&w.ess.unlinear(li));
            let run = b.run_optimized(&qa).unwrap();
            assert!(run.completed());
            for e in &run.trace {
                if e.spilled {
                    assert!(!e.completed, "spilled execution cannot complete the query");
                    assert_eq!(e.spent, e.budget, "doomed execution must burn its budget");
                }
            }
            let mut seen = std::collections::HashSet::new();
            for e in &run.trace {
                assert!(
                    seen.insert((e.contour, e.plan)),
                    "plan {} executed twice on contour {}",
                    e.plan,
                    e.contour
                );
            }
        }
    }

    #[test]
    fn early_contour_change_skips_low_contours_after_resolution() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let qa = w.ess.point(&w.ess.terminus());
        let run = b.run_optimized(&qa).unwrap();
        // Contours visited should be weakly increasing in the trace.
        let mut last = 0;
        for e in &run.trace {
            assert!(e.contour >= last);
            last = e.contour;
        }
    }
}
