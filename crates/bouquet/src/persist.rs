//! Bouquet persistence — the "canned queries" deployment path.
//!
//! The paper observes (Section 4.2) that user queries are often submitted
//! through form-based interfaces, making it feasible to precompute bouquets
//! offline. This module serializes a compiled [`Bouquet`] — workload,
//! diagram, contours, budgets and all — so identification can run once (on
//! a build server, say) and the run-time drivers can load the artifact
//! instantly. Plan fingerprints are recomputed on load, so artifacts remain
//! valid across toolchain changes.

use std::io::{Read, Write};
use std::path::Path;

use pb_faults::PbError;

use crate::bouquet::Bouquet;

/// Serialize a bouquet to JSON.
pub fn to_json(bouquet: &Bouquet) -> Result<String, PbError> {
    serde_json::to_string(bouquet).map_err(|e| PbError::Internal(format!("serialize bouquet: {e}")))
}

/// Deserialize a bouquet from JSON, re-validating its internal consistency.
pub fn from_json(json: &str) -> Result<Bouquet, PbError> {
    let corrupt = |message: String| PbError::Corrupt {
        path: "<inline>".into(),
        message,
    };
    let b: Bouquet =
        serde_json::from_str(json).map_err(|e| corrupt(format!("parse bouquet: {e}")))?;
    validate_structure(&b).map_err(corrupt)?;
    Ok(b)
}

/// Write a bouquet to a file.
pub fn save(bouquet: &Bouquet, path: impl AsRef<Path>) -> Result<(), PbError> {
    let json = to_json(bouquet)?;
    let io_err = |e: std::io::Error| PbError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    };
    let mut f = std::fs::File::create(path.as_ref()).map_err(io_err)?;
    f.write_all(json.as_bytes()).map_err(io_err)
}

/// Load a bouquet from a file (truncated or corrupted artifacts surface as
/// [`PbError::Corrupt`] carrying the file path).
pub fn load(path: impl AsRef<Path>) -> Result<Bouquet, PbError> {
    let io_err = |e: std::io::Error| PbError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    };
    let mut json = String::new();
    std::fs::File::open(path.as_ref())
        .map_err(io_err)?
        .read_to_string(&mut json)
        .map_err(io_err)?;
    from_json(&json).map_err(|e| match e {
        PbError::Corrupt { message, .. } => PbError::Corrupt {
            path: path.as_ref().display().to_string(),
            message,
        },
        other => other,
    })
}

/// Structural validation of a (possibly externally-produced) artifact —
/// shared with the binary cache layer, which revalidates decoded entries
/// the same way.
pub(crate) fn validate_structure(b: &Bouquet) -> Result<(), String> {
    let n = b.workload.ess.num_points();
    if b.diagram.optimal.len() != n || b.diagram.opt_cost.len() != n {
        return Err("diagram size disagrees with ESS".into());
    }
    if b.costs.len() != b.diagram.plans.len() {
        return Err("cost matrix row count disagrees with plan count".into());
    }
    for row in b.costs.rows() {
        if row.len() != n {
            return Err("cost matrix column count disagrees with grid".into());
        }
    }
    if b.contours.len() != b.grading.len() {
        return Err("contour count disagrees with grading".into());
    }
    for c in &b.contours {
        if c.points.len() != c.assignment.len() {
            return Err(format!("contour {} assignment arity mismatch", c.id));
        }
        for &p in c.plan_set.iter().chain(&c.assignment) {
            if p >= b.diagram.plans.len() {
                return Err(format!("contour {} references unknown plan {p}", c.id));
            }
        }
        for &li in &c.points {
            if li >= n {
                return Err(format!(
                    "contour {} references out-of-grid point {li}",
                    c.id
                ));
            }
        }
    }
    b.workload.query.validate(&b.workload.catalog);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::BouquetConfig;
    use crate::workload::Workload;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn small_workload() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 32);
        Workload::new("EQ_1D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn json_roundtrip_preserves_runtime_behaviour() {
        let w = small_workload();
        let original = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let json = to_json(&original).unwrap();
        let loaded = from_json(&json).unwrap();
        assert_eq!(original.stats, loaded.stats);
        assert_eq!(original.grading, loaded.grading);
        // Identical discovery traces — the property that matters.
        for f in [0.1, 0.5, 0.9] {
            let qa = w.ess.point_at_fractions(&[f]);
            assert_eq!(
                original.run_basic(&qa).unwrap(),
                loaded.run_basic(&qa).unwrap()
            );
            assert_eq!(
                original.run_optimized(&qa).unwrap(),
                loaded.run_optimized(&qa).unwrap()
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let w = small_workload();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let path = std::env::temp_dir().join("pb_test_bouquet.json");
        save(&b, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(b.stats, loaded.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_corrupt_error_with_the_path() {
        use pb_faults::PbError;
        let w = small_workload();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let path = std::env::temp_dir().join("pb_test_truncated_bouquet.json");
        save(&b, &path).unwrap();
        // Chop the artifact mid-stream, as a crashed writer would.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        match load(&path) {
            Err(PbError::Corrupt { path: p, .. }) => {
                assert!(p.contains("pb_test_truncated_bouquet"))
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        use pb_faults::PbError;
        match load("/nonexistent/pb_bouquet_nowhere.json") {
            Err(PbError::Io { path, .. }) => assert!(path.contains("nowhere")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_artifacts_are_rejected() {
        let w = small_workload();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let json = to_json(&b).unwrap();
        // Truncate the cost matrix.
        let bad = json.replacen("\"costs\":[[", "\"costs\":[[999.0,", 1);
        assert!(from_json(&bad).is_err());
        // Garbage is rejected outright.
        assert!(from_json("{\"not\": \"a bouquet\"}").is_err());
    }

    #[test]
    fn fingerprints_recomputed_on_load() {
        let w = small_workload();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let loaded = from_json(&to_json(&b).unwrap()).unwrap();
        for (a, c) in b.diagram.plans.iter().zip(&loaded.diagram.plans) {
            assert_eq!(a.fingerprint(), c.fingerprint());
        }
    }
}
