//! Contour-band POSP exploration (paper, Section 4.2).
//!
//! Producing the complete POSP by optimizing every grid point is expensive in
//! higher dimensions. The paper observes that only the plans *on the isocost
//! contours* are needed, and proposes: optimize the two corners of the
//! principal diagonal (C_min, C_max), derive the isocost step costs, then
//! recursively subdivide the ESS into hypercubes, descending only into cubes
//! whose corner-cost range brackets a step cost. Only a narrow band of
//! locations around each contour is ever optimized.
//!
//! This module implements that recursion and reports the optimizer-call
//! savings versus the exhaustive diagram — the compile-time overhead
//! experiment of Section 6.1.

use std::collections::HashMap;

use pb_optimizer::Optimizer;

use crate::grading::IsoCostGrading;
use crate::workload::Workload;

/// Outcome of a contour-band exploration.
#[derive(Debug, Clone)]
pub struct BandResult {
    /// Optimal cost at every *optimized* linear grid index (the band).
    pub optimized: HashMap<usize, f64>,
    /// Number of optimizer invocations performed (≤ grid size).
    pub optimizer_calls: usize,
    /// Grid size, for the savings ratio.
    pub grid_points: usize,
    /// The grading derived from the diagonal corners.
    pub grading: IsoCostGrading,
}

impl BandResult {
    /// Fraction of grid points that were optimized.
    pub fn call_fraction(&self) -> f64 {
        self.optimizer_calls as f64 / self.grid_points as f64
    }
}

/// Explore only the contour bands of `w`'s ESS with isocost ratio `r`.
pub fn explore(w: &Workload, r: f64) -> BandResult {
    let ess = &w.ess;
    let opt = w.optimizer();
    let mut cache: HashMap<usize, f64> = HashMap::new();
    let mut calls = 0usize;

    let mut cost_at = |ix: &[usize], opt: &Optimizer, calls: &mut usize| -> f64 {
        let li = ess.linear(ix);
        *cache.entry(li).or_insert_with(|| {
            *calls += 1;
            opt.optimize(&ess.point(ix)).cost
        })
    };

    let origin = ess.origin();
    let terminus = ess.terminus();
    let cmin = cost_at(&origin, &opt, &mut calls);
    let cmax = cost_at(&terminus, &opt, &mut calls);
    let grading = IsoCostGrading::geometric(cmin, cmax, r);

    // Recursive hypercube subdivision over index boxes [lo, hi] (inclusive).
    let mut stack: Vec<(Vec<usize>, Vec<usize>)> = vec![(origin, terminus)];
    while let Some((lo, hi)) = stack.pop() {
        let clo = cost_at(&lo, &opt, &mut calls);
        // A frontier point q of step s satisfies cost(q) ≤ s while its
        // up-neighbours exceed s; the box holding q can therefore sit
        // strictly *below* s. Testing against the cost one grid step beyond
        // the box (clamped) makes sure such boxes are still descended into.
        let hi_plus: Vec<usize> = hi
            .iter()
            .enumerate()
            .map(|(d, &v)| (v + 1).min(ess.res[d] - 1))
            .collect();
        let chi = cost_at(&hi_plus, &opt, &mut calls);
        let crossed = grading
            .steps
            .iter()
            .any(|&s| s >= clo * (1.0 - 1e-12) && s <= chi * (1.0 + 1e-12));
        if !crossed {
            continue;
        }
        let widest = (0..ess.d()).max_by_key(|&d| hi[d] - lo[d]).unwrap_or(0);
        if hi[widest] - lo[widest] <= 1 {
            // Small enough: optimize every point inside the box.
            enumerate_box(&lo, &hi, &mut |ix| {
                cost_at(ix, &opt, &mut calls);
            });
            continue;
        }
        let mid = (lo[widest] + hi[widest]) / 2;
        let mut hi_left = hi.clone();
        hi_left[widest] = mid;
        let mut lo_right = lo.clone();
        lo_right[widest] = mid;
        stack.push((lo.clone(), hi_left));
        stack.push((lo_right, hi.clone()));
    }

    BandResult {
        optimized: cache,
        optimizer_calls: calls,
        grid_points: ess.num_points(),
        grading,
    }
}

fn enumerate_box(lo: &[usize], hi: &[usize], f: &mut impl FnMut(&[usize])) {
    let d = lo.len();
    let mut ix = lo.to_vec();
    loop {
        f(&ix);
        // odometer increment within [lo, hi]
        let mut dim = d;
        for i in (0..d).rev() {
            if ix[i] < hi[i] {
                dim = i;
                break;
            }
        }
        if dim == d {
            return;
        }
        ix[dim] += 1;
        ix[(dim + 1)..d].copy_from_slice(&lo[(dim + 1)..d]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::{Bouquet, BouquetConfig};
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_2d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            24,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn band_saves_optimizer_calls() {
        let w = eq_2d();
        let band = explore(&w, 2.0);
        assert!(band.optimizer_calls < band.grid_points);
    }

    /// The band's savings are resolution-dependent: as the grid refines, the
    /// contour bands occupy a vanishing fraction of it (this is what makes
    /// the Section 4.2 recursion worthwhile in higher dimensions).
    #[test]
    fn band_savings_grow_with_resolution() {
        let coarse = eq_2d();
        let fine = {
            let mut w = eq_2d();
            w.ess = Ess::uniform(w.ess.dims.clone(), 96);
            w
        };
        let fc = explore(&coarse, 4.0).call_fraction();
        let ff = explore(&fine, 4.0).call_fraction();
        assert!(
            ff < fc,
            "finer grid should need a smaller optimized fraction: {ff} vs {fc}"
        );
        assert!(
            ff < 0.6,
            "at 96² the band should cover well under 60%: {ff}"
        );
    }

    #[test]
    fn band_costs_agree_with_exhaustive_diagram() {
        let w = eq_2d();
        let band = explore(&w, 2.0);
        let d = w.diagram();
        for (&li, &c) in &band.optimized {
            assert!(
                (c - d.opt_cost[li]).abs() < 1e-9 * c,
                "band disagrees with diagram at {li}"
            );
        }
    }

    #[test]
    fn band_covers_every_contour_frontier_point() {
        let w = eq_2d();
        let band = explore(&w, 2.0);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        for c in &b.contours {
            for &li in &c.points {
                assert!(
                    band.optimized.contains_key(&li),
                    "contour {} frontier point {li} missed by band exploration",
                    c.id
                );
            }
        }
    }

    #[test]
    fn band_grading_matches_bouquet_grading() {
        let w = eq_2d();
        let band = explore(&w, 2.0);
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        assert_eq!(band.grading.len(), b.grading.len());
        for (a, bb) in band.grading.steps.iter().zip(&b.grading.steps) {
            assert!((a - bb).abs() < 1e-9 * a);
        }
    }
}
