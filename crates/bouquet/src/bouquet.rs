//! Bouquet identification — the compile-time pipeline of Figure 8.
//!
//! Steps: build the plan diagram over the ESS (POSP + PIC) → slice the PIC
//! with a geometric isocost grading → take the frontier of each isocost step
//! → anorexically reduce each contour's plan set → the union of contour
//! plans is the bouquet, handed to the run-time drivers together with the
//! (λ-inflated) budgets.

use std::time::{Duration, Instant};

use pb_cost::{
    par_map, CostMatrix, CostPerturbation, CostProgram, Parallelism, SelPoint,
    PARALLEL_MIN_CONTOUR_CELLS,
};
use pb_faults::PbError;
use pb_optimizer::{
    IncrementalDiagramStats, PlanDiagram, PlanId, SampledBuildConfig, SampledBuildStats,
};
use pb_plan::PhysicalPlan;

use crate::contour::{rho, Contour};
use crate::grading::IsoCostGrading;
use crate::workload::Workload;

/// Tunables of the bouquet mechanism.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BouquetConfig {
    /// Anorexic-reduction threshold λ (paper default 20%).
    pub lambda: f64,
    /// Isocost common ratio r (Theorem 1's optimum is 2).
    pub r: f64,
    /// Bounded model-error adversary (δ-framework, Section 3.4);
    /// `CostPerturbation::none()` for the perfect-model setting.
    pub perturbation: CostPerturbation,
}

impl Default for BouquetConfig {
    fn default() -> Self {
        BouquetConfig {
            lambda: 0.2,
            r: 2.0,
            perturbation: CostPerturbation::none(),
        }
    }
}

/// Compile-time effort and outcome statistics (Section 6.1).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompileStats {
    /// Optimizer invocations for the exhaustive diagram (= grid size).
    pub exhaustive_optimizer_calls: usize,
    /// Distinct POSP plans over the full grid.
    pub posp_cardinality: usize,
    /// Distinct plans in the bouquet (union over contours).
    pub bouquet_cardinality: usize,
    /// Densest contour's plan count *before* anorexic reduction.
    pub rho_posp: usize,
    /// Densest contour's plan count after anorexic reduction (the ρ of
    /// Theorem 3).
    pub rho: usize,
    /// Number of isocost steps m.
    pub num_contours: usize,
    /// PIC extremes.
    pub cmin: f64,
    pub cmax: f64,
}

/// Wall-clock breakdown of one identification run. Kept outside
/// [`CompileStats`] (and unserialized) so that timing jitter can never leak
/// into persisted artefacts — parallel and sequential runs must produce
/// byte-identical serializations.
#[derive(Debug, Clone)]
pub struct PhaseTimings {
    /// Workers the run was configured with.
    pub workers: usize,
    /// Plan-diagram construction (exhaustive optimization over the grid).
    pub diagram: Duration,
    /// POSP cost matrix (abstract-plan recosting of every plan everywhere).
    pub cost_matrix: Duration,
    /// Frontier scans + anorexic reduction over all isocost steps.
    pub contours: Duration,
    /// End-to-end identification time.
    pub total: Duration,
}

/// What an incremental re-identification reused versus redid: the diagram
/// layer's chunk accounting plus the contour layer's cache hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IncrementalIdentifyStats {
    pub diagram: IncrementalDiagramStats,
    pub contours_total: usize,
    /// Contours lifted verbatim from the stale bouquet (their step cost,
    /// frontier, PIC values, and cost-matrix columns were all bit-unchanged,
    /// so anorexic reduction was skipped).
    pub contours_reused: usize,
}

/// A compiled plan bouquet, ready for run-time discovery.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Bouquet {
    pub workload: Workload,
    pub diagram: PlanDiagram,
    /// `costs[plan][linear_point]` — every POSP plan recosted everywhere.
    pub costs: CostMatrix,
    pub grading: IsoCostGrading,
    pub contours: Vec<Contour>,
    pub config: BouquetConfig,
    pub stats: CompileStats,
    /// Compiled cost programs, one per diagram plan, built lazily on first
    /// use. Never serialized — recompiled on demand after a reload.
    #[serde(skip)]
    pub(crate) programs: std::sync::OnceLock<Vec<CostProgram>>,
}

impl Bouquet {
    /// Run the full compile-time pipeline for a workload, using all
    /// available cores (or the `--jobs` override).
    pub fn identify(w: &Workload, cfg: &BouquetConfig) -> Result<Bouquet, PbError> {
        Self::identify_with(w, cfg, Parallelism::auto())
    }

    /// Identification with an explicit worker policy. Any worker count
    /// produces an identical bouquet — parallel phases merge in
    /// deterministic grid/step order.
    pub fn identify_with(
        w: &Workload,
        cfg: &BouquetConfig,
        par: Parallelism,
    ) -> Result<Bouquet, PbError> {
        Self::identify_timed(w, cfg, par).map(|(b, _)| b)
    }

    /// Identification returning the per-phase wall-clock breakdown next to
    /// the bouquet (timings stay outside the serialized artefact).
    pub fn identify_timed(
        w: &Workload,
        cfg: &BouquetConfig,
        par: Parallelism,
    ) -> Result<(Bouquet, PhaseTimings), PbError> {
        validate_config(cfg)?;
        let t_start = Instant::now();
        let diagram = PlanDiagram::build_with(&w.catalog, &w.query, &w.model, &w.ess, par);
        let t_diagram = t_start.elapsed();

        let t0 = Instant::now();
        let costs = diagram.cost_matrix_with(&w.catalog, &w.query, &w.model, par);
        let t_cost_matrix = t0.elapsed();

        let (bouquet, t_contours, _) =
            Self::assemble_from_diagram(w, cfg, diagram, costs, w.ess.num_points(), None, par)?;
        let timings = PhaseTimings {
            workers: par.workers,
            diagram: t_diagram,
            cost_matrix: t_cost_matrix,
            contours: t_contours,
            total: t_start.elapsed(),
        };
        Ok((bouquet, timings))
    }

    /// Identification with a *sampled* plan diagram ([`PlanDiagram::
    /// build_sampled`]): the exhaustive grid sweep of DP calls is replaced
    /// by seeded sampling + refinement with an (ε, δ) optimality-mass
    /// contract, and the diagram's pool-sweep cost matrix is reused for the
    /// bouquet, so the cost-matrix phase vanishes. Contours, budgets, and
    /// drivers work off the sampled diagram exactly as they would off the
    /// exact one — `stats.exhaustive_optimizer_calls` records the DP calls
    /// actually spent. The exact path ([`Bouquet::identify`]) is untouched.
    pub fn identify_sampled(
        w: &Workload,
        cfg: &BouquetConfig,
        scfg: &SampledBuildConfig,
        par: Parallelism,
    ) -> Result<(Bouquet, PhaseTimings, SampledBuildStats), PbError> {
        validate_config(cfg)?;
        let t_start = Instant::now();
        let sd = PlanDiagram::build_sampled(&w.catalog, &w.query, &w.model, &w.ess, scfg, par)?;
        let t_diagram = t_start.elapsed();
        let (bouquet, t_contours, _) = Self::assemble_from_diagram(
            w,
            cfg,
            sd.diagram,
            sd.costs,
            sd.stats.optimizer_calls,
            None,
            par,
        )?;
        let timings = PhaseTimings {
            workers: par.workers,
            diagram: t_diagram,
            cost_matrix: Duration::ZERO,
            contours: t_contours,
            total: t_start.elapsed(),
        };
        Ok((bouquet, timings, sd.stats))
    }

    /// Re-identify after statistics drift, reusing a stale bouquet compiled
    /// for the *same* query/ESS/config under older statistics. The diagram
    /// layer reuses the stale winners as DP incumbents
    /// ([`PlanDiagram::build_incremental`]), and contours whose inputs are
    /// bit-unchanged — step cost, frontier, PIC values, and cost columns at
    /// the frontier points — are lifted verbatim instead of re-reduced. The
    /// result is bitwise identical to a from-scratch
    /// [`Bouquet::identify_with`] on `w` (enforced by tests).
    pub fn identify_incremental(
        w: &Workload,
        prev: &Bouquet,
        par: Parallelism,
    ) -> Result<(Bouquet, PhaseTimings, IncrementalIdentifyStats), PbError> {
        let cfg = prev.config.clone();
        validate_config(&cfg)?;
        let t_start = Instant::now();
        let (diagram, dstats) = PlanDiagram::build_incremental(
            &w.catalog,
            &w.query,
            &w.model,
            &w.ess,
            &prev.diagram,
            par,
        );
        let t_diagram = t_start.elapsed();
        let t0 = Instant::now();
        let costs = diagram.cost_matrix_with(&w.catalog, &w.query, &w.model, par);
        let t_cost_matrix = t0.elapsed();
        let (bouquet, t_contours, contours_reused) = Self::assemble_from_diagram(
            w,
            &cfg,
            diagram,
            costs,
            w.ess.num_points(),
            Some(prev),
            par,
        )?;
        let stats = IncrementalIdentifyStats {
            diagram: dstats,
            contours_total: bouquet.contours.len(),
            contours_reused,
        };
        let timings = PhaseTimings {
            workers: par.workers,
            diagram: t_diagram,
            cost_matrix: t_cost_matrix,
            contours: t_contours,
            total: t_start.elapsed(),
        };
        Ok((bouquet, timings, stats))
    }

    /// Shared tail of every identification path: PCM check, isocost
    /// grading, frontier scans, contour assembly (with per-contour reuse
    /// against `reuse_from` when its inputs are bit-unchanged), and stats.
    /// Returns the bouquet, the contour-phase wall time, and how many
    /// contours were reused.
    fn assemble_from_diagram(
        w: &Workload,
        cfg: &BouquetConfig,
        diagram: PlanDiagram,
        costs: CostMatrix,
        optimizer_calls: usize,
        reuse_from: Option<&Bouquet>,
        par: Parallelism,
    ) -> Result<(Bouquet, Duration, usize), PbError> {
        let (cmin, cmax) = diagram.cost_bounds();
        // PCM sanity: the PIC must be monotone along every axis; queries
        // violating this (e.g. existential operators, Section 2) are not
        // amenable to the bouquet technique.
        check_pic_monotone(&diagram)?;

        let grading = IsoCostGrading::geometric(cmin, cmax, cfg.r);
        let n = w.ess.num_points();
        // The frontier scan visits steps × grid-points cells of a few ns
        // each — fan out only when that volume is large enough to repay
        // thread handoff (the satellite fix for the 2D regression where a
        // global grid-size threshold parallelised a 0.1 ms phase).
        let cpar = par.for_cells(grading.steps.len() * n, PARALLEL_MIN_CONTOUR_CELLS);

        // One frontier scan per isocost step, fanned out across steps, then
        // reused for both ρ_posp and the contours themselves.
        let t0 = Instant::now();
        let frontiers = par_map(cpar, grading.steps.len(), |k| {
            Contour::frontier(&diagram, grading.steps[k])
        });

        // ρ before reduction: distinct optimal plans per frontier.
        let rho_posp = frontiers
            .iter()
            .map(|f| {
                let mut plans: Vec<u32> = f.iter().map(|&li| diagram.optimal[li]).collect();
                plans.sort_unstable();
                plans.dedup();
                plans.len()
            })
            .max()
            .unwrap_or(0);

        let (contours, contours_reused) = match reuse_from {
            None => (
                Contour::build_from_frontiers(
                    &diagram, &grading, &costs, cfg.lambda, frontiers, cpar,
                ),
                0,
            ),
            Some(prev) => reuse_contours(&diagram, &grading, &costs, cfg.lambda, frontiers, prev),
        };
        let t_contours = t0.elapsed();

        let bouquet_cardinality = {
            let mut all: Vec<PlanId> = contours.iter().flat_map(|c| c.plan_set.clone()).collect();
            all.sort_unstable();
            all.dedup();
            all.len()
        };
        let stats = CompileStats {
            exhaustive_optimizer_calls: optimizer_calls,
            posp_cardinality: diagram.plan_count(),
            bouquet_cardinality,
            rho_posp,
            rho: rho(&contours),
            num_contours: contours.len(),
            cmin,
            cmax,
        };
        Ok((
            Bouquet {
                workload: w.clone(),
                diagram,
                costs,
                grading,
                contours,
                config: cfg.clone(),
                stats,
                programs: std::sync::OnceLock::new(),
            },
            t_contours,
            contours_reused,
        ))
    }

    /// Compiled cost programs for every diagram plan (indexed by [`PlanId`]),
    /// built once on first use. The run-time drivers re-cost pool plans at
    /// every budget step; evaluating the flat programs avoids re-walking the
    /// plan trees on each probe.
    pub fn programs(&self) -> &[CostProgram] {
        self.programs.get_or_init(|| {
            self.diagram
                .plans
                .iter()
                .map(|p| {
                    CostProgram::compile(
                        &self.workload.catalog,
                        &self.workload.query,
                        &self.workload.model,
                        &p.root,
                    )
                })
                .collect()
        })
    }

    /// The bouquet plan set: union of contour plan sets (diagram plan ids).
    pub fn plan_ids(&self) -> Vec<PlanId> {
        let mut all: Vec<PlanId> = self
            .contours
            .iter()
            .flat_map(|c| c.plan_set.clone())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    pub fn plan(&self, id: PlanId) -> &PhysicalPlan {
        &self.diagram.plans[id]
    }

    /// Maximum contour plan density ρ.
    pub fn rho(&self) -> usize {
        self.stats.rho
    }

    /// The deterministic worst-case guarantee of Theorem 3 with the anorexic
    /// correction of Section 3.3: `MSO ≤ (1+λ) · ρ · r² / (r−1)`.
    pub fn mso_bound(&self) -> f64 {
        crate::theory::mso_bound_anorexic(self.rho(), self.config.r, self.config.lambda)
    }

    /// Equation 8's tighter per-contour bound:
    /// `max_k Σ_{i≤k} n_i · cost(IC_i) / IC_{k−1}` (with λ inflation).
    pub fn mso_bound_eq8(&self) -> f64 {
        let mut cum = 0.0;
        let mut worst: f64 = 0.0;
        for (k, c) in self.contours.iter().enumerate() {
            cum += c.density() as f64 * c.budget;
            // Cheapest possible optimal cost for a query discovered on
            // contour k: just above the previous step (C_min for k = 0).
            let floor = if k == 0 {
                self.stats.cmin
            } else {
                self.contours[k - 1].step_cost
            };
            worst = worst.max(cum / floor);
        }
        worst
    }

    /// PIC (optimal) cost at a grid point given by linear index.
    pub fn pic_cost_at(&self, li: usize) -> f64 {
        self.diagram.opt_cost[li]
    }

    /// PIC cost at an arbitrary location (snapped down to the grid when
    /// off-grid, which under-estimates — the conservative direction).
    pub fn pic_cost(&self, q: &SelPoint) -> f64 {
        let ix = self.workload.ess.snap_floor(q);
        self.diagram.opt_cost[self.workload.ess.linear(&ix)]
    }
}

fn validate_config(cfg: &BouquetConfig) -> Result<(), PbError> {
    if cfg.lambda < 0.0 {
        return Err(PbError::InvalidConfig("lambda must be non-negative".into()));
    }
    if cfg.r <= 1.0 {
        return Err(PbError::InvalidConfig(
            "isocost ratio r must exceed 1".into(),
        ));
    }
    Ok(())
}

/// Assemble contours, lifting one verbatim from `prev` whenever every input
/// anorexic reduction reads is bit-unchanged. [`Contour::assemble`]'s output
/// is a pure function of `(number of plans, cost columns and PIC values at
/// the frontier points, lambda, k, step_cost, points)` — the plan-identity
/// prerequisite additionally pins the *meaning* of the cached plan ids, so
/// a reused contour equals what recomputation would produce, bit for bit.
fn reuse_contours(
    diagram: &PlanDiagram,
    grading: &IsoCostGrading,
    costs: &CostMatrix,
    lambda: f64,
    frontiers: Vec<Vec<usize>>,
    prev: &Bouquet,
) -> (Vec<Contour>, usize) {
    let plans_unchanged = (lambda - prev.config.lambda).abs() == 0.0
        && diagram.plans.len() == prev.diagram.plans.len()
        && costs.len() == prev.costs.len()
        && diagram
            .plans
            .iter()
            .zip(&prev.diagram.plans)
            .all(|(a, b)| a.fingerprint() == b.fingerprint());
    let mut reused = 0;
    let mut contours = Vec::with_capacity(grading.steps.len());
    for (k, points) in frontiers.into_iter().enumerate() {
        let cached = prev.contours.get(k).filter(|c| {
            plans_unchanged
                && prev
                    .grading
                    .steps
                    .get(k)
                    .is_some_and(|s| s.to_bits() == grading.steps[k].to_bits())
                && c.points == points
                && points.iter().all(|&li| {
                    diagram.opt_cost[li].to_bits() == prev.diagram.opt_cost[li].to_bits()
                        && (0..costs.len())
                            .all(|p| costs[p][li].to_bits() == prev.costs[p][li].to_bits())
                })
        });
        match cached {
            Some(c) => {
                reused += 1;
                contours.push(c.clone());
            }
            None => {
                contours.push(Contour::assemble(
                    diagram,
                    costs,
                    lambda,
                    k,
                    grading.steps[k],
                    points,
                ));
            }
        }
    }
    (contours, reused)
}

fn check_pic_monotone(diagram: &PlanDiagram) -> Result<(), PbError> {
    let ess = &diagram.ess;
    let mut ix = Vec::new();
    for li in 0..ess.num_points() {
        ess.unlinear_into(li, &mut ix);
        for d in 0..ess.d() {
            if ix[d] + 1 < ess.res[d] {
                ix[d] += 1;
                let upc = diagram.opt_cost[ess.linear(&ix)];
                ix[d] -= 1;
                if upc < diagram.opt_cost[li] * (1.0 - 1e-9) {
                    return Err(PbError::Identification(format!(
                        "PIC violates Plan Cost Monotonicity at point {ix:?} dim {d}: \
                         {} -> {upc}",
                        diagram.opt_cost[li]
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_1d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 48);
        Workload::new("EQ_1D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn identify_produces_consistent_bouquet() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        assert!(b.stats.num_contours >= 2);
        assert!(b.stats.bouquet_cardinality >= 2);
        assert!(b.stats.bouquet_cardinality <= b.stats.posp_cardinality);
        assert!(b.stats.rho <= b.stats.rho_posp);
        assert_eq!(b.plan_ids().len(), b.stats.bouquet_cardinality);
        // 1D contours hold exactly one frontier point each.
        for c in &b.contours {
            assert_eq!(c.points.len(), 1, "1D contour must be a single point");
            assert_eq!(c.density(), 1);
        }
    }

    #[test]
    fn one_dim_rho_is_one_so_bound_is_anorexic_four() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        assert_eq!(b.rho(), 1);
        assert!((b.mso_bound() - 4.8).abs() < 1e-9); // 4 · (1 + 0.2)
    }

    #[test]
    fn eq8_bound_is_no_looser_than_closed_form() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        // Equation 8 accounts for actual densities; closed form uses ρ and
        // the worst geometric tail, so eq8 ≤ closed form — but only up to
        // grid effects on the first contour. Allow equality slack.
        assert!(b.mso_bound_eq8() <= b.mso_bound() * (b.grading.r / (b.grading.r - 1.0)));
        assert!(b.mso_bound_eq8() >= 1.0);
    }

    #[test]
    fn bad_config_rejected() {
        let w = eq_1d();
        assert!(Bouquet::identify(
            &w,
            &BouquetConfig {
                lambda: -0.1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Bouquet::identify(
            &w,
            &BouquetConfig {
                r: 1.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    fn eq_2d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            24,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    fn drift(w: &Workload, scale: f64) -> Workload {
        Workload::new(
            w.name.clone(),
            tpch::catalog(scale),
            w.query.clone(),
            w.ess.clone(),
            w.model.clone(),
        )
    }

    #[test]
    fn incremental_identify_is_bitwise_identical_to_fresh() {
        let w = eq_1d();
        let cfg = BouquetConfig::default();
        let prev = Bouquet::identify(&w, &cfg).unwrap();
        let drifted = drift(&w, 1.04);
        let fresh = Bouquet::identify(&drifted, &cfg).unwrap();
        let (inc, _, stats) =
            Bouquet::identify_incremental(&drifted, &prev, Parallelism::serial()).unwrap();
        assert!(!stats.diagram.full_rebuild);
        assert_eq!(stats.contours_total, fresh.contours.len());
        assert_eq!(
            crate::persist::to_json(&inc).unwrap(),
            crate::persist::to_json(&fresh).unwrap(),
            "incremental re-identification must be bitwise identical to fresh"
        );
    }

    #[test]
    fn incremental_identify_without_drift_reuses_everything() {
        let w = eq_1d();
        let cfg = BouquetConfig::default();
        let prev = Bouquet::identify(&w, &cfg).unwrap();
        let (inc, _, stats) =
            Bouquet::identify_incremental(&w, &prev, Parallelism::serial()).unwrap();
        assert_eq!(stats.diagram.points_changed, 0);
        assert_eq!(stats.contours_reused, stats.contours_total);
        assert_eq!(
            crate::persist::to_json(&inc).unwrap(),
            crate::persist::to_json(&prev).unwrap()
        );
    }

    #[test]
    fn sampled_identify_yields_valid_deterministic_bouquet() {
        let w = eq_2d();
        let cfg = BouquetConfig::default();
        let scfg = SampledBuildConfig {
            seed: 11,
            epsilon: 0.1,
            delta: 0.1,
            initial_samples: 48,
            max_rounds: 8,
        };
        let (a, _, stats) =
            Bouquet::identify_sampled(&w, &cfg, &scfg, Parallelism::serial()).unwrap();
        assert!(stats.converged);
        assert!(!stats.exhaustive_fallback);
        assert_eq!(a.stats.exhaustive_optimizer_calls, stats.optimizer_calls);
        assert!(stats.optimizer_calls < w.ess.num_points());
        assert!(a.stats.num_contours >= 2);
        assert!(a.mso_bound().is_finite());
        // The sampled PIC never undercuts the exact one (pool ⊆ all plans).
        let exact = Bouquet::identify(&w, &cfg).unwrap();
        for li in 0..w.ess.num_points() {
            assert!(a.pic_cost_at(li) >= exact.pic_cost_at(li) * (1.0 - 1e-9));
        }
        // Same seed, different worker count: bitwise-identical bouquet.
        let (b, _, _) = Bouquet::identify_sampled(&w, &cfg, &scfg, Parallelism::new(4)).unwrap();
        assert_eq!(
            crate::persist::to_json(&a).unwrap(),
            crate::persist::to_json(&b).unwrap()
        );
    }

    #[test]
    fn pic_cost_lookup_matches_diagram() {
        let w = eq_1d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        for li in (0..w.ess.num_points()).step_by(5) {
            let q = w.ess.point(&w.ess.unlinear(li));
            assert!((b.pic_cost(&q) - b.pic_cost_at(li)).abs() < 1e-9 * b.pic_cost_at(li));
        }
    }
}
