//! A workload bundles everything a bouquet needs: catalog, query, ESS, model.

use pb_catalog::Catalog;
use pb_cost::{CostModel, Coster, Ess, SelPoint};
use pb_optimizer::{Optimizer, PlanDiagram};
use pb_plan::QuerySpec;

/// One benchmark error space: a query over a catalog with a designated
/// error-prone selectivity space and a cost-model personality. This is the
/// unit the paper's Table 2 enumerates (`3D_H_Q5`, `5D_DS_Q19`, …).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    pub name: String,
    pub catalog: Catalog,
    pub query: QuerySpec,
    pub ess: Ess,
    pub model: CostModel,
}

impl Workload {
    pub fn new(
        name: impl Into<String>,
        catalog: Catalog,
        query: QuerySpec,
        ess: Ess,
        model: CostModel,
    ) -> Self {
        let name = name.into();
        assert_eq!(
            query.num_dims,
            ess.d(),
            "query declares {} error dims but ESS has {}",
            query.num_dims,
            ess.d()
        );
        query.validate(&catalog);
        // Typed axes: a declared dimension kind must match what the query's
        // predicate structure derives for it. The `Selection` default is
        // tolerated on any axis so legacy untyped declarations keep working.
        for (d, dim) in ess.dims.iter().enumerate() {
            if dim.kind == pb_cost::DimKind::Selection {
                continue;
            }
            let derived = query.dim_kind(d);
            assert!(
                derived == Some(dim.kind),
                "ESS dim {d} ({}) declared {} but the query derives {:?}",
                dim.name,
                dim.kind,
                derived
            );
        }
        Workload {
            name,
            catalog,
            query,
            ess,
            model,
        }
    }

    /// Dimensionality of the error space.
    pub fn d(&self) -> usize {
        self.ess.d()
    }

    pub fn coster(&self) -> Coster<'_> {
        Coster::new(&self.catalog, &self.query, &self.model)
    }

    pub fn optimizer(&self) -> Optimizer<'_> {
        Optimizer::new(&self.catalog, &self.query, &self.model)
    }

    /// Exhaustive plan diagram over the ESS grid (parallel).
    pub fn diagram(&self) -> PlanDiagram {
        PlanDiagram::build(&self.catalog, &self.query, &self.model, &self.ess)
    }

    /// The optimal cost at an arbitrary (off-grid) location.
    pub fn optimal_cost(&self, q: &SelPoint) -> f64 {
        self.optimizer().optimize(q).cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_cost::EssDim;
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    pub(crate) fn eq_1d_small() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 48);
        Workload::new("EQ_1D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn workload_construction_and_accessors() {
        let w = eq_1d_small();
        assert_eq!(w.d(), 1);
        let d = w.diagram();
        assert!(d.plan_count() >= 3);
        let q = w.ess.point_at_fractions(&[0.5]);
        assert!(w.optimal_cost(&q) > 0.0);
    }

    #[test]
    fn typed_dims_accepted_when_kinds_match() {
        let w = eq_1d_small();
        let typed = Ess::uniform(vec![EssDim::selection("p_retailprice", 1e-4, 1.0)], 48);
        let t = Workload::new(
            "EQ_1D_T",
            w.catalog.clone(),
            w.query.clone(),
            typed,
            w.model,
        );
        assert_eq!(t.ess.dims[0].kind, pb_cost::DimKind::Selection);
    }

    #[test]
    #[should_panic(expected = "declared")]
    fn typed_dim_kind_mismatch_rejected() {
        let w = eq_1d_small();
        // Dim 0 is a selection predicate; declaring it as an anti-join axis
        // must be rejected.
        let bad = Ess::uniform(vec![EssDim::anti_join("p_retailprice", 1e-4, 1.0)], 48);
        Workload::new("bad", w.catalog.clone(), w.query.clone(), bad, w.model);
    }

    #[test]
    #[should_panic(expected = "error dims")]
    fn dim_mismatch_rejected() {
        let w = eq_1d_small();
        let bad_ess = Ess::uniform(
            vec![EssDim::new("a", 1e-4, 1.0), EssDim::new("b", 1e-4, 1.0)],
            8,
        );
        Workload::new(
            "bad",
            w.catalog.clone(),
            w.query.clone(),
            bad_ess,
            w.model.clone(),
        );
    }
}
