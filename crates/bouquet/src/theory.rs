//! Closed-form robustness guarantees (paper, Section 3).

/// Theorem 1: for a 1D error space discretized geometrically with ratio `r`,
/// the bouquet's MSO is at most `r² / (r − 1)`.
pub fn mso_bound_1d(r: f64) -> f64 {
    assert!(r > 1.0);
    r * r / (r - 1.0)
}

/// Theorem 3: with maximum contour plan density ρ, `MSO ≤ ρ · r²/(r−1)`.
pub fn mso_bound_multi(rho: usize, r: f64) -> f64 {
    rho as f64 * mso_bound_1d(r)
}

/// Section 3.3: anorexic reduction trades a `(1+λ)` inflation for a much
/// smaller ρ: `MSO ≤ (1+λ) · ρ_anorexic · r²/(r−1)`.
pub fn mso_bound_anorexic(rho: usize, r: f64, lambda: f64) -> f64 {
    (1.0 + lambda) * mso_bound_multi(rho, r)
}

/// Section 3.4: bounded modeling errors inflate any MSO guarantee by at most
/// `(1 + δ)²`.
pub fn model_error_inflation(delta: f64) -> f64 {
    (1.0 + delta) * (1.0 + delta)
}

/// The ratio minimizing `r²/(r−1)` — Theorem 1's optimum (cost doubling).
pub fn optimal_ratio() -> f64 {
    2.0
}

/// Theorem 2: no deterministic online algorithm has 1D MSO below 4.
pub const DETERMINISTIC_LOWER_BOUND: f64 = 4.0;

/// Worst-case cumulative/oracle cost ratio of an arbitrary monotone budget
/// sequence — the quantity Theorem 2 lower-bounds. Used to *demonstrate*
/// the theorem numerically: for any increasing sequence of budgets, the
/// adversary places qa just above the budget that was barely insufficient.
pub fn adversarial_mso(budgets: &[f64]) -> f64 {
    assert!(!budgets.is_empty());
    let mut worst: f64 = 1.0;
    let mut cum = 0.0;
    for j in 0..budgets.len() {
        cum += budgets[j];
        if j + 1 < budgets.len() {
            // qa chosen so that budgets[j] just fails: oracle pays budgets[j].
            worst = worst.max((cum + budgets[j + 1]) / budgets[j]);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_bound_at_doubling_is_four() {
        assert!((mso_bound_1d(2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn r_equal_two_minimizes_the_bound() {
        let at2 = mso_bound_1d(2.0);
        for i in 1..400 {
            let r = 1.0 + i as f64 * 0.01;
            if (r - 2.0).abs() < 1e-9 {
                continue;
            }
            assert!(
                mso_bound_1d(r) >= at2 - 1e-12,
                "r={r} beats the doubling bound"
            );
        }
    }

    #[test]
    fn multi_dim_bound_scales_with_rho() {
        assert!((mso_bound_multi(5, 2.0) - 20.0).abs() < 1e-12);
        assert!((mso_bound_anorexic(5, 2.0, 0.2) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn model_error_inflation_matches_paper_example() {
        // δ = 0.4 (the observed PostgreSQL average) → at most 1.96 ≈ 2×.
        let f = model_error_inflation(0.4);
        assert!((f - 1.96).abs() < 1e-12);
    }

    /// Numerical demonstration of Theorem 2: geometric doubling achieves the
    /// adversarial optimum among a family of budget sequences; nothing
    /// tested goes below 4.
    #[test]
    fn theorem2_no_sequence_beats_four() {
        // Geometric sequences with assorted ratios.
        for r in [1.3f64, 1.6, 2.0, 2.5, 3.0, 4.0] {
            let budgets: Vec<f64> = (0..40).map(|k| r.powi(k)).collect();
            let mso = adversarial_mso(&budgets);
            // The finite-horizon adversary approaches the r²/(r−1) asymptote
            // from below; with 40 steps it is within 1e-6 of it.
            assert!(mso >= 4.0 - 1e-6, "ratio {r} beat the lower bound: {mso}");
            assert!(
                mso <= mso_bound_1d(r) + 1e-9,
                "ratio {r} exceeded its own Theorem 1 bound"
            );
            if (r - 2.0).abs() < 1e-9 {
                assert!(mso <= 4.0 + 1e-9, "doubling should achieve (at most) 4");
            }
        }
        // Non-geometric attempts (linear, quadratic, Fibonacci-ish).
        let linear: Vec<f64> = (1..40).map(|k| k as f64).collect();
        assert!(adversarial_mso(&linear) >= 4.0);
        let quad: Vec<f64> = (1..40).map(|k| (k * k) as f64).collect();
        assert!(adversarial_mso(&quad) >= 4.0);
        let mut fib = vec![1.0, 2.0];
        for i in 2..40 {
            let v: f64 = fib[i - 1] + fib[i - 2];
            fib.push(v);
        }
        assert!(adversarial_mso(&fib) >= 4.0);
    }
}
