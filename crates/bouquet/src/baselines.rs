//! Mid-query re-optimization baseline (POP / Rio style — paper, Section 7).
//!
//! The paper excludes these heuristics from its head-to-head evaluation
//! because "their performance could be arbitrarily poor with regard to both
//! P_oe and P_oa"; this module makes that claim executable. The simulated
//! re-optimizer starts from the optimizer's estimate (not the origin!),
//! runs the chosen plan until the first unresolved error node has consumed
//! its input — at which point that selectivity is known exactly — then
//! re-optimizes at the corrected estimate and restarts, jettisoning prior
//! work (the same conservative accounting the bouquet analysis uses).
//!
//! Contrast with the bouquet: the re-optimizer's exploratory spend is the
//! *prefix cost of whatever plan the estimate seduced it into*, which is
//! unbounded relative to the true optimum; the bouquet's spend is a
//! geometrically-graded budget ladder, which is why only it has an MSO
//! guarantee.

use pb_cost::{CostMatrix, Ess, SelPoint};
use pb_executor::learnable_node;
use pb_optimizer::PlanDiagram;
use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// One simulated re-optimizer execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReoptRun {
    /// Plan switches (full restarts) before the final execution.
    pub restarts: usize,
    /// Total cost: all jettisoned prefixes plus the final execution.
    pub total_cost: f64,
    /// Cost of each jettisoned prefix, in order.
    pub prefix_costs: Vec<f64>,
}

impl ReoptRun {
    pub fn suboptimality(&self, optimal_cost: f64) -> f64 {
        self.total_cost / optimal_cost
    }
}

/// Simulate the re-optimizer for a query whose estimate is `qe` and whose
/// true location is `qa`.
pub fn run_reoptimizer(w: &Workload, qe: &SelPoint, qa: &SelPoint) -> ReoptRun {
    let d = w.ess.d();
    assert_eq!(qe.dims(), d);
    assert_eq!(qa.dims(), d);
    let opt = w.optimizer();
    let coster = w.coster();

    let mut q_est: Vec<f64> = qe.0.clone();
    let mut resolved = vec![false; d];
    let mut prefix_costs = Vec::new();
    let mut total = 0.0;

    loop {
        let plan = opt.optimize(&q_est).plan;
        match learnable_node(&plan.root, &w.query, &resolved) {
            None => {
                // Every error dimension resolved: the final plan runs to
                // completion at the true location.
                total += coster.plan_cost(&plan.root, qa);
                return ReoptRun {
                    restarts: prefix_costs.len(),
                    total_cost: total,
                    prefix_costs,
                };
            }
            Some((node, dims)) => {
                // Run until the error node consumes its input; its true
                // selectivity is then known (the prefix contains only
                // resolved dimensions below it, so costing at qa is exact).
                let prefix = coster.plan_cost(node, qa);
                prefix_costs.push(prefix);
                total += prefix;
                for dm in dims {
                    resolved[dm] = true;
                    q_est[dm] = qa[dm];
                }
            }
        }
    }
}

/// Sampled worst-case sub-optimality of the re-optimizer: for every grid
/// qa, the worst over a set of representative estimates (ESS corners plus
/// the centre — the adversarial estimates that drive NAT's MSO).
pub fn reopt_worst_profile(w: &Workload, opt_cost: &[f64]) -> Vec<f64> {
    let ess = &w.ess;
    let d = ess.d();
    // Estimate sample: all corners + centre (2^D + 1 points, D ≤ 5).
    let mut estimates: Vec<SelPoint> = (0..(1usize << d))
        .map(|bits| {
            let fr: Vec<f64> = (0..d)
                .map(|i| if bits & (1 << i) != 0 { 1.0 } else { 0.0 })
                .collect();
            ess.point_at_fractions(&fr)
        })
        .collect();
    estimates.push(ess.point_at_fractions(&vec![0.5; d]));

    (0..ess.num_points())
        .map(|li| {
            let qa = ess.point(&ess.unlinear(li));
            estimates
                .iter()
                .map(|qe| run_reoptimizer(w, qe, &qa).suboptimality(opt_cost[li]))
                .fold(1.0f64, f64::max)
        })
        .collect()
}

/// Configuration for the PARQO-style penalty-aware selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParqoConfig {
    /// Chebyshev radius of the error neighborhood, in grid steps per
    /// dimension. Radius 0 degenerates to NAT (trust the estimate).
    pub radius: usize,
    /// Per-step geometric decay of a neighbor's weight: a neighbor at
    /// Manhattan distance `m` weighs `decay^m`. 1.0 is a uniform box.
    pub decay: f64,
}

impl Default for ParqoConfig {
    fn default() -> Self {
        ParqoConfig {
            radius: 1,
            decay: 0.5,
        }
    }
}

/// PARQO-style penalty-aware plan selection (see PAPERS.md).
///
/// A third static baseline between NAT and SEER: instead of trusting the
/// point estimate outright (NAT) or demanding a globally-safe replacement
/// (SEER), hedge *locally*. For each estimate location the candidate set is
/// the POSP plans that are optimal somewhere in an error neighborhood
/// around the estimate, and the winner minimizes the expected **penalty**
///
/// ```text
///   penalty(P, q) = cost_P(q) − opt(q)
/// ```
///
/// over that neighborhood under a distance-decayed error distribution.
/// Like NAT and SEER this yields one plan per estimate location, so it is
/// evaluated with the same `single_plan_metrics` machinery — and like both,
/// it carries no worst-case guarantee: the neighborhood is a guess about
/// the error magnitude, and an actual location outside it can still be
/// arbitrarily penalized (which is exactly what the hostile workloads
/// demonstrate against the bouquet's bounded ladder).
pub fn parqo_assignment(
    ess: &Ess,
    diagram: &PlanDiagram,
    costs: &CostMatrix,
    cfg: &ParqoConfig,
) -> Vec<usize> {
    let d = ess.d();
    let n = ess.num_points();
    assert_eq!(diagram.optimal.len(), n);
    let r = cfg.radius as isize;
    (0..n)
        .map(|li| {
            let center = ess.unlinear(li);
            // Gather the (neighbor, weight) support of the error
            // distribution; neighbors falling off the grid are dropped
            // (truncated distribution), not clamped, so boundary cells do
            // not double-weight their edge.
            let mut support: Vec<(usize, f64)> = Vec::new();
            let mut offs = vec![-r; d];
            'odometer: loop {
                let mut ix = Vec::with_capacity(d);
                let mut dist = 0usize;
                let mut ok = true;
                for (dim, &o) in offs.iter().enumerate() {
                    let i = center[dim] as isize + o;
                    if i < 0 || i as usize >= ess.res[dim] {
                        ok = false;
                        break;
                    }
                    ix.push(i as usize);
                    dist += o.unsigned_abs();
                }
                if ok {
                    support.push((ess.linear(&ix), cfg.decay.powi(dist as i32)));
                }
                for slot in (0..d).rev() {
                    if offs[slot] < r {
                        offs[slot] += 1;
                        for later in offs.iter_mut().skip(slot + 1) {
                            *later = -r;
                        }
                        continue 'odometer;
                    }
                }
                break;
            }
            // Candidates: plans optimal somewhere in the neighborhood.
            let mut cands: Vec<usize> = support
                .iter()
                .map(|&(q, _)| diagram.optimal[q] as usize)
                .collect();
            cands.sort_unstable();
            cands.dedup();
            // Lowest expected penalty wins; ties break to the smaller plan
            // id so the assignment is deterministic.
            let mut best = (f64::INFINITY, usize::MAX);
            for &p in &cands {
                let score: f64 = support
                    .iter()
                    .map(|&(q, w)| w * (costs[p][q] - diagram.opt_cost[q]))
                    .sum();
                if score < best.0 {
                    best = (score, p);
                }
            }
            best.1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::{Bouquet, BouquetConfig};
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_2d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            16,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn perfect_estimate_means_no_wasted_restarts_cost() {
        let w = eq_2d();
        let qa = w.ess.point_at_fractions(&[0.5, 0.5]);
        let run = run_reoptimizer(&w, &qa, &qa);
        // With qe == qa the prefixes still execute (selectivities must be
        // verified) but the final plan is optimal, so the overhead is just
        // the discovery prefixes of the already-correct plan.
        let opt = w.optimal_cost(&qa);
        assert!(run.suboptimality(opt) < 3.0, "{}", run.suboptimality(opt));
    }

    #[test]
    fn reoptimizer_usually_beats_nat_but_has_no_guarantee() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let profile = reopt_worst_profile(&w, &b.diagram.opt_cost);
        let reopt_mso = profile.iter().cloned().fold(0.0f64, f64::max);
        // NAT worst case for comparison.
        let nat_worst: f64 = (0..w.ess.num_points())
            .map(|li| {
                b.costs
                    .rows()
                    .map(|row| row[li] / b.diagram.opt_cost[li])
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        assert!(
            reopt_mso < nat_worst,
            "reoptimization should improve on static NAT: {reopt_mso} vs {nat_worst}"
        );
        // ... but it exceeds the bouquet's *guarantee*: there are locations
        // where a bad estimate seduces it into an expensive prefix.
        assert!(
            reopt_mso > b.mso_bound(),
            "reopt MSO {reopt_mso} unexpectedly within the bouquet bound {}",
            b.mso_bound()
        );
    }

    #[test]
    fn parqo_radius_zero_degenerates_to_nat() {
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let cfg = ParqoConfig {
            radius: 0,
            decay: 0.5,
        };
        let asg = parqo_assignment(&w.ess, &b.diagram, &b.costs, &cfg);
        let nat: Vec<usize> = b.diagram.optimal.iter().map(|&p| p as usize).collect();
        assert_eq!(asg, nat);
    }

    #[test]
    fn parqo_hedges_without_beating_the_bouquet_guarantee() {
        use crate::metrics::single_plan_metrics;
        let w = eq_2d();
        let b = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let asg = parqo_assignment(&w.ess, &b.diagram, &b.costs, &ParqoConfig::default());
        assert_eq!(asg.len(), w.ess.num_points());
        let mut used = asg.clone();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() <= b.diagram.plan_count());
        let m = single_plan_metrics(&b.costs, &b.diagram.opt_cost, &asg);
        let nat: Vec<usize> = b.diagram.optimal.iter().map(|&p| p as usize).collect();
        let nat_m = single_plan_metrics(&b.costs, &b.diagram.opt_cost, &nat);
        // Hedging never hurts the *average* much on this fixture...
        assert!(m.aso <= nat_m.aso * 1.5, "{} vs {}", m.aso, nat_m.aso);
        // ...but the worst case stays unbounded relative to the bouquet's
        // ladder (the module's whole thesis).
        assert!(m.mso >= b.mso_bound() || nat_m.mso <= b.mso_bound());
    }

    #[test]
    fn restarts_bounded_by_dimensionality() {
        let w = eq_2d();
        for f in [[0.1, 0.9], [0.9, 0.1], [0.5, 0.5]] {
            let qe = w.ess.point_at_fractions(&[1.0 - f[0], 1.0 - f[1]]);
            let qa = w.ess.point_at_fractions(&f);
            let run = run_reoptimizer(&w, &qe, &qa);
            assert!(run.restarts <= w.d() + 1);
            assert!(run.total_cost.is_finite() && run.total_cost > 0.0);
        }
    }
}
