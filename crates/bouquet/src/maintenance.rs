//! Incremental bouquet maintenance under database scale-up.
//!
//! The paper's critique (Section 8) notes that a bouquet is robust to data
//! *redistribution* (that only moves qa within the ESS) but not to database
//! *growth*: once the tables scale, plan costs — and hence the PIC, the
//! grading and the contours — are stale, and recomputing the bouquet from
//! scratch wastes most of the earlier work. The paper leaves incremental
//! maintenance as future work; this module implements it.
//!
//! Strategy: the expensive compile-time ingredient is the optimizer call per
//! grid point. On rescale we
//!
//! 1. **recost** every already-known plan at every grid point against the
//!    new catalog (abstract plan costing — no optimization),
//! 2. take the pointwise cheapest known plan as a *pseudo-optimal* surface,
//! 3. **re-optimize only the contour frontier points** of that surface,
//!    admitting any genuinely better plans the optimizer finds there, and
//!    repeating until the frontier is stable, then
//! 4. rebuild grading + contours from the refreshed surface.
//!
//! The result is exact on every frontier point (they were re-optimized) and
//! optimistic elsewhere; since the bouquet's budgets and coverage argument
//! only depend on frontier costs, the MSO machinery is preserved while the
//! optimizer effort drops to the contour bands.

use std::collections::HashSet;

use pb_catalog::Catalog;
use pb_cost::{CostMatrix, CostProgram};
use pb_optimizer::PlanDiagram;
use pb_plan::PlanNode;
use serde::{Deserialize, Serialize};

use crate::bouquet::{Bouquet, CompileStats};
use crate::contour::{rho, Contour};
use crate::grading::IsoCostGrading;
use crate::workload::Workload;

/// Effort accounting for a maintenance pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceReport {
    /// Plans inherited from the old bouquet's POSP.
    pub reused_plans: usize,
    /// Plans newly discovered on the refreshed frontiers.
    pub new_plans: usize,
    /// Optimizer invocations spent (a full rebuild costs `grid_points`).
    pub optimizer_calls: usize,
    pub grid_points: usize,
    /// Verification rounds until the frontiers stabilised.
    pub rounds: usize,
}

impl MaintenanceReport {
    /// Fraction of a full rebuild's optimizer effort that was spent.
    pub fn effort_fraction(&self) -> f64 {
        self.optimizer_calls as f64 / self.grid_points as f64
    }
}

/// Re-target `old` at `new_catalog`, reusing its compiled plans.
///
/// The ESS is kept as-is; if the scale-up changes the legal selectivity
/// ranges (e.g. `1/|PK|` for key joins), construct the new `Ess` first and
/// set it via `workload_override`.
pub fn rescale(
    old: &Bouquet,
    new_catalog: Catalog,
    workload_override: Option<Workload>,
) -> Result<(Bouquet, MaintenanceReport), String> {
    let w = workload_override.unwrap_or_else(|| Workload {
        catalog: new_catalog,
        ..old.workload.clone()
    });
    w.query.validate(&w.catalog);
    let ess = &w.ess;
    let n = ess.num_points();
    let cfg = old.config.clone();

    // 1. Recost every known plan everywhere via its compiled cost program
    //    (bit-identical to the tree walk, but with the catalog constants
    //    resolved once and a single reusable evaluation stack).
    let points = ess.points_flat();
    let d = ess.d();
    let mut stack = Vec::new();
    let mut recost_row = |root: &PlanNode| -> Vec<f64> {
        let prog = CostProgram::compile(&w.catalog, &w.query, &w.model, root);
        (0..n)
            .map(|li| {
                prog.eval_with(&points[li * d..(li + 1) * d], &mut stack)
                    .cost
            })
            .collect()
    };
    let mut plans = old.diagram.plans.clone();
    let mut costs = CostMatrix::new(n);
    for p in &plans {
        let row = recost_row(&p.root);
        costs.push_row(&row);
    }

    let reused = plans.len();
    let mut optimizer_calls = 0usize;
    let mut rounds = 0usize;
    let opt = w.optimizer();

    // 2 & 3. Iterate: pseudo-optimal surface -> frontier points ->
    //         re-optimize them -> admit better plans.
    let mut verified: HashSet<usize> = HashSet::new();
    loop {
        rounds += 1;
        let (optimal, opt_cost) = pseudo_surface(&costs);
        let pseudo = PlanDiagram {
            ess: ess.clone(),
            plans: plans.clone(),
            optimal,
            opt_cost,
        };
        let (cmin, cmax) = pseudo.cost_bounds();
        let grading = IsoCostGrading::geometric(cmin, cmax, cfg.r);
        let mut frontier_points: Vec<usize> = grading
            .steps
            .iter()
            .flat_map(|&b| Contour::frontier(&pseudo, b))
            .collect();
        frontier_points.sort_unstable();
        frontier_points.dedup();
        frontier_points.retain(|li| !verified.contains(li));
        if frontier_points.is_empty() || rounds > 8 {
            break;
        }
        let mut found_better = false;
        for li in frontier_points {
            verified.insert(li);
            optimizer_calls += 1;
            let q = ess.point(&ess.unlinear(li));
            let best = opt.optimize(&q);
            let known = pseudo.opt_cost[li];
            if best.cost < known * (1.0 - 1e-6)
                && !plans
                    .iter()
                    .any(|p| p.fingerprint() == best.plan.fingerprint())
            {
                // Admit the new plan: recost it over the whole grid.
                let row = recost_row(&best.plan.root);
                costs.push_row(&row);
                plans.push(best.plan);
                found_better = true;
            }
        }
        if !found_better {
            break;
        }
    }

    // 4. Final surface, grading and contours.
    let (optimal, opt_cost) = pseudo_surface(&costs);
    let diagram = PlanDiagram {
        ess: ess.clone(),
        plans: plans.clone(),
        optimal,
        opt_cost,
    };
    let (cmin, cmax) = diagram.cost_bounds();
    let grading = IsoCostGrading::geometric(cmin, cmax, cfg.r);
    let rho_posp = grading
        .steps
        .iter()
        .map(|&b| {
            let f = Contour::frontier(&diagram, b);
            let mut ps: Vec<u32> = f.iter().map(|&li| diagram.optimal[li]).collect();
            ps.sort_unstable();
            ps.dedup();
            ps.len()
        })
        .max()
        .unwrap_or(0);
    let contours = Contour::build_all(&diagram, &grading, &costs, cfg.lambda);
    let bouquet_cardinality = {
        let mut all: Vec<usize> = contours.iter().flat_map(|c| c.plan_set.clone()).collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    };
    let stats = CompileStats {
        exhaustive_optimizer_calls: optimizer_calls,
        posp_cardinality: diagram.plan_count(),
        bouquet_cardinality,
        rho_posp,
        rho: rho(&contours),
        num_contours: contours.len(),
        cmin,
        cmax,
    };
    let report = MaintenanceReport {
        reused_plans: reused,
        new_plans: plans.len() - reused,
        optimizer_calls,
        grid_points: n,
        rounds,
    };
    Ok((
        Bouquet {
            workload: w,
            diagram,
            costs,
            grading,
            contours,
            config: cfg,
            stats,
            programs: std::sync::OnceLock::new(),
        },
        report,
    ))
}

/// Pointwise cheapest plan over a cost matrix.
fn pseudo_surface(costs: &CostMatrix) -> (Vec<u32>, Vec<f64>) {
    let n = costs.num_points();
    let mut optimal = vec![0u32; n];
    let mut opt_cost = vec![f64::INFINITY; n];
    for (p, row) in costs.rows().enumerate() {
        for (li, &c) in row.iter().enumerate() {
            if c < opt_cost[li] {
                opt_cost[li] = c;
                optimal[li] = p as u32;
            }
        }
    }
    (optimal, opt_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::BouquetConfig;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn workload_at(scale: f64) -> Workload {
        let cat = tpch::catalog(scale);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(
            l,
            "l_orderkey",
            o,
            "o_orderkey",
            SelSpec::Fixed(6.7e-7 / scale),
        );
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 5e-10 / scale, 5e-6 / scale),
            ],
            20,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    #[test]
    fn rescale_costs_far_fewer_optimizer_calls_than_rebuild() {
        let old = Bouquet::identify(&workload_at(1.0), &BouquetConfig::default()).unwrap();
        let new_w = workload_at(4.0);
        let (_, report) = rescale(&old, new_w.catalog.clone(), Some(new_w.clone())).unwrap();
        assert!(
            report.effort_fraction() < 0.5,
            "maintenance should cost well under half a rebuild: {:.2}",
            report.effort_fraction()
        );
        assert!(report.reused_plans > 0);
    }

    #[test]
    fn rescaled_bouquet_matches_rebuild_on_frontiers_and_guarantees() {
        let old = Bouquet::identify(&workload_at(1.0), &BouquetConfig::default()).unwrap();
        let new_w = workload_at(4.0);
        let (maintained, _) = rescale(&old, new_w.catalog.clone(), Some(new_w.clone())).unwrap();
        let rebuilt = Bouquet::identify(&new_w, &BouquetConfig::default()).unwrap();
        // The PIC extremes are exact (corners are frontier points).
        assert!((maintained.stats.cmin - rebuilt.stats.cmin).abs() < 1e-6 * rebuilt.stats.cmin);
        assert!((maintained.stats.cmax - rebuilt.stats.cmax).abs() < 1e-6 * rebuilt.stats.cmax);
        assert_eq!(maintained.grading.len(), rebuilt.grading.len());
        // Discovery still completes within the maintained bouquet's bound,
        // measured against the *rebuilt* (exact) optimal costs.
        for li in (0..new_w.ess.num_points()).step_by(7) {
            let qa = new_w.ess.point(&new_w.ess.unlinear(li));
            let run = maintained.run_basic(&qa).unwrap();
            assert!(run.completed(), "maintained bouquet failed at {li}");
            let so = run.suboptimality(rebuilt.pic_cost_at(li));
            assert!(
                so <= maintained.mso_bound() * 1.05,
                "maintained SubOpt {so} at {li} vs bound {}",
                maintained.mso_bound()
            );
        }
    }

    #[test]
    fn rescale_to_same_catalog_is_a_fixpoint() {
        let w = workload_at(1.0);
        let old = Bouquet::identify(&w, &BouquetConfig::default()).unwrap();
        let (same, report) = rescale(&old, w.catalog.clone(), None).unwrap();
        assert_eq!(report.new_plans, 0, "no new plans on an unchanged catalog");
        assert_eq!(same.grading, old.grading);
        assert_eq!(
            same.stats.bouquet_cardinality,
            old.stats.bouquet_cardinality
        );
    }
}
