//! Content-addressed on-disk bouquet store — identification amortized.
//!
//! Identification is the expensive half of the bouquet technique: an
//! exhaustive optimizer sweep over the ESS grid plus recosting and contour
//! reduction. For the form-based "canned query" deployments the paper
//! targets (Section 4.2), the same query template is identified again and
//! again — across sessions, processes, and machines. This module keys
//! compiled bouquets by *content*, so identification runs at most once per
//! distinct (query, statistics, resolution, cost model) combination:
//!
//! * **Skeleton key** — a stable fingerprint of the query spec, the ESS
//!   (dimensions and resolution), and the bouquet config (λ, r,
//!   perturbation). Two workloads share a skeleton iff their bouquets have
//!   the same shape-determining inputs.
//! * **Statistics key** — a fingerprint of the catalog and cost-model
//!   parameters. Statistics drift changes this key but not the skeleton.
//!
//! A lookup hits when both keys match: the stored arrays are grafted under
//! the caller's workload and the result is bit-identical to a fresh
//! identification (property-tested). When only the statistics key differs, a
//! stale sibling entry (same skeleton) seeds **incremental
//! re-identification** ([`Bouquet::identify_incremental`]): the stale
//! winners become DP incumbents and bit-unchanged contours are lifted
//! verbatim, with a transparent full rebuild whenever reuse is unsound. The
//! refreshed bouquet replaces the stale entry.
//!
//! Entries are binary: a small JSON header for the tree-shaped pieces
//! (plans, grading, contours, config, stats) and raw little-endian arrays
//! for the grid-sized ones (optimal plan ids, PIC, cost matrix), framed by a
//! magic/version header and an FNV-1a checksum. JSON parsing of a
//! megabyte-scale cost matrix would cost a large fraction of a small
//! identification; memcpying it keeps warm hits two orders of magnitude
//! cheaper than cold builds. Writes go through a temp file + rename, so a
//! crashed writer leaves no half-entry under a live key; any mismatch —
//! magic, version, key, checksum, shape — evicts the entry and rebuilds
//! rather than trusting it.

use std::path::{Path, PathBuf};
use std::time::Instant;

use pb_cost::{CostMatrix, Parallelism};
use pb_faults::PbError;
use pb_optimizer::PlanDiagram;
use pb_plan::PhysicalPlan;

use crate::bouquet::{Bouquet, BouquetConfig, CompileStats, IncrementalIdentifyStats};
use crate::contour::Contour;
use crate::grading::IsoCostGrading;
use crate::workload::Workload;

const MAGIC: [u8; 4] = *b"PBQC";
/// Bump on any layout change: mismatched versions are evicted, not parsed.
/// v2: typed ESS dimensions — `EssDim` gained a `kind` and `JoinPredicate`
/// gained `semi`/`op` fields, which change the canonical-JSON skeleton key,
/// so v1 entries must be evicted rather than misread.
const FORMAT_VERSION: u32 = 2;

/// FNV-1a, 64-bit: stable across platforms and toolchains (unlike
/// `DefaultHasher`), cheap, and good enough for content addressing where
/// the payload is also checksummed.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Entry checksum: FNV-1a folding eight bytes per step instead of one.
/// Byte-serial FNV costs ~180µs on a 120 KB entry — most of the warm-load
/// budget — while this word-wise variant detects the same corruption
/// classes (bit flips, truncation, splices) at ~1/8th the cost. Stable
/// across platforms: the tail is zero-padded, and the length is folded in
/// so zero-padding is not confusable with trailing zero bytes.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let mut b = [0u8; 8];
        b.copy_from_slice(w);
        h ^= u64::from_le_bytes(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rem = words.remainder();
    let mut b = [0u8; 8];
    b[..rem.len()].copy_from_slice(rem);
    h ^= u64::from_le_bytes(b);
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    h ^= bytes.len() as u64;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// The two-part content address of a cached bouquet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of (query spec, ESS, bouquet config) — everything that
    /// shapes the bouquet *except* the statistics.
    pub skeleton: u64,
    /// Fingerprint of (catalog, cost-model parameters) — the statistics
    /// version. Drift changes this part only.
    pub stats: u64,
}

impl CacheKey {
    /// Derive the key for a workload + config. Serialization is the same
    /// canonical JSON the persistence layer uses, so the key is stable
    /// across processes and machines.
    pub fn derive(w: &Workload, cfg: &BouquetConfig) -> Result<CacheKey, PbError> {
        let enc = |label: &'static str, json: serde_json::Result<String>| {
            json.map_err(|e| PbError::Internal(format!("cache key: serialize {label}: {e}")))
        };
        let query = enc("query", serde_json::to_string(&w.query))?;
        let ess = enc("ess", serde_json::to_string(&w.ess))?;
        let config = enc("config", serde_json::to_string(cfg))?;
        let catalog = enc("catalog", serde_json::to_string(&w.catalog))?;
        let model = enc("model", serde_json::to_string(&w.model))?;
        // The 0xFF separator cannot occur in JSON text, so field boundaries
        // are unambiguous.
        Ok(CacheKey {
            skeleton: fnv1a(&[
                query.as_bytes(),
                &[0xFF],
                ess.as_bytes(),
                &[0xFF],
                config.as_bytes(),
            ]),
            stats: fnv1a(&[catalog.as_bytes(), &[0xFF], model.as_bytes()]),
        })
    }

    /// Entry file name: `pb-{skeleton}-{stats}.pbq`. The skeleton comes
    /// first so stale siblings (same skeleton, drifted statistics) are
    /// discoverable by prefix scan.
    pub fn file_name(&self) -> String {
        format!("pb-{:016x}-{:016x}.pbq", self.skeleton, self.stats)
    }

    fn prefix(&self) -> String {
        format!("pb-{:016x}-", self.skeleton)
    }
}

/// How a [`BouquetCache::get_or_identify`] call was served.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheOutcome {
    /// Entry found and valid: identification skipped entirely.
    Hit {
        /// Wall-clock seconds the original (stored) identification took —
        /// what the hit saved.
        cold_build_s: f64,
        /// Wall-clock seconds loading + validating the entry took.
        load_s: f64,
    },
    /// No usable entry: identified from scratch and stored.
    Miss {
        /// Wall-clock seconds the identification took.
        build_s: f64,
    },
    /// Statistics drift: a same-skeleton stale entry seeded an incremental
    /// re-identification; the refreshed entry replaced the stale one.
    Refreshed {
        /// Wall-clock seconds the incremental re-identification took.
        build_s: f64,
        /// What the incremental path reused versus redid.
        incremental: IncrementalIdentifyStats,
    },
}

/// The tree-shaped (small) part of an entry, stored as JSON inside the
/// binary frame. Grid-sized arrays live outside as raw little-endian bytes.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct MetaDoc {
    plans: Vec<PhysicalPlan>,
    grading: IsoCostGrading,
    contours: Vec<Contour>,
    config: BouquetConfig,
    stats: CompileStats,
}

/// A directory of content-addressed bouquet entries.
#[derive(Debug, Clone)]
pub struct BouquetCache {
    dir: PathBuf,
}

impl BouquetCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl AsRef<Path>) -> Result<BouquetCache, PbError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| PbError::Io {
            path: dir.display().to_string(),
            message: format!("create cache dir: {e}"),
        })?;
        Ok(BouquetCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Full path of the entry for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Serve a bouquet for `(w, cfg)`: from cache when the entry is valid,
    /// by incremental re-identification when only the statistics drifted,
    /// from scratch otherwise. Every path stores its result, so the next
    /// call with the same inputs is a hit. Invalid entries (corruption,
    /// truncation, version or key mismatch) are evicted, never trusted.
    pub fn get_or_identify(
        &self,
        w: &Workload,
        cfg: &BouquetConfig,
        par: Parallelism,
    ) -> Result<(Bouquet, CacheOutcome), PbError> {
        let key = CacheKey::derive(w, cfg)?;
        let path = self.entry_path(&key);
        if path.exists() {
            let t0 = Instant::now();
            match read_entry(&path, &key, true, w) {
                Ok((bouquet, cold_build_s)) => {
                    return Ok((
                        bouquet,
                        CacheOutcome::Hit {
                            cold_build_s,
                            load_s: t0.elapsed().as_secs_f64(),
                        },
                    ));
                }
                Err(_) => {
                    // Untrustworthy entry under a live key: evict. A failed
                    // remove is not fatal — the rebuild below overwrites it.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }

        // Statistics drift: any sibling with our skeleton but a different
        // statistics key is a stale edition of this bouquet.
        if let Some(stale_path) = self.find_stale(&key)? {
            if let Ok((stale, _)) = read_entry(&stale_path, &key, false, w) {
                let t0 = Instant::now();
                let (bouquet, _, incremental) = Bouquet::identify_incremental(w, &stale, par)?;
                let build_s = t0.elapsed().as_secs_f64();
                self.store(&key, &bouquet, build_s)?;
                let _ = std::fs::remove_file(&stale_path);
                return Ok((
                    bouquet,
                    CacheOutcome::Refreshed {
                        build_s,
                        incremental,
                    },
                ));
            }
            // Stale and unreadable: evict and fall through to a cold build.
            let _ = std::fs::remove_file(&stale_path);
        }

        let t0 = Instant::now();
        let (bouquet, _) = Bouquet::identify_timed(w, cfg, par)?;
        let build_s = t0.elapsed().as_secs_f64();
        self.store(&key, &bouquet, build_s)?;
        Ok((bouquet, CacheOutcome::Miss { build_s }))
    }

    /// The lexicographically greatest same-skeleton entry with a different
    /// statistics key, if any (greatest-name choice makes the scan
    /// deterministic when multiple stale editions linger).
    fn find_stale(&self, key: &CacheKey) -> Result<Option<PathBuf>, PbError> {
        let prefix = key.prefix();
        let own = key.file_name();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| PbError::Io {
            path: self.dir.display().to_string(),
            message: format!("scan cache dir: {e}"),
        })?;
        let mut best: Option<String> = None;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(&prefix) && name.ends_with(".pbq") && name != own {
                match &best {
                    Some(b) if *b >= name => {}
                    _ => best = Some(name),
                }
            }
        }
        Ok(best.map(|name| self.dir.join(name)))
    }

    /// Write `bouquet` as the entry for `key` (atomic: temp file + rename).
    fn store(&self, key: &CacheKey, bouquet: &Bouquet, cold_build_s: f64) -> Result<(), PbError> {
        let path = self.entry_path(key);
        let bytes = encode_entry(key, bouquet, cold_build_s)?;
        let tmp = self
            .dir
            .join(format!(".tmp-{:016x}-{}", key.skeleton, std::process::id()));
        let io_err = |p: &Path| {
            let path = p.display().to_string();
            move |e: std::io::Error| PbError::Io {
                path: path.clone(),
                message: e.to_string(),
            }
        };
        std::fs::write(&tmp, &bytes).map_err(io_err(&tmp))?;
        std::fs::rename(&tmp, &path).map_err(io_err(&path))?;
        Ok(())
    }
}

/// Binary layout (all integers/floats little-endian):
///
/// ```text
/// magic "PBQC" | version u32 | skeleton u64 | stats u64 | cold_build_s f64
/// | n_points u64 | n_plans u64 | meta_len u64 | meta JSON (MetaDoc)
/// | optimal  n_points × u32
/// | opt_cost n_points × f64
/// | costs    n_plans × n_points × f64
/// | checksum u64  (FNV-1a over everything before it)
/// ```
fn encode_entry(key: &CacheKey, bouquet: &Bouquet, cold_build_s: f64) -> Result<Vec<u8>, PbError> {
    let meta = MetaDoc {
        plans: bouquet.diagram.plans.clone(),
        grading: bouquet.grading.clone(),
        contours: bouquet.contours.clone(),
        config: bouquet.config.clone(),
        stats: bouquet.stats.clone(),
    };
    let meta_json = serde_json::to_string(&meta)
        .map_err(|e| PbError::Internal(format!("cache entry: serialize meta: {e}")))?;
    let n = bouquet.diagram.optimal.len();
    let n_plans = bouquet.diagram.plans.len();
    let mut out = Vec::with_capacity(
        64 + meta_json.len() + n * 4 + n * 8 + bouquet.costs.as_flat().len() * 8,
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.skeleton.to_le_bytes());
    out.extend_from_slice(&key.stats.to_le_bytes());
    out.extend_from_slice(&cold_build_s.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(n_plans as u64).to_le_bytes());
    out.extend_from_slice(&(meta_json.len() as u64).to_le_bytes());
    out.extend_from_slice(meta_json.as_bytes());
    for &id in &bouquet.diagram.optimal {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for &c in &bouquet.diagram.opt_cost {
        out.extend_from_slice(&c.to_le_bytes());
    }
    for &c in bouquet.costs.as_flat() {
        out.extend_from_slice(&c.to_le_bytes());
    }
    let checksum = checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// A bounds-checked little-endian reader over an entry's bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn corrupt(&self, message: impl Into<String>) -> PbError {
        PbError::Corrupt {
            path: self.path.display().to_string(),
            message: message.into(),
        }
    }

    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], PbError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(self.corrupt(format!("truncated reading {what}"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, PbError> {
        let s = self.take(4, what)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PbError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self, what: &str) -> Result<f64, PbError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Bulk-decode `n` little-endian u32s with a single bounds check — the
    /// grid arrays dominate entry size, so per-element `take` calls would
    /// dominate warm-load time.
    fn u32_array(&mut self, n: usize, what: &str) -> Result<Vec<u32>, PbError> {
        let s = self.take(n * 4, what)?;
        Ok(s.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Bulk-decode `n` little-endian f64 bit patterns (see [`Self::u32_array`]).
    fn f64_array(&mut self, n: usize, what: &str) -> Result<Vec<f64>, PbError> {
        let s = self.take(n * 8, what)?;
        Ok(s.chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(b))
            })
            .collect())
    }
}

/// Decode and validate one entry, grafting the caller's workload under the
/// stored arrays. `require_stats_match` distinguishes a direct hit (both
/// key halves must match) from a stale read for incremental reuse (only the
/// skeleton must match). Returns the bouquet and its stored cold-build
/// wall time.
fn read_entry(
    path: &Path,
    key: &CacheKey,
    require_stats_match: bool,
    w: &Workload,
) -> Result<(Bouquet, f64), PbError> {
    let bytes = std::fs::read(path).map_err(|e| PbError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    if bytes.len() < 8 {
        return Err(PbError::Corrupt {
            path: path.display().to_string(),
            message: "entry shorter than its checksum".into(),
        });
    }
    // Checksum first: everything else assumes intact bytes.
    let payload = &bytes[..bytes.len() - 8];
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&bytes[bytes.len() - 8..]);
    let mut r = Reader {
        bytes: payload,
        pos: 0,
        path,
    };
    if u64::from_le_bytes(tail) != checksum64(payload) {
        return Err(r.corrupt("checksum mismatch"));
    }

    if r.take(4, "magic")? != MAGIC.as_slice() {
        return Err(r.corrupt("bad magic"));
    }
    let version = r.u32("version")?;
    if version != FORMAT_VERSION {
        return Err(r.corrupt(format!(
            "format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let skeleton = r.u64("skeleton key")?;
    let stats_key = r.u64("statistics key")?;
    if skeleton != key.skeleton {
        return Err(r.corrupt("skeleton key mismatch"));
    }
    if require_stats_match && stats_key != key.stats {
        return Err(r.corrupt("statistics key mismatch"));
    }
    let cold_build_s = r.f64("cold build time")?;
    let n = r.u64("point count")? as usize;
    let n_plans = r.u64("plan count")? as usize;
    if n != w.ess.num_points() {
        return Err(r.corrupt(format!(
            "entry has {n} grid points, workload has {}",
            w.ess.num_points()
        )));
    }
    let meta_len = r.u64("meta length")? as usize;
    let meta_bytes = r.take(meta_len, "meta document")?;
    let meta_str =
        std::str::from_utf8(meta_bytes).map_err(|e| r.corrupt(format!("meta not UTF-8: {e}")))?;
    let meta: MetaDoc =
        serde_json::from_str(meta_str).map_err(|e| r.corrupt(format!("parse meta: {e}")))?;
    if meta.plans.len() != n_plans {
        return Err(r.corrupt("plan count disagrees with meta"));
    }

    let optimal = r.u32_array(n, "optimal plan ids")?;
    let opt_cost = r.f64_array(n, "PIC values")?;
    let flat = r.f64_array(n_plans * n, "cost matrix")?;
    if r.pos != payload.len() {
        return Err(r.corrupt("trailing bytes after cost matrix"));
    }

    let bouquet = Bouquet {
        workload: w.clone(),
        diagram: PlanDiagram {
            ess: w.ess.clone(),
            plans: meta.plans,
            optimal,
            opt_cost,
        },
        costs: CostMatrix::from_flat(n, flat),
        grading: meta.grading,
        contours: meta.contours,
        config: meta.config,
        stats: meta.stats,
        programs: std::sync::OnceLock::new(),
    };
    crate::persist::validate_structure(&bouquet)
        .map_err(|message| r.corrupt(format!("structural validation: {message}")))?;
    Ok((bouquet, cold_build_s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn workload(scale: f64) -> Workload {
        let cat = tpch::catalog(scale);
        let mut qb = QueryBuilder::new(&cat, "EQ");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::Fixed(5e-6));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(vec![EssDim::new("p_retailprice", 1e-4, 1.0)], 32);
        Workload::new("EQ_1D", cat.clone(), q, ess, CostModel::postgresish())
    }

    /// Fresh scratch dir per test (removed on drop).
    struct TmpDir(PathBuf);
    impl TmpDir {
        fn new(tag: &str) -> TmpDir {
            let d =
                std::env::temp_dir().join(format!("pb_cache_test_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            TmpDir(d)
        }
    }
    impl Drop for TmpDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn entry_file(dir: &Path) -> PathBuf {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "pbq"))
            .collect();
        entries.sort();
        assert_eq!(entries.len(), 1, "expected exactly one entry: {entries:?}");
        entries.remove(0)
    }

    #[test]
    fn miss_then_hit_is_bitwise_identical() {
        let tmp = TmpDir::new("hit");
        let cache = BouquetCache::new(&tmp.0).unwrap();
        let w = workload(1.0);
        let cfg = BouquetConfig::default();
        let (cold, o1) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(o1, CacheOutcome::Miss { .. }));
        let (warm, o2) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(o2, CacheOutcome::Hit { .. }));
        assert_eq!(
            persist::to_json(&cold).unwrap(),
            persist::to_json(&warm).unwrap(),
            "cache hit must be bitwise identical to the build that stored it"
        );
    }

    #[test]
    fn different_config_is_a_different_key() {
        let tmp = TmpDir::new("keys");
        let cache = BouquetCache::new(&tmp.0).unwrap();
        let w = workload(1.0);
        let k1 = CacheKey::derive(&w, &BouquetConfig::default()).unwrap();
        let k2 = CacheKey::derive(
            &w,
            &BouquetConfig {
                lambda: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(k1.skeleton, k2.skeleton);
        assert_eq!(k1.stats, k2.stats);
        // Drifted statistics flip only the statistics half.
        let k3 = CacheKey::derive(&workload(1.01), &BouquetConfig::default()).unwrap();
        assert_eq!(k1.skeleton, k3.skeleton);
        assert_ne!(k1.stats, k3.stats);
        drop(cache);
    }

    #[test]
    fn corrupted_entry_is_evicted_and_rebuilt() {
        let tmp = TmpDir::new("corrupt");
        let cache = BouquetCache::new(&tmp.0).unwrap();
        let w = workload(1.0);
        let cfg = BouquetConfig::default();
        let (fresh, _) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        // Flip one byte in the middle of the payload.
        let path = entry_file(&tmp.0);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        let (rebuilt, outcome) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(
            matches!(outcome, CacheOutcome::Miss { .. }),
            "corrupt entry must not be trusted: {outcome:?}"
        );
        assert_eq!(
            persist::to_json(&fresh).unwrap(),
            persist::to_json(&rebuilt).unwrap()
        );
        // The rebuild restored a loadable entry.
        let (_, again) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(again, CacheOutcome::Hit { .. }));
    }

    #[test]
    fn truncated_entry_is_evicted_and_rebuilt() {
        let tmp = TmpDir::new("trunc");
        let cache = BouquetCache::new(&tmp.0).unwrap();
        let w = workload(1.0);
        let cfg = BouquetConfig::default();
        cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        let path = entry_file(&tmp.0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (_, outcome) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(outcome, CacheOutcome::Miss { .. }));
        let (_, again) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(again, CacheOutcome::Hit { .. }));
    }

    #[test]
    fn version_mismatch_is_evicted_not_parsed() {
        let tmp = TmpDir::new("version");
        let cache = BouquetCache::new(&tmp.0).unwrap();
        let w = workload(1.0);
        let cfg = BouquetConfig::default();
        cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        // Bump the version field and re-seal the checksum, simulating an
        // entry written by a future format.
        let path = entry_file(&tmp.0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let n = bytes.len();
        let seal = checksum64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&seal.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (_, outcome) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(outcome, CacheOutcome::Miss { .. }));
        let (_, again) = cache
            .get_or_identify(&w, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(again, CacheOutcome::Hit { .. }));
    }

    #[test]
    fn stats_drift_refreshes_incrementally_and_evicts_the_stale_entry() {
        let tmp = TmpDir::new("drift");
        let cache = BouquetCache::new(&tmp.0).unwrap();
        let cfg = BouquetConfig::default();
        let (_, o1) = cache
            .get_or_identify(&workload(1.0), &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(o1, CacheOutcome::Miss { .. }));
        let drifted = workload(1.05);
        let (refreshed, o2) = cache
            .get_or_identify(&drifted, &cfg, Parallelism::serial())
            .unwrap();
        match o2 {
            CacheOutcome::Refreshed { incremental, .. } => {
                assert!(!incremental.diagram.full_rebuild);
            }
            other => panic!("expected Refreshed, got {other:?}"),
        }
        // Bitwise identical to a from-scratch identification on the
        // drifted statistics.
        let fresh = Bouquet::identify(&drifted, &cfg).unwrap();
        assert_eq!(
            persist::to_json(&refreshed).unwrap(),
            persist::to_json(&fresh).unwrap()
        );
        // The stale entry is gone; only the refreshed one remains, and it
        // serves hits.
        entry_file(&tmp.0);
        let (_, o3) = cache
            .get_or_identify(&drifted, &cfg, Parallelism::serial())
            .unwrap();
        assert!(matches!(o3, CacheOutcome::Hit { .. }));
    }
}
