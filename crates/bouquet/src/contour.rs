//! Discrete isocost contours over the ESS grid.
//!
//! On the continuous PIC surface, an isocost step cuts a (D−1)-dimensional
//! contour (Figure 6a). On the discretized grid we take the *dominance
//! frontier* of the region `{q : opt_cost(q) ≤ IC_k}`: the maximal points of
//! that downward-closed region under the componentwise order. Every interior
//! location is dominated by a frontier point, so — by PCM — the plan
//! assigned to that frontier point is guaranteed to execute it within the
//! contour budget. This staircase construction is the standard discrete
//! realisation in the bouquet literature.

use pb_cost::{par_map, run_chunked, CostMatrix, GridIx, Parallelism};
use pb_optimizer::{AnorexicReduction, PlanDiagram, PlanId};

use crate::grading::IsoCostGrading;

/// One isocost contour: budget, frontier points, and the (anorexically
/// reduced) plans covering them.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Contour {
    /// 1-based contour number `k`.
    pub id: usize,
    /// The isocost step's cost value `cost(IC_k)` (not λ-inflated).
    pub step_cost: f64,
    /// Execution budget: `cost(IC_k) · (1+λ)` (Section 4.3 inflates budgets
    /// to account for anorexic replacements).
    pub budget: f64,
    /// Linear grid indices of the frontier points.
    pub points: Vec<usize>,
    /// For each frontier point (parallel to `points`): the bouquet plan
    /// responsible for it.
    pub assignment: Vec<PlanId>,
    /// Distinct plans on this contour, ascending.
    pub plan_set: Vec<PlanId>,
}

impl Contour {
    /// Whether grid point `li` lies on the dominance frontier of
    /// `{q : opt_cost(q) ≤ budget}`: within budget, and every axis
    /// successor (where one exists) is over budget. `ix` is a reusable
    /// scratch buffer (left holding `li`'s coordinates on return) so the
    /// hot frontier scan never allocates per point.
    fn on_frontier(diagram: &PlanDiagram, budget: f64, li: usize, ix: &mut GridIx) -> bool {
        let ess = &diagram.ess;
        if diagram.opt_cost[li] > budget {
            return false;
        }
        ess.unlinear_into(li, ix);
        for dim in 0..ess.d() {
            if ix[dim] + 1 < ess.res[dim] {
                ix[dim] += 1;
                let up_cost = diagram.opt_cost[ess.linear(ix)];
                ix[dim] -= 1;
                if up_cost <= budget {
                    return false; // dominated within the region
                }
            }
        }
        true
    }

    /// Compute the dominance frontier of `{q : opt_cost(q) ≤ budget}`.
    pub fn frontier(diagram: &PlanDiagram, budget: f64) -> Vec<usize> {
        Self::frontier_with(diagram, budget, Parallelism::serial())
    }

    /// Frontier with an explicit worker policy. The per-point dominance
    /// check is independent, so the scan chunks over the grid with one
    /// scratch coordinate buffer per chunk; concatenating the per-chunk
    /// hits keeps ascending linear order regardless of worker count.
    pub fn frontier_with(diagram: &PlanDiagram, budget: f64, par: Parallelism) -> Vec<usize> {
        let n = diagram.ess.num_points();
        let chunks = run_chunked(par, n, |_, range| {
            let mut ix = GridIx::new();
            range
                .filter(|&li| Self::on_frontier(diagram, budget, li, &mut ix))
                .collect::<Vec<usize>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// Build all contours for a grading, reducing each contour's plan set
    /// anorexically with threshold `lambda`.
    pub fn build_all(
        diagram: &PlanDiagram,
        grading: &IsoCostGrading,
        costs: &CostMatrix,
        lambda: f64,
    ) -> Vec<Contour> {
        Self::build_all_with(diagram, grading, costs, lambda, Parallelism::serial())
    }

    /// Build all contours with an explicit worker policy: the per-step
    /// frontier scan plus anorexic reduction fans out across steps (each
    /// step is independent; output order follows the grading).
    pub fn build_all_with(
        diagram: &PlanDiagram,
        grading: &IsoCostGrading,
        costs: &CostMatrix,
        lambda: f64,
        par: Parallelism,
    ) -> Vec<Contour> {
        let frontiers = par_map(par, grading.steps.len(), |k| {
            Self::frontier(diagram, grading.steps[k])
        });
        Self::build_from_frontiers(diagram, grading, costs, lambda, frontiers, par)
    }

    /// Assemble contours from precomputed per-step frontiers (lets callers
    /// that already ran the frontier scans — e.g. for ρ_posp — reuse them).
    pub fn build_from_frontiers(
        diagram: &PlanDiagram,
        grading: &IsoCostGrading,
        costs: &CostMatrix,
        lambda: f64,
        frontiers: Vec<Vec<usize>>,
        par: Parallelism,
    ) -> Vec<Contour> {
        assert_eq!(frontiers.len(), grading.steps.len());
        par_map(par, grading.steps.len(), |k| {
            Self::assemble(
                diagram,
                costs,
                lambda,
                k,
                grading.steps[k],
                frontiers[k].clone(),
            )
        })
    }

    /// Assemble one contour (0-based step index `k`) from its frontier: the
    /// anorexic-reduction unit the batch builders — and the incremental
    /// identifier, for steps whose cached contour cannot be reused — share.
    /// Output is a pure function of `(costs columns and diagram PIC at
    /// `points`, lambda, k, step_cost, points)`.
    pub fn assemble(
        diagram: &PlanDiagram,
        costs: &CostMatrix,
        lambda: f64,
        k: usize,
        step_cost: f64,
        points: Vec<usize>,
    ) -> Contour {
        assert!(
            !points.is_empty(),
            "contour {} (budget {step_cost}) has no frontier points",
            k + 1
        );
        let red = AnorexicReduction::reduce_points(diagram, costs, &points, lambda);
        let mut plan_set = red.kept.clone();
        plan_set.sort_unstable();
        Contour {
            id: k + 1,
            step_cost,
            budget: step_cost * (1.0 + lambda),
            points,
            assignment: red.assignment,
            plan_set,
        }
    }

    /// Number of plans on this contour (its density `n_k`).
    pub fn density(&self) -> usize {
        self.plan_set.len()
    }

    /// Whether some frontier point dominates (componentwise ≥) `ix` — i.e.
    /// a query at `ix` is guaranteed discoverable on this contour.
    pub fn dominates(&self, diagram: &PlanDiagram, ix: &[usize]) -> bool {
        let ess = &diagram.ess;
        let mut fix = GridIx::new();
        self.points.iter().any(|&li| {
            ess.unlinear_into(li, &mut fix);
            fix.iter().zip(ix).all(|(f, q)| f >= q)
        })
    }

    /// Frontier points (with their plans) that dominate `ix` — the plans
    /// still viable for discovery from running location `ix` (the
    /// first-quadrant pruning of Section 5.1).
    pub fn viable_plans(&self, diagram: &PlanDiagram, ix: &[usize]) -> Vec<PlanId> {
        let ess = &diagram.ess;
        let mut fix = GridIx::new();
        let mut plans: Vec<PlanId> = self
            .points
            .iter()
            .zip(&self.assignment)
            .filter(|(&li, _)| {
                ess.unlinear_into(li, &mut fix);
                fix.iter().zip(ix).all(|(f, q)| f >= q)
            })
            .map(|(_, &p)| p)
            .collect();
        plans.sort_unstable();
        plans.dedup();
        plans
    }

    /// Per-plan coverage regions within this contour's budget (Figure 6b):
    /// for each plan on the contour, the set of grid points it can finish
    /// within the budget.
    pub fn coverage(&self, costs: &CostMatrix, num_points: usize) -> Vec<(PlanId, Vec<usize>)> {
        self.plan_set
            .iter()
            .map(|&p| {
                let covered = (0..num_points)
                    .filter(|&li| costs[p][li] <= self.budget)
                    .collect();
                (p, covered)
            })
            .collect()
    }
}

/// Maximum contour plan density ρ (Section 3.2) across a contour list.
pub fn rho(contours: &[Contour]) -> usize {
    contours.iter().map(Contour::density).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use pb_catalog::tpch;
    use pb_cost::{CostModel, Ess, EssDim};
    use pb_plan::{CmpOp, QueryBuilder, SelSpec};

    fn eq_2d() -> Workload {
        let cat = tpch::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat, "EQ2D");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1000.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        qb.join(l, "l_orderkey", o, "o_orderkey", SelSpec::Fixed(6.7e-7));
        let q = qb.build();
        let ess = Ess::uniform(
            vec![
                EssDim::new("p_retailprice", 1e-4, 1.0),
                EssDim::new("p⋈l", 1e-8, 5e-6),
            ],
            20,
        );
        Workload::new("EQ_2D", cat.clone(), q, ess, CostModel::postgresish())
    }

    /// A hand-built diagram over an explicit cost grid (plan trees are
    /// irrelevant to frontier geometry, so every point uses one dummy plan).
    fn synthetic_diagram(res: Vec<usize>, opt_cost: Vec<f64>) -> PlanDiagram {
        use pb_plan::{PhysicalPlan, PlanNode};
        let dims = (0..res.len())
            .map(|d| EssDim::new(format!("d{d}"), 1e-4, 1.0))
            .collect();
        let ess = Ess::new(dims, res);
        assert_eq!(ess.num_points(), opt_cost.len());
        let n = opt_cost.len();
        PlanDiagram {
            ess,
            plans: vec![PhysicalPlan::new(PlanNode::SeqScan { rel: 0 })],
            optimal: vec![0; n],
            opt_cost,
        }
    }

    #[test]
    fn frontier_of_single_point_grid() {
        // 1×1 grid: the lone point is the whole frontier when affordable,
        // and nothing is on the frontier below its cost.
        let d = synthetic_diagram(vec![1, 1], vec![100.0]);
        assert_eq!(Contour::frontier(&d, 100.0), vec![0]);
        assert_eq!(Contour::frontier(&d, 150.0), vec![0]);
        assert!(Contour::frontier(&d, 99.9).is_empty());
    }

    #[test]
    fn frontier_below_cmin_is_empty() {
        let w = eq_2d();
        let d = w.diagram();
        let (cmin, _) = d.cost_bounds();
        assert!(Contour::frontier(&d, cmin * 0.5).is_empty());
        // Exactly at C_min the origin becomes reachable.
        assert!(!Contour::frontier(&d, cmin).is_empty());
    }

    #[test]
    fn frontier_above_cmax_is_the_terminus() {
        let w = eq_2d();
        let d = w.diagram();
        let (_, cmax) = d.cost_bounds();
        // Every point is within budget, so the only maximal point of the
        // region is the grid's terminus corner.
        let f = Contour::frontier(&d, cmax * 2.0);
        assert_eq!(f, vec![d.ess.linear(&d.ess.terminus())]);
    }

    #[test]
    fn frontier_keeps_all_points_of_a_cost_plateau() {
        // 3×3 grid where the anti-diagonal staircase {[2,0],[1,1],[0,2]}
        // ties at cost 5 and everything beyond costs 10: all three tied,
        // mutually incomparable points must stay on the frontier.
        let cost = |ix: &[usize]| if ix[0] + ix[1] <= 2 { 5.0 } else { 10.0 };
        let dims = vec![3, 3];
        let probe = synthetic_diagram(dims.clone(), vec![0.0; 9]);
        let costs: Vec<f64> = (0..9).map(|li| cost(&probe.ess.unlinear(li))).collect();
        let d = synthetic_diagram(dims, costs);
        let f = Contour::frontier(&d, 5.0);
        let expect: Vec<usize> = (0..9)
            .filter(|&li| {
                let ix = d.ess.unlinear(li);
                ix[0] + ix[1] == 2
            })
            .collect();
        assert_eq!(f, expect, "tied staircase points must all survive");
        // On a uniform plateau covering the whole grid, every point except
        // the terminus is (non-strictly) dominated.
        let flat = synthetic_diagram(vec![3, 3], vec![5.0; 9]);
        assert_eq!(
            Contour::frontier(&flat, 5.0),
            vec![flat.ess.linear(&flat.ess.terminus())]
        );
        // Below the plateau cost nothing qualifies.
        assert!(Contour::frontier(&flat, 4.9).is_empty());
    }

    #[test]
    fn frontier_parallel_matches_serial_on_synthetic_grids() {
        // Staircase costs: frontier shape is non-trivial, so this checks
        // ordering is preserved by the chunked scan.
        let costs: Vec<f64> = (0..64).map(|li| ((li % 8) + (li / 8)) as f64).collect();
        let d = synthetic_diagram(vec![8, 8], costs);
        for budget in [0.0, 3.0, 7.5, 14.0] {
            let serial = Contour::frontier(&d, budget);
            for workers in [2, 3, 5] {
                let par = Contour::frontier_with(&d, budget, Parallelism::new(workers));
                assert_eq!(serial, par, "budget {budget}, workers {workers}");
            }
        }
    }

    #[test]
    fn frontier_points_are_maximal_and_within_budget() {
        let w = eq_2d();
        let d = w.diagram();
        let (cmin, cmax) = d.cost_bounds();
        let budget = (cmin * cmax).sqrt();
        let f = Contour::frontier(&d, budget);
        assert!(!f.is_empty());
        for &li in &f {
            assert!(d.opt_cost[li] <= budget);
            let ix = d.ess.unlinear(li);
            for dim in 0..d.ess.d() {
                if ix[dim] + 1 < d.ess.res[dim] {
                    let mut up = ix.clone();
                    up[dim] += 1;
                    assert!(d.opt_cost[d.ess.linear(&up)] > budget);
                }
            }
        }
    }

    #[test]
    fn every_interior_point_is_dominated_by_its_contour() {
        let w = eq_2d();
        let d = w.diagram();
        let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
        let (cmin, cmax) = d.cost_bounds();
        let grading = IsoCostGrading::geometric(cmin, cmax, 2.0);
        let contours = Contour::build_all(&d, &grading, &costs, 0.2);
        for li in 0..d.ess.num_points() {
            let ix = d.ess.unlinear(li);
            let k = contours
                .iter()
                .position(|c| d.opt_cost[li] <= c.step_cost)
                .expect("last contour covers everything");
            assert!(
                contours[k].dominates(&d, &ix),
                "point {li} not dominated on its contour"
            );
        }
    }

    #[test]
    fn assigned_plan_completes_within_inflated_budget() {
        let w = eq_2d();
        let d = w.diagram();
        let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
        let (cmin, cmax) = d.cost_bounds();
        let grading = IsoCostGrading::geometric(cmin, cmax, 2.0);
        let contours = Contour::build_all(&d, &grading, &costs, 0.2);
        for c in &contours {
            for (&li, &p) in c.points.iter().zip(&c.assignment) {
                assert!(
                    costs[p][li] <= c.budget * (1.0 + 1e-9),
                    "plan {p} cannot finish its own frontier point on contour {}",
                    c.id
                );
            }
        }
    }

    #[test]
    fn viable_plans_shrink_as_qrun_advances() {
        let w = eq_2d();
        let d = w.diagram();
        let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
        let (cmin, cmax) = d.cost_bounds();
        let grading = IsoCostGrading::geometric(cmin, cmax, 2.0);
        let contours = Contour::build_all(&d, &grading, &costs, 0.2);
        let mid = contours.len() / 2;
        let c = &contours[mid];
        let all = c.viable_plans(&d, &[0, 0]);
        assert_eq!(all, c.plan_set);
        let far = c.viable_plans(&d, &d.ess.terminus());
        assert!(far.len() <= all.len());
    }

    #[test]
    fn rho_is_max_density() {
        let w = eq_2d();
        let d = w.diagram();
        let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
        let (cmin, cmax) = d.cost_bounds();
        let grading = IsoCostGrading::geometric(cmin, cmax, 2.0);
        let contours = Contour::build_all(&d, &grading, &costs, 0.2);
        let r = rho(&contours);
        assert!(r >= 1);
        assert_eq!(r, contours.iter().map(|c| c.density()).max().unwrap());
    }

    #[test]
    fn coverage_includes_own_frontier_points() {
        let w = eq_2d();
        let d = w.diagram();
        let costs = d.cost_matrix(&w.catalog, &w.query, &w.model);
        let (cmin, cmax) = d.cost_bounds();
        let grading = IsoCostGrading::geometric(cmin, cmax, 2.0);
        let contours = Contour::build_all(&d, &grading, &costs, 0.2);
        let c = &contours[contours.len() / 2];
        let cov = c.coverage(&costs, d.ess.num_points());
        for (&li, &p) in c.points.iter().zip(&c.assignment) {
            let (_, pts) = cov.iter().find(|(pid, _)| *pid == p).unwrap();
            assert!(pts.contains(&li));
        }
    }
}
