//! Plan bouquets — the paper's core contribution.
//!
//! Compile time (Section 4): the error-prone selectivity space (ESS) is
//! explored to obtain the POSP infimum curve (PIC), which is discretized by a
//! geometric progression of isocost (IC) steps; the POSP plans lying on each
//! IC contour, thinned by anorexic reduction, form the *plan bouquet*.
//!
//! Run time (Section 5): the true query location is discovered through a
//! calibrated sequence of cost-limited executions of bouquet plans — the
//! basic driver of Figure 7 and the optimized driver of Figure 13 (qrun
//! tracking, AxisPlans selection, spill-based learning, early contour
//! change).
//!
//! Analysis (Sections 2–3): worst/average sub-optimality metrics (MSO, ASO,
//! MaxHarm), the native-optimizer and SEER baselines, and the theoretical
//! guarantees (MSO ≤ ρ·r²/(r−1), minimized at r = 2).

pub mod band;
pub mod baselines;
pub mod bouquet;
pub mod cache;
pub mod contour;
pub mod dim_analysis;
pub mod drivers;
pub mod eval;
pub mod flip;
pub mod grading;
pub mod maintenance;
pub mod metrics;
pub mod persist;
pub mod substrate;
pub mod theory;
pub mod workload;

pub use bouquet::{Bouquet, BouquetConfig, CompileStats, IncrementalIdentifyStats, PhaseTimings};
pub use cache::{BouquetCache, CacheKey, CacheOutcome};
pub use contour::Contour;
pub use drivers::robust::{RobustConfig, RobustEvent, RobustRun};
pub use drivers::{BouquetRun, ExecutionOutcome, PartialExec};
pub use eval::{EvalConfig, WorkloadEvaluation};
pub use grading::IsoCostGrading;
pub use metrics::{MetricsSummary, RobustnessDistribution};
pub use substrate::{
    measure_qa, EngineSubstrate, ExecutionSubstrate, ResumeStats, SimulatorSubstrate,
    SubstrateOutcome,
};
pub use workload::Workload;
