//! Morsel-driven parallel drivers for the vectorized engine.
//!
//! A morsel is one [`BATCH`]-row block of an operator phase's input. The
//! drivers here split every linear phase into two halves:
//!
//! * **compute** — a pure function of the morsel's row range (filter, probe,
//!   gather, index walk) that never touches the ledger or the fault
//!   injector. These fan out over `pb-cost`'s deterministic chunked
//!   work-stealing pool ([`par_map`]), in waves, and their results are
//!   reassembled in morsel order.
//! * **account** — the coordinator walks the per-morsel results *in morsel
//!   order* and replays exactly the ledger event sequence the serial engine
//!   produces: one [`Ctx::commit`] per batch with the closed-form
//!   [`lin2`]/[`lin3`] end value, and on a budget crossing the usual
//!   tuple-at-a-time replay of the offending batch.
//!
//! Because the ledger (and therefore the fault-trigger counters, the abort
//! tuple, the clamped cost and the instrumentation) only ever advances on
//! the coordinator, in batch order, with the exact values the serial engine
//! computes, the outcome is bit-identical for every worker count — the
//! per-worker "ledgers" are the closed-form counter deltas carried by each
//! morsel result, merged in the one fixed order that exists: ascending
//! morsel order.
//!
//! Waves bound the wasted work past an abort: at most one wave of morsels
//! is in flight, and a wave is pre-trimmed against the budget using the
//! emit-free lower bound of the closed form (monotonicity: if the value at
//! batch end with zero emits already exceeds the budget, no later batch can
//! be reached).

use pb_cost::{par_map, run_chunked, Parallelism};

use crate::ledger::{lin2, replay_anomaly, Ctx, Halt, BATCH};

/// Constants of one two-counter linear phase: `base + items·item_rate +
/// emitted·emit_rate`.
pub(crate) struct LinPhase {
    pub base: f64,
    pub item_rate: f64,
    pub emit_rate: f64,
}

/// Morsels dispatched per wave: enough to keep every worker busy through
/// `run_chunked`'s ~8-chunks-per-worker stealing, small enough that an
/// abort mid-wave wastes bounded compute.
fn wave_batches(workers: usize) -> usize {
    (workers * 8).max(16)
}

/// Drive one batch-granular linear phase over `0..n_items`.
///
/// `compute(lo, hi)` returns the batch's emit count and its payload (e.g.
/// pre-gathered output columns); it must be pure in the row range. The
/// coordinator consumes payloads in batch order via `consume` and settles
/// the ledger exactly as the serial engine does; `replay(ctx, lo, hi,
/// emitted)` re-runs the crossing batch tuple-at-a-time (it is only invoked
/// when the batch-end value exceeds the budget, so it must abort — the
/// driver converts a completed replay into the typed anomaly).
///
/// Returns the total emit count. The phase's `output_tuples` counter is
/// maintained when `instr_node` is given.
#[allow(clippy::too_many_arguments)] // one call-site contract per operator phase
pub(crate) fn drive_batches<R, C, K, P>(
    par: Parallelism,
    ctx: &mut Ctx<'_>,
    instr_node: Option<usize>,
    n_items: usize,
    ph: &LinPhase,
    compute: C,
    mut consume: K,
    mut replay: P,
) -> Result<u64, Halt>
where
    R: Send,
    C: Fn(usize, usize) -> (u64, R) + Sync,
    K: FnMut(R),
    P: FnMut(&mut Ctx<'_>, usize, usize, u64) -> Result<(), Halt>,
{
    let mut emitted = 0u64;
    if par.workers <= 1 || n_items == 0 {
        let mut lo = 0usize;
        while lo < n_items {
            let hi = (lo + BATCH).min(n_items);
            let (k, data) = compute(lo, hi);
            let end = lin2(ph.base, hi as u64, ph.item_rate, emitted + k, ph.emit_rate);
            if end > ctx.budget {
                replay(ctx, lo, hi, emitted)?;
                return Err(replay_anomaly());
            }
            ctx.commit(end)?;
            emitted += k;
            if let Some(id) = instr_node {
                ctx.instr[id].output_tuples = emitted;
            }
            consume(data);
            lo = hi;
        }
        return Ok(emitted);
    }

    let n_batches = n_items.div_ceil(BATCH);
    let mut b0 = 0usize;
    while b0 < n_batches {
        let mut nb = wave_batches(par.workers).min(n_batches - b0);
        // Trim the wave against the emit-free lower bound: batches past the
        // first bound crossing can never be committed (monotonicity), so
        // computing them would be pure waste. The trim depends only on the
        // counters, never on worker count.
        for i in 0..nb {
            let hi = (((b0 + i) * BATCH) + BATCH).min(n_items);
            if lin2(ph.base, hi as u64, ph.item_rate, emitted, ph.emit_rate) > ctx.budget {
                nb = i + 1;
                break;
            }
        }
        let results = par_map(par, nb, |i| {
            let lo = (b0 + i) * BATCH;
            let hi = (lo + BATCH).min(n_items);
            compute(lo, hi)
        });
        for (i, (k, data)) in results.into_iter().enumerate() {
            let lo = (b0 + i) * BATCH;
            let hi = (lo + BATCH).min(n_items);
            let end = lin2(ph.base, hi as u64, ph.item_rate, emitted + k, ph.emit_rate);
            if end > ctx.budget {
                replay(ctx, lo, hi, emitted)?;
                return Err(replay_anomaly());
            }
            ctx.commit(end)?;
            emitted += k;
            if let Some(id) = instr_node {
                ctx.instr[id].output_tuples = emitted;
            }
            consume(data);
        }
        b0 += nb;
    }
    Ok(emitted)
}

/// Tuple-exact replay of one over-budget batch for the standard two-counter
/// row phases (scan filters, index-entry walks, hash/anti-join probes):
/// row `r` advances the item counter to `r + 1` and emits `emits(r)`
/// tuples. The per-row emit counts are a pure function of the row, so they
/// are precomputed fanned over `par`; the coordinator then issues the
/// serial engine's exact ledger event sequence — one settle per row, one
/// settle per emitted tuple — so the abort tuple, the clamped cost and the
/// instrumentation are bit-identical for every worker count, including the
/// fault-trigger event ordering an armed injector observes.
///
/// Only invoked when the batch-end value exceeds the budget, so the settle
/// loop must abort; callers convert a completed replay into the typed
/// anomaly via `drive_batches`.
#[allow(clippy::too_many_arguments)] // mirrors the drive_batches replay contract
pub(crate) fn replay_rows<E>(
    par: Parallelism,
    ctx: &mut Ctx<'_>,
    instr_node: usize,
    lo: usize,
    hi: usize,
    mut emitted: u64,
    ph: &LinPhase,
    emits: E,
) -> Result<(), Halt>
where
    E: Fn(usize) -> u64 + Sync,
{
    let counts: Vec<u64> = if par.workers <= 1 || hi - lo < 2 {
        (lo..hi).map(&emits).collect()
    } else {
        run_chunked(par, hi - lo, |_, range| {
            range.map(|i| emits(lo + i)).collect::<Vec<u64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    for (off, &k) in counts.iter().enumerate() {
        let seen = (lo + off) as u64 + 1;
        ctx.settle(lin2(ph.base, seen, ph.item_rate, emitted, ph.emit_rate))?;
        for _ in 0..k {
            emitted += 1;
            ctx.settle(lin2(ph.base, seen, ph.item_rate, emitted, ph.emit_rate))?;
            ctx.instr[instr_node].output_tuples += 1;
        }
    }
    Ok(())
}

/// Ledger-only linear phase (hash-join build, aggregate input): the charge
/// depends only on the item count, so the coordinator settles all batches
/// up front and the (parallel) data work runs only if the phase fit the
/// budget. Identical event sequence to the serial engine's interleaved
/// loop — the data work emits no ledger events either way.
pub(crate) fn charge_linear(
    ctx: &mut Ctx<'_>,
    base: f64,
    rate: f64,
    n_items: usize,
) -> Result<(), Halt> {
    let mut lo = 0usize;
    while lo < n_items {
        let hi = (lo + BATCH).min(n_items);
        let end = lin2(base, hi as u64, rate, 0, 0.0);
        if end > ctx.budget {
            for i in lo..hi {
                ctx.settle(lin2(base, i as u64 + 1, rate, 0, 0.0))?;
            }
            return Err(replay_anomaly());
        }
        ctx.commit(end)?;
        lo = hi;
    }
    Ok(())
}

/// Drive one item-granular phase (index/block nested-loops: one ledger
/// commit per outer row).
///
/// `compute(item, &mut matches)` fills the item's match list and returns
/// its secondary counter delta (probed index entries; unused counters
/// return 0). `end_value(items_next, c1_next, emitted_next)` is the
/// operator's closed form at prospective counter values. `consume(item,
/// matches)` materializes in item order; `replay(ctx, item, c1, emitted)`
/// re-runs the crossing item tuple-at-a-time and must abort.
#[allow(clippy::too_many_arguments)] // one call-site contract per operator phase
pub(crate) fn drive_items<C, E, K, P>(
    par: Parallelism,
    ctx: &mut Ctx<'_>,
    instr_node: usize,
    n_items: usize,
    compute: C,
    end_value: E,
    mut consume: K,
    mut replay: P,
) -> Result<u64, Halt>
where
    C: Fn(usize, &mut Vec<u32>) -> u64 + Sync,
    E: Fn(u64, u64, u64) -> f64,
    K: FnMut(usize, &[u32]),
    P: FnMut(&mut Ctx<'_>, usize, u64, u64) -> Result<(), Halt>,
{
    let (mut c1, mut emitted) = (0u64, 0u64);
    if par.workers <= 1 || n_items == 0 {
        let mut matches: Vec<u32> = Vec::new();
        for item in 0..n_items {
            matches.clear();
            let d1 = compute(item, &mut matches);
            let k = matches.len() as u64;
            let end = end_value(item as u64 + 1, c1 + d1, emitted + k);
            if end > ctx.budget {
                replay(ctx, item, c1, emitted)?;
                return Err(replay_anomaly());
            }
            ctx.commit(end)?;
            c1 += d1;
            emitted += k;
            ctx.instr[instr_node].output_tuples = emitted;
            consume(item, &matches);
        }
        return Ok(emitted);
    }

    // Waves of items; each chunk returns (per-item counter deltas, flat
    // match payload) reassembled in chunk order = item order.
    let wave = (par.workers * 1024).max(4096);
    let mut i0 = 0usize;
    while i0 < n_items {
        let mut nw = wave.min(n_items - i0);
        // Emit-free trim, as in `drive_batches`: c1 deltas are unknown but
        // non-negative, so the items-only bound is still a lower bound.
        for i in 0..nw {
            if end_value((i0 + i) as u64 + 1, c1, emitted) > ctx.budget {
                nw = i + 1;
                break;
            }
        }
        let chunks = run_chunked(par, nw, |_, range| {
            let mut meta: Vec<(u64, u32)> = Vec::with_capacity(range.len());
            let mut flat: Vec<u32> = Vec::new();
            let mut matches: Vec<u32> = Vec::new();
            for i in range {
                matches.clear();
                let d1 = compute(i0 + i, &mut matches);
                meta.push((d1, matches.len() as u32));
                flat.extend_from_slice(&matches);
            }
            (meta, flat)
        });
        let mut item = i0;
        for (meta, flat) in chunks {
            let mut off = 0usize;
            for (d1, klen) in meta {
                let k = u64::from(klen);
                let end = end_value(item as u64 + 1, c1 + d1, emitted + k);
                if end > ctx.budget {
                    replay(ctx, item, c1, emitted)?;
                    return Err(replay_anomaly());
                }
                ctx.commit(end)?;
                c1 += d1;
                emitted += k;
                ctx.instr[instr_node].output_tuples = emitted;
                consume(item, &flat[off..off + klen as usize]);
                off += klen as usize;
                item += 1;
            }
        }
        i0 += nw;
    }
    Ok(emitted)
}

// ---------------------------------------------------------------------------
// Partitioned hash-join build
// ---------------------------------------------------------------------------

use crate::vec_exec::FastMap;

/// Partition count for the parallel hash-join build. Fixed — never derived
/// from the worker count — so the partition a key lands in, and therefore
/// every per-partition table, is identical for every worker count.
const JOIN_PARTS: usize = 64;

#[inline]
fn part_of(v: i64) -> usize {
    // SplitMix64 finalizer — decorrelates from FastHasher so one partition
    // doesn't inherit a whole hash bucket.
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize & (JOIN_PARTS - 1)
}

/// Hash-join build side: a single map (serial) or fixed-fan-out partitions
/// (parallel build). Probes see identical content either way: every
/// per-key row list is in ascending row order because rows are inserted in
/// ascending order — directly (serial) or as ordered chunk scatters merged
/// in chunk order (parallel).
pub(crate) enum JoinTable {
    Single(FastMap<i64, Vec<u32>>),
    Parts(Vec<FastMap<i64, Vec<u32>>>),
}

impl JoinTable {
    /// Build from the key column's first `len` rows.
    pub fn build(par: Parallelism, keys: &[i64], len: usize) -> JoinTable {
        if par.workers <= 1 {
            let mut table: FastMap<i64, Vec<u32>> = FastMap::default();
            for (i, &v) in keys[..len].iter().enumerate() {
                table.entry(v).or_default().push(i as u32);
            }
            return JoinTable::Single(table);
        }
        // Phase 1: scatter ascending row ranges into per-partition buckets.
        let scattered = run_chunked(par, len, |_, range| {
            let mut buckets: Vec<Vec<(i64, u32)>> = vec![Vec::new(); JOIN_PARTS];
            for i in range {
                let v = keys[i];
                buckets[part_of(v)].push((v, i as u32));
            }
            buckets
        });
        // Phase 2: one map per partition, scanning the chunks in order so
        // per-key row lists come out ascending.
        let parts = par_map(par, JOIN_PARTS, |p| {
            let mut m: FastMap<i64, Vec<u32>> = FastMap::default();
            for chunk in &scattered {
                for &(v, i) in &chunk[p] {
                    m.entry(v).or_default().push(i);
                }
            }
            m
        });
        JoinTable::Parts(parts)
    }

    #[inline]
    pub fn get(&self, v: i64) -> Option<&[u32]> {
        match self {
            JoinTable::Single(m) => m.get(&v).map(Vec::as_slice),
            JoinTable::Parts(parts) => parts[part_of(v)].get(&v).map(Vec::as_slice),
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel stable argsort (sort-merge join)
// ---------------------------------------------------------------------------

/// Stable argsort of `keys`: chunk-local stable sorts merged pairwise with
/// left-run preference on ties. A stable sort's output permutation is
/// unique, so this equals `sort_by_key` on the identity permutation bit for
/// bit, for every worker count and chunking.
pub(crate) fn par_stable_argsort(par: Parallelism, keys: &[i64]) -> Vec<u32> {
    let n = keys.len();
    if par.workers <= 1 || n < 2 {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&x| keys[x as usize]);
        return perm;
    }
    let n_chunks = (par.workers * 2).min(n);
    let chunk = n.div_ceil(n_chunks);
    let mut runs: Vec<Vec<u32>> = par_map(par, n.div_ceil(chunk), |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let mut perm: Vec<u32> = (lo as u32..hi as u32).collect();
        perm.sort_by_key(|&x| keys[x as usize]);
        perm
    });
    while runs.len() > 1 {
        let pairs = runs.len() / 2;
        let mut merged = par_map(par, pairs, |p| {
            merge_runs(keys, &runs[2 * p], &runs[2 * p + 1])
        });
        if runs.len() % 2 == 1 {
            // Odd run out: it holds the highest original indices, so it
            // stays last and merges next round.
            let last = runs.len() - 1;
            merged.push(std::mem::take(&mut runs[last]));
        }
        runs = merged;
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-run merge: ties take from `a`, whose indices all precede
/// `b`'s in the original order.
fn merge_runs(keys: &[i64], a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if keys[a[i] as usize] <= keys[b[j] as usize] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

// ---------------------------------------------------------------------------
// Parallel grouped counting (hash aggregate)
// ---------------------------------------------------------------------------

/// Per-chunk distinct-key counts in chunk-first-occurrence order, merged in
/// chunk order. The merged map's *insertion sequence of distinct keys* is
/// then the global first-occurrence order — exactly the sequence the serial
/// row-at-a-time loop produces — so the map's layout, and therefore its
/// iteration order at emission, is bit-identical to the serial engine's.
pub(crate) fn par_group_counts<K, G>(
    par: Parallelism,
    n_rows: usize,
    key_of: G,
    out: &mut FastMap<K, i64>,
) where
    K: std::hash::Hash + Eq + Clone + Send,
    G: Fn(usize) -> K + Sync,
{
    if par.workers <= 1 {
        for row in 0..n_rows {
            *out.entry(key_of(row)).or_insert(0) += 1;
        }
        return;
    }
    let chunks = run_chunked(par, n_rows, |_, range| {
        let mut order: Vec<(K, i64)> = Vec::new();
        let mut seen: FastMap<K, usize> = FastMap::default();
        for row in range {
            let key = key_of(row);
            match seen.get(&key) {
                Some(&slot) => order[slot].1 += 1,
                None => {
                    seen.insert(key.clone(), order.len());
                    order.push((key, 1));
                }
            }
        }
        order
    });
    for chunk in chunks {
        for (key, count) in chunk {
            *out.entry(key).or_insert(0) += count;
        }
    }
}

/// Chunk-parallel distinct-key collection for the anti-join build. Only
/// membership is ever observed, so chunk-set union order is irrelevant.
pub(crate) fn par_key_set(
    par: Parallelism,
    keys: &[i64],
    len: usize,
) -> crate::vec_exec::FastSet<i64> {
    if par.workers <= 1 {
        return keys[..len].iter().copied().collect();
    }
    let chunks = run_chunked(par, len, |_, range| {
        keys[range]
            .iter()
            .copied()
            .collect::<crate::vec_exec::FastSet<i64>>()
    });
    let mut out = crate::vec_exec::FastSet::default();
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_faults::FaultInjector;

    fn ctx<'f>(budget: f64, faults: &'f FaultInjector, nodes: usize) -> Ctx<'f> {
        Ctx {
            spent: 0.0,
            budget,
            instr: vec![crate::exec::NodeStats::default(); nodes],
            faults,
            resume: None,
            reused: 0.0,
            cancel: None,
        }
    }

    #[test]
    fn drive_batches_matches_serial_for_any_worker_count() {
        let n = 10_000usize;
        let ph = LinPhase {
            base: 1.0,
            item_rate: 0.01,
            emit_rate: 0.002,
        };
        let compute = |lo: usize, hi: usize| -> (u64, Vec<usize>) {
            let sel: Vec<usize> = (lo..hi).filter(|i| i % 3 == 0).collect();
            (sel.len() as u64, sel)
        };
        let inert = FaultInjector::none();
        let run = |workers: usize, budget: f64| {
            let mut c = ctx(budget, &inert, 1);
            let mut got: Vec<usize> = Vec::new();
            let r = drive_batches(
                Parallelism::new(workers),
                &mut c,
                Some(0),
                n,
                &ph,
                compute,
                |d: Vec<usize>| got.extend(d),
                |c, lo, hi, mut em| {
                    let mut seen = lo as u64;
                    for i in lo..hi {
                        seen += 1;
                        c.settle(lin2(ph.base, seen, ph.item_rate, em, ph.emit_rate))?;
                        if i % 3 == 0 {
                            em += 1;
                            c.settle(lin2(ph.base, seen, ph.item_rate, em, ph.emit_rate))?;
                        }
                    }
                    Ok(())
                },
            );
            (r.is_ok(), c.spent.to_bits(), got)
        };
        for budget in [f64::INFINITY, 120.0, 60.0, 10.0, 1.5] {
            let serial = run(1, budget);
            for w in [2, 3, 8] {
                assert_eq!(serial, run(w, budget), "workers {w} budget {budget}");
            }
        }
    }

    #[test]
    fn replay_rows_is_bit_identical_across_worker_counts() {
        // Replays abort by construction (the batch-end value exceeded the
        // budget); every worker count must stop at the same ledger event
        // with the same clamped spend and the same emitted-tuple count.
        let (lo, hi) = (4096usize, 8192usize);
        let ph = LinPhase {
            base: 1.0,
            item_rate: 0.01,
            emit_rate: 0.002,
        };
        let emits = |i: usize| u64::from(i.is_multiple_of(5)) * (1 + (i % 3) as u64);
        let inert = FaultInjector::none();
        let run = |workers: usize, budget: f64| {
            let mut c = ctx(budget, &inert, 1);
            let aborted = matches!(
                replay_rows(
                    Parallelism::new(workers),
                    &mut c,
                    0,
                    lo,
                    hi,
                    900,
                    &ph,
                    emits
                ),
                Err(Halt::Abort)
            );
            (aborted, c.spent.to_bits(), c.instr[0].output_tuples)
        };
        for budget in [55.0, 70.0, 85.0] {
            let serial = run(1, budget);
            assert!(serial.0, "replay must abort at budget {budget}");
            for w in [2, 3, 8] {
                assert_eq!(serial, run(w, budget), "workers {w} budget {budget}");
            }
        }
    }

    #[test]
    fn join_table_partitions_preserve_ascending_row_order() {
        let keys: Vec<i64> = (0..20_000).map(|i| (i * 7919) % 97).collect();
        let serial = JoinTable::build(Parallelism::serial(), &keys, keys.len());
        for w in [2, 4, 8] {
            let par = JoinTable::build(Parallelism::new(w), &keys, keys.len());
            for k in 0..97i64 {
                assert_eq!(serial.get(k), par.get(k), "key {k} workers {w}");
            }
        }
    }

    #[test]
    fn par_stable_argsort_equals_sort_by_key() {
        let keys: Vec<i64> = (0..30_000)
            .map(|i| (i * 2654435761u64 as usize % 50) as i64)
            .collect();
        let mut expect: Vec<u32> = (0..keys.len() as u32).collect();
        expect.sort_by_key(|&x| keys[x as usize]);
        for w in [2, 3, 4, 8] {
            assert_eq!(
                expect,
                par_stable_argsort(Parallelism::new(w), &keys),
                "workers {w}"
            );
        }
    }

    #[test]
    fn par_group_counts_replicates_serial_insertion_order() {
        let rows: Vec<i64> = (0..25_000).map(|i| ((i * 31) % 113) as i64).collect();
        let mut serial: FastMap<i64, i64> = FastMap::default();
        for &v in &rows {
            *serial.entry(v).or_insert(0) += 1;
        }
        let serial_iter: Vec<(i64, i64)> = serial.iter().map(|(&k, &c)| (k, c)).collect();
        for w in [2, 4, 8] {
            let mut par: FastMap<i64, i64> = FastMap::default();
            par_group_counts(Parallelism::new(w), rows.len(), |r| rows[r], &mut par);
            let par_iter: Vec<(i64, i64)> = par.iter().map(|(&k, &c)| (k, c)).collect();
            assert_eq!(serial_iter, par_iter, "workers {w}");
        }
    }
}
