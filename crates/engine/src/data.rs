//! Deterministic in-memory data generation conforming to catalog statistics.

use std::collections::HashMap;

use pb_catalog::{Catalog, Distribution};
use pb_cost::Parallelism;
use pb_faults::PbError;
use pb_plan::{CmpOp, QuerySpec, SelectionPredicate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Overrides that make the generated data deviate from what the statistics
/// (and hence the AVI estimator) suggest — the controlled source of
/// estimation error for the engine experiments.
#[derive(Debug, Clone)]
pub enum ColumnOverride {
    /// Generate the column with only `ndv` distinct values although the
    /// statistics claim more: equality/join selectivities on it come out
    /// `claimed_ndv / ndv` times larger than estimated.
    EffectiveNdv {
        table: String,
        column: String,
        ndv: u64,
    },
    /// Make the column a monotone function of another column of the same
    /// table, so conjunctive predicates on the pair are fully correlated
    /// (AVI multiplies their selectivities; reality takes the minimum).
    CorrelatedWith {
        table: String,
        column: String,
        with: String,
    },
    /// [`ColumnOverride::CorrelatedWith`] with controllable strength
    /// `rho ∈ [0, 1]`: each row follows the monotone copy of the source
    /// with probability `rho` and is drawn independently (uniform over the
    /// column's range) otherwise, dialing the AVI violation from none
    /// (`rho = 0`) to total (`rho = 1`). The mixture draws from a
    /// column-derived RNG stream, so the table's main stream — and with it
    /// every other column of every table — stays bit-identical to an
    /// un-overridden run.
    CorrelatedWithStrength {
        table: String,
        column: String,
        with: String,
        rho: f64,
    },
}

/// Column-major table data plus sorted secondary indexes.
#[derive(Debug, Clone)]
pub struct TableData {
    /// `columns[c][row]`.
    pub columns: Vec<Vec<i64>>,
    /// Per indexed column: `(value, row)` sorted by value then row.
    pub indexes: HashMap<u32, Vec<(i64, u32)>>,
    pub rows: usize,
}

/// An in-memory database instance for a catalog.
#[derive(Debug, Clone)]
pub struct Database {
    pub catalog: Catalog,
    tables: Vec<TableData>,
}

impl Database {
    /// Generate data for every catalog table with the given seed. Fails when
    /// an override names a correlation source column the table lacks.
    pub fn generate(
        catalog: &Catalog,
        seed: u64,
        overrides: &[ColumnOverride],
    ) -> Result<Self, PbError> {
        Self::generate_with(catalog, seed, overrides, Parallelism::serial())
    }

    /// [`Database::generate`] with tables generated in parallel. Each table
    /// draws from its own seeded RNG stream, so the produced data is
    /// bit-identical for every worker count — parallelism only changes which
    /// thread materialises which table.
    pub fn generate_with(
        catalog: &Catalog,
        seed: u64,
        overrides: &[ColumnOverride],
        par: Parallelism,
    ) -> Result<Self, PbError> {
        let specs: Vec<&pb_catalog::Table> = catalog.tables().collect();
        let mut tables = Vec::with_capacity(specs.len());
        for t in pb_cost::par_map(par, specs.len(), |i| gen_table(specs[i], seed, overrides)) {
            tables.push(t?);
        }
        Ok(Database {
            catalog: catalog.clone(),
            tables,
        })
    }

    pub fn table(&self, id: pb_catalog::TableId) -> &TableData {
        &self.tables[id.0 as usize]
    }

    /// Recompute catalog statistics from the actual data — the engine's
    /// `ANALYZE`. Returns a fresh catalog whose NDVs, bounds and equi-depth
    /// histograms reflect what is really stored, so the AVI estimator
    /// becomes accurate again (the counterpart of the *stale statistics*
    /// scenario used by the Table 3 experiment).
    pub fn analyze(&self, histogram_buckets: usize) -> Catalog {
        let mut cat = self.catalog.clone();
        let names: Vec<String> = self.catalog.tables().map(|t| t.name.clone()).collect();
        for tname in names {
            let Some(t) = self.catalog.table(&tname) else {
                continue;
            };
            let td = self.table(t.id);
            for col in &t.columns {
                let data = &td.columns[col.id.column as usize];
                let stats = cat.column_stats_mut(&tname, &col.name);
                if data.is_empty() {
                    continue;
                }
                let mut distinct: Vec<i64> = data.clone();
                distinct.sort_unstable();
                distinct.dedup();
                stats.ndv = distinct.len() as f64;
                stats.min = data.iter().min().copied().unwrap_or(0) as f64;
                stats.max = data.iter().max().copied().unwrap_or(0) as f64;
                stats.histogram = pb_catalog::EquiDepthHistogram::from_values(
                    data.iter().map(|&v| v as f64).collect(),
                    histogram_buckets,
                );
            }
        }
        cat
    }

    /// Actual selectivity of a selection predicate against this data.
    pub fn actual_selection_selectivity(&self, pred: &SelectionPredicate) -> f64 {
        let t = self.table(pred.column.table);
        let col = &t.columns[pred.column.column as usize];
        if col.is_empty() {
            return 0.0;
        }
        let hits = col.iter().filter(|&&v| eval_pred(pred, v)).count();
        hits as f64 / col.len() as f64
    }

    /// Actual selectivity of a join predicate: |matching pairs| / (|L| · |R|),
    /// under the edge's comparison op (`=` via value frequencies, `<` / `>`
    /// via a sort + per-value partition point — O((n+m) log m), never the
    /// n·m pair product).
    pub fn actual_join_selectivity(&self, query: &QuerySpec, join_idx: usize) -> f64 {
        let j = &query.joins[join_idx];
        let lt = self.table(query.relations[j.left_rel].table);
        let rt = self.table(query.relations[j.right_rel].table);
        let lcol = &lt.columns[j.left_col.column as usize];
        let rcol = &rt.columns[j.right_col.column as usize];
        if lcol.is_empty() || rcol.is_empty() {
            return 0.0;
        }
        let matches: u64 = match j.op {
            // Existential edges consume the ≥1-match fraction per left row
            // (the anti/semi cost formulas read `s` as match-fraction /
            // |right|), not pair multiplicity: a right side with duplicate
            // keys must not inflate the density.
            CmpOp::Eq | CmpOp::Between if j.anti || j.semi => {
                let set: std::collections::HashSet<i64> = rcol.iter().copied().collect();
                lcol.iter().filter(|v| set.contains(v)).count() as u64
            }
            CmpOp::Eq | CmpOp::Between => {
                let mut freq: HashMap<i64, u64> = HashMap::new();
                for &v in lcol {
                    *freq.entry(v).or_insert(0) += 1;
                }
                rcol.iter().map(|v| freq.get(v).copied().unwrap_or(0)).sum()
            }
            CmpOp::Lt | CmpOp::Gt => {
                let mut sorted = rcol.clone();
                sorted.sort_unstable();
                lcol.iter()
                    .map(|&l| match j.op {
                        // pairs with l < r: right values strictly above l
                        CmpOp::Lt => (sorted.len() - sorted.partition_point(|&r| r <= l)) as u64,
                        // pairs with l > r: right values strictly below l
                        _ => sorted.partition_point(|&r| r < l) as u64,
                    })
                    .sum()
            }
        };
        matches as f64 / (lcol.len() as f64 * rcol.len() as f64)
    }
}

enum Ov {
    Ndv(u64),
    Corr(usize),
    CorrStrength(usize, f64),
}

/// Materialise one table: columns in catalog order from the table's private
/// RNG stream, then sorted secondary indexes. Pure function of
/// `(table spec, seed, overrides)` — the unit of parallelism for
/// [`Database::generate_with`].
fn gen_table(
    t: &pb_catalog::Table,
    seed: u64,
    overrides: &[ColumnOverride],
) -> Result<TableData, PbError> {
    let mut rng = StdRng::seed_from_u64(seed ^ (t.id.0 as u64).wrapping_mul(0x9E37));
    let nrows = t.rows.round() as usize;
    let mut columns: Vec<Vec<i64>> = Vec::with_capacity(t.columns.len());
    for col in &t.columns {
        let mut ov = None;
        for o in overrides {
            match o {
                ColumnOverride::EffectiveNdv { table, column, ndv }
                    if *table == t.name && *column == col.name =>
                {
                    ov = Some(Ov::Ndv(*ndv));
                }
                ColumnOverride::CorrelatedWith {
                    table,
                    column,
                    with,
                } if *table == t.name && *column == col.name => {
                    let src = t
                        .columns
                        .iter()
                        .position(|c| c.name == *with)
                        .ok_or_else(|| PbError::MissingEntity {
                            kind: "correlation source column".into(),
                            name: format!("{}.{with}", t.name),
                        })?;
                    ov = Some(Ov::Corr(src));
                }
                ColumnOverride::CorrelatedWithStrength {
                    table,
                    column,
                    with,
                    rho,
                } if *table == t.name && *column == col.name => {
                    let src = t
                        .columns
                        .iter()
                        .position(|c| c.name == *with)
                        .ok_or_else(|| PbError::MissingEntity {
                            kind: "correlation source column".into(),
                            name: format!("{}.{with}", t.name),
                        })?;
                    ov = Some(Ov::CorrStrength(src, rho.clamp(0.0, 1.0)));
                }
                _ => {}
            }
        }
        let data: Vec<i64> = match ov {
            Some(Ov::Ndv(ndv)) => {
                let lo = col.stats.min as i64;
                (0..nrows)
                    .map(|_| lo + rng.random_range(0..ndv.max(1)) as i64)
                    .collect()
            }
            Some(Ov::Corr(src)) => {
                // Monotone copy of the source column, rescaled into
                // this column's range.
                let source = &columns[src];
                let t_col = &t.columns[src];
                let (slo, shi) = (t_col.stats.min, t_col.stats.max.max(t_col.stats.min + 1.0));
                let (dlo, dhi) = (col.stats.min, col.stats.max.max(col.stats.min + 1.0));
                source
                    .iter()
                    .map(|&v| {
                        let f = (v as f64 - slo) / (shi - slo);
                        (dlo + f * (dhi - dlo)).round() as i64
                    })
                    .collect()
            }
            Some(Ov::CorrStrength(src, rho)) => {
                // rho-mixture of the monotone copy and independent uniform
                // draws, from a column-derived stream (the main `rng` is
                // untouched, keeping all other columns bit-identical).
                let mut crng = StdRng::seed_from_u64(
                    seed ^ (t.id.0 as u64).wrapping_mul(0x9E37)
                        ^ (col.id.column as u64 + 1).wrapping_mul(0xC2B2_AE3D),
                );
                let source = &columns[src];
                let t_col = &t.columns[src];
                let (slo, shi) = (t_col.stats.min, t_col.stats.max.max(t_col.stats.min + 1.0));
                let (dlo, dhi) = (col.stats.min, col.stats.max.max(col.stats.min + 1.0));
                let span = ((dhi - dlo) as i64 + 1).max(1);
                source
                    .iter()
                    .map(|&v| {
                        let follow: f64 = crng.random();
                        let indep = dlo as i64 + crng.random_range(0..span);
                        if follow < rho {
                            let f = (v as f64 - slo) / (shi - slo);
                            (dlo + f * (dhi - dlo)).round() as i64
                        } else {
                            indep
                        }
                    })
                    .collect()
            }
            None => match col.stats.distribution {
                Distribution::Uniform => {
                    let ndv = (col.stats.ndv.round() as i64).max(1);
                    let lo = col.stats.min as i64;
                    let span = ((col.stats.max - col.stats.min) as i64 + 1).max(1);
                    if ndv >= span {
                        (0..nrows).map(|_| lo + rng.random_range(0..span)).collect()
                    } else {
                        // fewer distinct values than the range: use a
                        // deterministic stride embedding
                        let stride = span / ndv;
                        (0..nrows)
                            .map(|_| lo + rng.random_range(0..ndv) * stride)
                            .collect()
                    }
                }
                Distribution::Zipf(skew) => {
                    let ndv = (col.stats.ndv.round() as u64).max(1);
                    let lo = col.stats.min as i64;
                    (0..nrows)
                        .map(|_| lo + zipf_sample(&mut rng, ndv, skew) as i64)
                        .collect()
                }
            },
        };
        columns.push(data);
    }
    // Build indexes on every indexed column.
    let mut indexes = HashMap::new();
    for ix in &t.indexes {
        let c = ix.column.column;
        let mut entries: Vec<(i64, u32)> = columns[c as usize]
            .iter()
            .enumerate()
            .map(|(r, &v)| (v, r as u32))
            .collect();
        entries.sort_unstable();
        indexes.insert(c, entries);
    }
    Ok(TableData {
        columns,
        indexes,
        rows: nrows,
    })
}

/// Evaluate a selection predicate against an i64 value.
pub fn eval_pred(pred: &SelectionPredicate, v: i64) -> bool {
    let x = v as f64;
    match pred.op {
        CmpOp::Eq => x == pred.constant,
        CmpOp::Lt => x < pred.constant,
        CmpOp::Gt => x > pred.constant,
        CmpOp::Between => x >= pred.constant2 && x <= pred.constant,
    }
}

/// Rejection-free Zipf sampler via the inverse-CDF power-law approximation.
fn zipf_sample(rng: &mut StdRng, n: u64, skew: f64) -> u64 {
    let u: f64 = rng.random();
    if skew <= 0.0 {
        return (u * n as f64) as u64;
    }
    let x = ((n as f64).powf(1.0 - skew) * u + 1.0 - u).powf(1.0 / (1.0 - skew));
    (x.floor() as u64).clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_catalog::tpch;
    use pb_plan::{QueryBuilder, SelSpec};

    fn db() -> Database {
        Database::generate(&tpch::catalog(0.01), 42, &[]).expect("generate")
    }

    #[test]
    fn generation_is_deterministic() {
        let cat = tpch::catalog(0.01);
        let a = Database::generate(&cat, 7, &[]).expect("generate");
        let b = Database::generate(&cat, 7, &[]).expect("generate");
        let t = cat.table("part").unwrap().id;
        assert_eq!(a.table(t).columns, b.table(t).columns);
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let cat = tpch::catalog(0.01);
        let serial = Database::generate(&cat, 7, &[]).expect("generate");
        for workers in [2, 4, 8] {
            let par = Database::generate_with(&cat, 7, &[], Parallelism::new(workers))
                .expect("generate_with");
            for t in cat.tables() {
                assert_eq!(serial.table(t.id).columns, par.table(t.id).columns);
                assert_eq!(serial.table(t.id).indexes, par.table(t.id).indexes);
            }
        }
    }

    #[test]
    fn row_counts_match_catalog() {
        let d = db();
        let part = d.catalog.table("part").unwrap();
        assert_eq!(d.table(part.id).rows, part.rows.round() as usize);
        assert_eq!(d.table(part.id).columns.len(), part.columns.len());
    }

    #[test]
    fn indexes_are_sorted_and_complete() {
        let d = db();
        let part = d.catalog.table("part").unwrap();
        let td = d.table(part.id);
        for (c, ix) in &td.indexes {
            assert_eq!(ix.len(), td.rows);
            assert!(
                ix.windows(2).all(|w| w[0] <= w[1]),
                "index on col {c} unsorted"
            );
        }
    }

    #[test]
    fn selection_selectivity_tracks_stats() {
        let cat = tpch::catalog(0.01);
        let d = Database::generate(&cat, 3, &[]).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        // p_retailprice in [900, 2099]; < 1500 → ≈ 0.5.
        qb.select(p, "p_retailprice", CmpOp::Lt, 1500.0, SelSpec::Fixed(0.5));
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
        let q = qb.build();
        let s = d.actual_selection_selectivity(&q.relations[0].selections[0]);
        assert!((s - 0.5).abs() < 0.05, "observed {s}");
    }

    #[test]
    fn join_selectivity_matches_fk_expectation() {
        let cat = tpch::catalog(0.01);
        let d = Database::generate(&cat, 3, &[]).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
        let q = qb.build();
        // Both sides uniform over 2000 part keys: s ≈ 1/2000.
        let s = d.actual_join_selectivity(&q, 0);
        assert!((s - 1.0 / 2000.0).abs() < 0.3 / 2000.0, "observed {s}");
    }

    #[test]
    fn effective_ndv_override_inflates_join_selectivity() {
        let cat = tpch::catalog(0.01);
        let ov = vec![ColumnOverride::EffectiveNdv {
            table: "lineitem".into(),
            column: "l_partkey".into(),
            ndv: 50,
        }];
        let d = Database::generate(&cat, 3, &ov).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
        let q = qb.build();
        let s = d.actual_join_selectivity(&q, 0);
        // Matching density is bounded by part's uniform density; the point
        // of the override is that the estimator's 1/200e3 is a gross
        // *underestimate* of the actual selectivity.
        assert!(s > 2.0 / 200_000.0, "override had no effect: {s}");
    }

    #[test]
    fn analyze_refreshes_stats_to_match_data() {
        let cat = tpch::catalog(0.01);
        let ov = vec![ColumnOverride::EffectiveNdv {
            table: "lineitem".into(),
            column: "l_partkey".into(),
            ndv: 70,
        }];
        let d = Database::generate(&cat, 3, &ov).expect("generate");
        let fresh = d.analyze(16);
        let stats = fresh
            .table("lineitem")
            .unwrap()
            .column("l_partkey")
            .unwrap()
            .stats
            .clone();
        // ANALYZE sees the true (overridden) NDV, not the stale claim.
        assert!((stats.ndv - 70.0).abs() < 1.0, "ndv = {}", stats.ndv);
        assert!(stats.histogram.is_some());
        // After ANALYZE the AVI join estimate is accurate again.
        let mut qb = QueryBuilder::new(&fresh, "t");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(0));
        let q = qb.build();
        let est = pb_cost_free_estimate(&fresh, &q);
        let actual = d.actual_join_selectivity(&q, 0);
        assert!(
            est / actual < 3.0 && actual / est < 3.0,
            "post-ANALYZE estimate {est} vs actual {actual}"
        );
    }

    /// Selinger join estimate without depending on pb-cost (dev-dep cycle).
    fn pb_cost_free_estimate(cat: &Catalog, q: &QuerySpec) -> f64 {
        let j = &q.joins[0];
        let ndv = |c: pb_catalog::ColumnId| {
            cat.table_by_id(c.table).columns[c.column as usize]
                .stats
                .ndv
        };
        1.0 / ndv(j.left_col).max(ndv(j.right_col)).max(1.0)
    }

    #[test]
    fn correlation_strength_interpolates_and_preserves_other_columns() {
        let cat = tpch::catalog(0.01);
        let ov = |rho: f64| {
            vec![ColumnOverride::CorrelatedWithStrength {
                table: "part".into(),
                column: "p_size".into(),
                with: "p_retailprice".into(),
                rho,
            }]
        };
        let full = Database::generate(&cat, 3, &ov(1.0)).expect("generate");
        let none = Database::generate(&cat, 3, &ov(0.0)).expect("generate");
        let part = cat.table("part").unwrap();
        let price = part.column("p_retailprice").unwrap().id.column as usize;
        let size = part.column("p_size").unwrap().id.column as usize;

        // rho = 1 is the pure monotone copy.
        let pure = Database::generate(
            &cat,
            3,
            &[ColumnOverride::CorrelatedWith {
                table: "part".into(),
                column: "p_size".into(),
                with: "p_retailprice".into(),
            }],
        )
        .expect("generate");
        assert_eq!(
            full.table(part.id).columns[size],
            pure.table(part.id).columns[size]
        );

        // The mixture draws from a column-derived stream and consumes zero
        // draws from the table's main stream — exactly like the pure
        // `CorrelatedWith` override — so every *other* column is
        // bit-identical across all strengths.
        for c in 0..part.columns.len() {
            if c != size {
                assert_eq!(
                    pure.table(part.id).columns[c],
                    none.table(part.id).columns[c],
                    "column {c} disturbed by the override stream"
                );
                assert_eq!(
                    pure.table(part.id).columns[c],
                    full.table(part.id).columns[c],
                    "column {c} disturbed by the override stream"
                );
            }
        }

        // Sample Pearson correlation with the source orders by strength.
        let corr = |d: &Database| {
            let td = d.table(part.id);
            let (xs, ys) = (&td.columns[price], &td.columns[size]);
            let n = xs.len() as f64;
            let (mx, my) = (
                xs.iter().sum::<i64>() as f64 / n,
                ys.iter().sum::<i64>() as f64 / n,
            );
            let cov: f64 = xs
                .iter()
                .zip(ys)
                .map(|(&x, &y)| (x as f64 - mx) * (y as f64 - my))
                .sum();
            let vx: f64 = xs.iter().map(|&x| (x as f64 - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|&y| (y as f64 - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
        };
        let half = Database::generate(&cat, 3, &ov(0.5)).expect("generate");
        assert!(corr(&full) > 0.95, "rho=1: {}", corr(&full));
        assert!(corr(&none).abs() < 0.2, "rho=0: {}", corr(&none));
        let mid = corr(&half);
        assert!(
            mid > corr(&none) + 0.15 && mid < corr(&full) - 0.15,
            "rho=0.5 not between: {mid}"
        );
    }

    #[test]
    fn inequality_join_selectivity_matches_brute_force() {
        let cat = tpch::catalog(0.01);
        let d = Database::generate(&cat, 3, &[]).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "t");
        let p = qb.rel("part");
        let s = qb.rel("supplier");
        qb.ineq_join(
            p,
            "p_size",
            CmpOp::Lt,
            s,
            "s_nationkey",
            SelSpec::ErrorProne(0),
        );
        let q = qb.build();
        let fast = d.actual_join_selectivity(&q, 0);
        let part = cat.table("part").unwrap();
        let supp = cat.table("supplier").unwrap();
        let lcol = &d.table(part.id).columns[part.column("p_size").unwrap().id.column as usize];
        let rcol =
            &d.table(supp.id).columns[supp.column("s_nationkey").unwrap().id.column as usize];
        let brute: u64 = lcol
            .iter()
            .map(|&l| rcol.iter().filter(|&&r| l < r).count() as u64)
            .sum();
        let expect = brute as f64 / (lcol.len() as f64 * rcol.len() as f64);
        assert!((fast - expect).abs() < 1e-12, "{fast} vs {expect}");
    }

    #[test]
    fn correlated_override_tracks_source_column() {
        let cat = tpch::catalog(0.01);
        let ov = vec![ColumnOverride::CorrelatedWith {
            table: "part".into(),
            column: "p_size".into(),
            with: "p_retailprice".into(),
        }];
        let d = Database::generate(&cat, 3, &ov).expect("generate");
        let part = cat.table("part").unwrap();
        let td = d.table(part.id);
        let price = part.column("p_retailprice").unwrap().id.column as usize;
        let size = part.column("p_size").unwrap().id.column as usize;
        // Correlated: ordering by price must order size too.
        for i in 1..200 {
            if td.columns[price][i] >= td.columns[price][i - 1] {
                assert!(td.columns[size][i] >= td.columns[size][i - 1] - 1);
            }
        }
    }
}
