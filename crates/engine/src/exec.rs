//! Volcano-style tuple-at-a-time plan execution with cost charging, budget
//! aborts and node-level instrumentation.
//!
//! This is the *reference* engine: one [`Ctx::settle`] per tuple, row-major
//! intermediates. [`Engine::execute`] runs the vectorized engine in
//! [`crate::vec_exec`], which batches both the data movement and the cost
//! accounting; [`Engine::execute_tuple`] runs this path. Both share the
//! closed-form ledger in [`crate::ledger`] and produce bit-identical
//! [`EngineOutcome`]s, including the abort tuple under finite budgets.

use std::collections::HashMap;

use pb_catalog::ColumnId;
use pb_cost::{CostParams, Parallelism};
use pb_faults::{FaultInjector, PbError};
use pb_plan::{CmpOp, PlanNode, QuerySpec, RelIdx};

use crate::data::{eval_pred, Database};
use crate::ledger::{lin2, lin3, Ctx, Halt};

/// Tuple counters for one plan node (PostgreSQL `Instrumentation` analogue).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Tuples emitted by this node so far.
    pub output_tuples: u64,
    /// Whether the node consumed its entire input (its counters are final).
    pub complete: bool,
}

/// Per-node statistics, indexed by preorder node id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Instrumentation {
    pub nodes: Vec<NodeStats>,
}

impl Instrumentation {
    /// Preorder id of the node `target` inside `root`, if present.
    pub fn node_id(root: &PlanNode, target: &PlanNode) -> Option<usize> {
        let mut id = 0usize;
        let mut found = None;
        root.visit(&mut |n| {
            if std::ptr::eq(n, target) && found.is_none() {
                found = Some(id);
            }
            id += 1;
        });
        found
    }

    /// Observed *raw* selectivity bound for error dimension `dim`
    /// (Section 5.2): find the deepest node applying `dim` and derive the
    /// tightest first-quadrant-safe value its counters support. The caller
    /// maps raw selectivity into axis coordinates
    /// (`SelSpec::to_coordinate`), under which every returned value is a
    /// coordinate lower bound:
    ///
    /// * generic (selection / pk-fk / inequality-join) sites: output count
    ///   over the full input-cardinality product — a lower bound while
    ///   running, exact on completion;
    /// * semi-join sites: match fraction `out / left_in` over the built
    ///   side's cardinality — the fraction only grows as the probe
    ///   proceeds, so this is a raw (and coordinate) lower bound;
    /// * anti-join sites: survivor fraction gives the *upper* bound
    ///   `(1 - out/left_in) / right_out` on the raw match density, which
    ///   the flipped axis (`pivot / s`) turns into a coordinate lower
    ///   bound. With zero survivors there is no finite bound yet — `None`.
    ///
    /// Existential sites need both children complete (the hash set is built
    /// before the probe starts); `None` otherwise.
    pub fn observed_selectivity(
        &self,
        root: &PlanNode,
        query: &QuerySpec,
        db: &Database,
        dim: usize,
    ) -> Option<f64> {
        // Candidates are collected children-first, so the first entry is the
        // deepest node applying `dim`.
        let mut id = 0usize;
        let mut candidates: Vec<DimSite> = Vec::new();
        collect_dim_nodes(root, query, db, dim, &mut id, &mut candidates);
        match *candidates.first()? {
            DimSite::Generic { nid, denom } => {
                let stats = self.nodes.get(nid)?;
                if denom <= 0.0 {
                    return None;
                }
                Some((stats.output_tuples as f64 / denom).min(1.0))
            }
            DimSite::Existential {
                nid,
                left_id,
                right_id,
                anti,
            } => {
                let node = self.nodes.get(nid)?;
                let left = self.nodes.get(left_id)?;
                let right = self.nodes.get(right_id)?;
                if !left.complete || !right.complete {
                    return None;
                }
                let left_in = left.output_tuples as f64;
                let right_out = right.output_tuples as f64;
                if left_in <= 0.0 || right_out <= 0.0 {
                    return None;
                }
                let frac = (node.output_tuples as f64 / left_in).min(1.0);
                if anti {
                    if node.output_tuples == 0 {
                        return None;
                    }
                    Some(((1.0 - frac) / right_out).min(1.0))
                } else {
                    Some((frac / right_out).min(1.0))
                }
            }
        }
    }
}

/// One plan site applying an error dimension, with what its counters mean.
#[derive(Debug, Clone, Copy)]
enum DimSite {
    /// Output count over a statically-known input product.
    Generic { nid: usize, denom: f64 },
    /// Anti/semi-join kernel: interpret `out / left_in` against the built
    /// side's output cardinality.
    Existential {
        nid: usize,
        left_id: usize,
        right_id: usize,
        anti: bool,
    },
}

/// Post-order collection of nodes applying `dim`, with the full input
/// cardinality product for each (base-relation cardinalities × error-free
/// lower selectivities are all statically known).
fn collect_dim_nodes(
    node: &PlanNode,
    query: &QuerySpec,
    db: &Database,
    dim: usize,
    id: &mut usize,
    out: &mut Vec<DimSite>,
) {
    let my_id = *id;
    *id += 1;
    let children = node.children();
    for c in &children {
        collect_dim_nodes(c, query, db, dim, id, out);
    }
    let applies_join = node
        .edges()
        .iter()
        .any(|&e| query.joins[e].selectivity.error_dim() == Some(dim));
    if applies_join {
        if let PlanNode::AntiJoin { left, .. } | PlanNode::SemiJoin { left, .. } = node {
            out.push(DimSite::Existential {
                nid: my_id,
                left_id: my_id + 1,
                right_id: my_id + 1 + left.size(),
                anti: matches!(node, PlanNode::AntiJoin { .. }),
            });
            return;
        }
    }
    let scan_rel: Option<RelIdx> = match node {
        PlanNode::SeqScan { rel }
        | PlanNode::IndexScan { rel, .. }
        | PlanNode::FullIndexScan { rel, .. } => Some(*rel),
        PlanNode::IndexNLJoin { inner_rel, .. } => Some(*inner_rel),
        _ => None,
    };
    let applies_sel = scan_rel.is_some_and(|r| {
        query.relations[r]
            .selections
            .iter()
            .any(|s| s.selectivity.error_dim() == Some(dim))
    });
    if applies_join || applies_sel {
        // Input product: every base relation under (and including) this node.
        let mut denom = 1.0f64;
        let mask = node.rels_mask();
        for r in 0..query.num_relations() {
            if mask & (1 << r) != 0 {
                denom *= db.table(query.relations[r].table).rows as f64;
            }
        }
        out.push(DimSite::Generic { nid: my_id, denom });
    }
}

/// Result of a (possibly budget-limited) engine execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineOutcome {
    Completed {
        rows: usize,
        cost: f64,
        instr: Instrumentation,
    },
    Aborted {
        cost: f64,
        instr: Instrumentation,
    },
    /// An operator faulted (injected fault or malformed plan) after spending
    /// `cost` units. Distinct from [`EngineOutcome::Aborted`]: the budget was
    /// *not* exhausted, the execution died.
    Failed {
        error: PbError,
        cost: f64,
        instr: Instrumentation,
    },
}

impl EngineOutcome {
    pub fn cost(&self) -> f64 {
        match self {
            EngineOutcome::Completed { cost, .. }
            | EngineOutcome::Aborted { cost, .. }
            | EngineOutcome::Failed { cost, .. } => *cost,
        }
    }

    pub fn completed(&self) -> bool {
        matches!(self, EngineOutcome::Completed { .. })
    }

    pub fn error(&self) -> Option<&PbError> {
        match self {
            EngineOutcome::Failed { error, .. } => Some(error),
            _ => None,
        }
    }

    pub fn instr(&self) -> &Instrumentation {
        match self {
            EngineOutcome::Completed { instr, .. }
            | EngineOutcome::Aborted { instr, .. }
            | EngineOutcome::Failed { instr, .. } => instr,
        }
    }
}

/// The execution engine (vectorized by default; see [`Engine::execute`]).
pub struct Engine<'a> {
    pub db: &'a Database,
    pub query: &'a QuerySpec,
    pub params: &'a CostParams,
    /// Worker pool for morsel-driven phases of the vectorized path. The
    /// outcome is bit-identical for every worker count (see
    /// `crate::morsel`); this only changes wall-clock.
    pub par: Parallelism,
    /// Inputs smaller than this many rows run their phase serially even
    /// when workers are available (morsel-dispatch gating, the engine
    /// analogue of `PARALLEL_MIN_GRID`). Tests lower it to exercise the
    /// parallel kernels on small data.
    pub morsel_min: usize,
    /// Cooperative cancellation token, polled by the vectorized path at
    /// batch commits and one-off charges (the tuple reference path ignores
    /// it — its job is bit-identity with uninterrupted runs). `None`
    /// disables polling entirely.
    pub cancel: Option<pb_faults::CancelToken>,
}

/// Materialized intermediate relation: concatenated base-relation blocks.
struct Rel {
    /// Which relations contribute column blocks, in order.
    rels: Vec<RelIdx>,
    rows: Vec<Vec<i64>>,
}

impl<'a> Engine<'a> {
    pub fn new(db: &'a Database, query: &'a QuerySpec, params: &'a CostParams) -> Self {
        Engine {
            db,
            query,
            params,
            par: Parallelism::serial(),
            morsel_min: pb_cost::PARALLEL_MIN_MORSEL_ROWS,
            cancel: None,
        }
    }

    /// Thread a cooperative cancellation token through vectorized
    /// executions. A tripped token halts the run at its next batch commit
    /// with [`pb_faults::PbError::Cancelled`]; checkpoints captured before
    /// the trip survive for resumable re-execution.
    pub fn with_cancel(mut self, token: pb_faults::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Use `par` workers for morsel-driven phases of the vectorized path.
    /// Outcomes are unchanged — only wall-clock.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Override the morsel-dispatch gate (rows below which a phase stays
    /// serial). Intended for tests and benches that need the parallel
    /// kernels to engage on small inputs.
    pub fn with_morsel_threshold(mut self, rows: usize) -> Self {
        self.morsel_min = rows;
        self
    }

    /// Effective parallelism for a phase over `n_rows` items: the engine's
    /// pool, demoted to serial below the morsel gate.
    pub(crate) fn mpar(&self, n_rows: usize) -> Parallelism {
        if n_rows < self.morsel_min {
            Parallelism::serial()
        } else {
            self.par
        }
    }

    /// Execute `plan` with a cost budget (use `f64::INFINITY` to run to
    /// completion unconditionally). Runs the vectorized engine;
    /// [`Engine::execute_tuple`] is the tuple-at-a-time reference path with
    /// an identical observable outcome (cost, rows, instrumentation, abort
    /// point — see `tests/engine_properties.rs`).
    pub fn execute(&self, plan: &PlanNode, budget: f64) -> EngineOutcome {
        self.execute_vectorized(plan, budget)
    }

    /// Vectorized execution with an armed fault injector (chaos campaigns).
    /// With [`FaultInjector::none`] this is exactly [`Engine::execute`].
    pub fn execute_with_faults(
        &self,
        plan: &PlanNode,
        budget: f64,
        faults: &FaultInjector,
    ) -> EngineOutcome {
        self.execute_vectorized_with(plan, budget, faults)
    }

    /// Tuple-at-a-time reference execution.
    pub fn execute_tuple(&self, plan: &PlanNode, budget: f64) -> EngineOutcome {
        self.execute_tuple_with(plan, budget, &FaultInjector::none())
    }

    /// Tuple-at-a-time execution with an armed fault injector.
    pub fn execute_tuple_with(
        &self,
        plan: &PlanNode,
        budget: f64,
        faults: &FaultInjector,
    ) -> EngineOutcome {
        let mut ctx = Ctx {
            spent: 0.0,
            budget,
            instr: vec![NodeStats::default(); plan.size()],
            faults,
            resume: None,
            reused: 0.0,
            cancel: None,
        };
        let mut next_id = 0usize;
        // The root's output is never consumed by another operator, so it is
        // counted and charged but not materialized (large final results
        // would otherwise dominate memory).
        match self.eval(plan, &mut ctx, &mut next_id, false) {
            Ok(_) => {
                let rows = ctx.instr[0].output_tuples as usize;
                EngineOutcome::Completed {
                    rows,
                    cost: ctx.spent,
                    instr: Instrumentation { nodes: ctx.instr },
                }
            }
            Err(Halt::Abort) => EngineOutcome::Aborted {
                cost: ctx.spent,
                instr: Instrumentation { nodes: ctx.instr },
            },
            Err(Halt::Fault(error)) => EngineOutcome::Failed {
                error,
                cost: ctx.spent,
                instr: Instrumentation { nodes: ctx.instr },
            },
        }
    }

    pub(crate) fn ncols(&self, rel: RelIdx) -> usize {
        self.db
            .catalog
            .table_by_id(self.query.relations[rel].table)
            .columns
            .len()
    }

    pub(crate) fn offset(
        &self,
        rels: &[RelIdx],
        rel: RelIdx,
        col: ColumnId,
    ) -> Result<usize, Halt> {
        let mut off = 0;
        for &r in rels {
            if r == rel {
                return Ok(off + col.column as usize);
            }
            off += self.ncols(r);
        }
        Err(Halt::Fault(PbError::MissingEntity {
            kind: "relation".into(),
            name: format!("{rel} not in schema {rels:?}"),
        }))
    }

    /// Evaluate a subtree. With `store == false` the node's own output is
    /// charged and counted but not materialized.
    fn eval(
        &self,
        node: &PlanNode,
        ctx: &mut Ctx<'_>,
        next_id: &mut usize,
        store: bool,
    ) -> Result<Rel, Halt> {
        let my_id = *next_id;
        *next_id += 1;
        let p = self.params;
        match node {
            PlanNode::SeqScan { rel } => {
                let t = self.db.table(self.query.relations[*rel].table);
                let table_meta = self
                    .db
                    .catalog
                    .table_by_id(self.query.relations[*rel].table);
                let preds = &self.query.relations[*rel].selections;
                ctx.charge(table_meta.pages() * p.seq_page)?;
                let base = ctx.spent;
                let row_rate = p.cpu_tuple + preds.len() as f64 * p.cpu_operator;
                let (mut seen, mut emitted) = (0u64, 0u64);
                let mut rows = Vec::new();
                for r in 0..t.rows {
                    seen += 1;
                    ctx.settle(lin2(base, seen, row_rate, emitted, p.emit_tuple))?;
                    if preds
                        .iter()
                        .all(|pr| eval_pred(pr, t.columns[pr.column.column as usize][r]))
                    {
                        emitted += 1;
                        ctx.settle(lin2(base, seen, row_rate, emitted, p.emit_tuple))?;
                        if store {
                            rows.push(t.columns.iter().map(|c| c[r]).collect());
                        }
                        ctx.instr[my_id].output_tuples += 1;
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: vec![*rel],
                    rows,
                })
            }
            PlanNode::IndexScan { rel, sel_idx } => {
                let t = self.db.table(self.query.relations[*rel].table);
                let preds = &self.query.relations[*rel].selections;
                let key_pred = &preds[*sel_idx];
                let Some(ix) = t.indexes.get(&key_pred.column.column) else {
                    return Err(Halt::Fault(PbError::UnindexedColumn(format!(
                        "rel {rel} column {}",
                        key_pred.column.column
                    ))));
                };
                ctx.charge(3.0 * p.random_page)?;
                let base = ctx.spent;
                let entry_rate = p.cpu_index_tuple + p.random_page * p.heap_fetch_factor;
                let range = index_range(ix, key_pred);
                let (mut seen, mut emitted) = (0u64, 0u64);
                let mut rows = Vec::new();
                for &(_, r) in &ix[range] {
                    seen += 1;
                    ctx.settle(lin2(base, seen, entry_rate, emitted, p.emit_tuple))?;
                    let r = r as usize;
                    let ok = preds.iter().enumerate().all(|(i, pr)| {
                        i == *sel_idx || eval_pred(pr, t.columns[pr.column.column as usize][r])
                    });
                    if ok {
                        emitted += 1;
                        ctx.settle(lin2(base, seen, entry_rate, emitted, p.emit_tuple))?;
                        if store {
                            rows.push(t.columns.iter().map(|c| c[r]).collect());
                        }
                        ctx.instr[my_id].output_tuples += 1;
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: vec![*rel],
                    rows,
                })
            }
            PlanNode::FullIndexScan { rel, column } => {
                let t = self.db.table(self.query.relations[*rel].table);
                let preds = &self.query.relations[*rel].selections;
                let Some(ix) = t.indexes.get(&column.column) else {
                    return Err(Halt::Fault(PbError::UnindexedColumn(format!(
                        "rel {rel} column {}",
                        column.column
                    ))));
                };
                ctx.charge((t.rows as f64 / 256.0).max(1.0) * p.seq_page)?;
                let base = ctx.spent;
                let entry_rate = p.cpu_index_tuple
                    + p.random_page * p.heap_fetch_factor
                    + preds.len() as f64 * p.cpu_operator;
                let (mut seen, mut emitted) = (0u64, 0u64);
                let mut rows = Vec::new();
                for &(_, r) in ix {
                    seen += 1;
                    ctx.settle(lin2(base, seen, entry_rate, emitted, p.emit_tuple))?;
                    let r = r as usize;
                    if preds
                        .iter()
                        .all(|pr| eval_pred(pr, t.columns[pr.column.column as usize][r]))
                    {
                        emitted += 1;
                        ctx.settle(lin2(base, seen, entry_rate, emitted, p.emit_tuple))?;
                        if store {
                            rows.push(t.columns.iter().map(|c| c[r]).collect());
                        }
                        ctx.instr[my_id].output_tuples += 1;
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: vec![*rel],
                    rows,
                })
            }
            PlanNode::HashJoin {
                build,
                probe,
                edges,
            } => {
                let b = self.eval(build, ctx, next_id, true)?;
                let pr = self.eval(probe, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (bkey, pkey) = self.key_offsets(&b.rels, &pr.rels, j0)?;
                let base = ctx.spent;
                let build_rate = p.cpu_tuple + p.hash_build;
                let mut table: HashMap<i64, Vec<usize>> = HashMap::new();
                for (i, row) in b.rows.iter().enumerate() {
                    ctx.settle(lin2(base, i as u64 + 1, build_rate, 0, 0.0))?;
                    table.entry(row[bkey]).or_default().push(i);
                }
                let out_rels: Vec<RelIdx> = b.rels.iter().chain(&pr.rels).copied().collect();
                let pbase = ctx.spent;
                let mut emitted = 0u64;
                let mut rows = Vec::new();
                for (i, prow) in pr.rows.iter().enumerate() {
                    ctx.settle(lin2(
                        pbase,
                        i as u64 + 1,
                        p.hash_probe,
                        emitted,
                        p.emit_tuple,
                    ))?;
                    if let Some(bs) = table.get(&prow[pkey]) {
                        for &bi in bs {
                            let joined: Vec<i64> =
                                b.rows[bi].iter().chain(prow.iter()).copied().collect();
                            if self.residual_ok(&out_rels, &joined, &edges[1..])? {
                                emitted += 1;
                                ctx.settle(lin2(
                                    pbase,
                                    i as u64 + 1,
                                    p.hash_probe,
                                    emitted,
                                    p.emit_tuple,
                                ))?;
                                if store {
                                    rows.push(joined);
                                }
                                ctx.instr[my_id].output_tuples += 1;
                            }
                        }
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: out_rels,
                    rows,
                })
            }
            PlanNode::SortMergeJoin {
                left,
                right,
                edges,
                sort_left,
                sort_right,
            } => {
                let mut l = self.eval(left, ctx, next_id, true)?;
                let mut r = self.eval(right, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (lkey, rkey) = self.key_offsets(&l.rels, &r.rels, j0)?;
                // Sort both (an un-flagged input is already ordered, but
                // re-sorting is a no-op for correctness; we charge only for
                // flagged sorts, mirroring the cost model).
                if *sort_left {
                    let n = l.rows.len().max(2) as f64;
                    ctx.charge(n * n.log2() * 2.0 * p.cpu_operator)?;
                }
                if *sort_right {
                    let n = r.rows.len().max(2) as f64;
                    ctx.charge(n * n.log2() * 2.0 * p.cpu_operator)?;
                }
                l.rows.sort_by_key(|row| row[lkey]);
                r.rows.sort_by_key(|row| row[rkey]);
                let out_rels: Vec<RelIdx> = l.rels.iter().chain(&r.rels).copied().collect();
                let base = ctx.spent;
                let step_rate = 2.0 * p.cpu_operator;
                let (mut steps, mut emitted) = (0u64, 0u64);
                let mut rows = Vec::new();
                let (mut i, mut j) = (0usize, 0usize);
                while i < l.rows.len() && j < r.rows.len() {
                    steps += 1;
                    ctx.settle(lin2(base, steps, step_rate, emitted, p.emit_tuple))?;
                    let (a, b) = (l.rows[i][lkey], r.rows[j][rkey]);
                    if a < b {
                        i += 1;
                    } else if a > b {
                        j += 1;
                    } else {
                        // equal group cross product
                        let i_end = l.rows[i..].iter().take_while(|x| x[lkey] == a).count() + i;
                        let j_end = r.rows[j..].iter().take_while(|x| x[rkey] == a).count() + j;
                        for li in i..i_end {
                            for rj in j..j_end {
                                let joined: Vec<i64> = l.rows[li]
                                    .iter()
                                    .chain(r.rows[rj].iter())
                                    .copied()
                                    .collect();
                                if self.residual_ok(&out_rels, &joined, &edges[1..])? {
                                    emitted += 1;
                                    ctx.settle(lin2(
                                        base,
                                        steps,
                                        step_rate,
                                        emitted,
                                        p.emit_tuple,
                                    ))?;
                                    if store {
                                        rows.push(joined);
                                    }
                                    ctx.instr[my_id].output_tuples += 1;
                                }
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: out_rels,
                    rows,
                })
            }
            PlanNode::IndexNLJoin {
                outer,
                inner_rel,
                edges,
            } => {
                let o = self.eval(outer, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let t = self.db.table(self.query.relations[*inner_rel].table);
                let inner_preds = &self.query.relations[*inner_rel].selections;
                // Outer-side key offset and inner lookup column.
                let (okey_rel, okey_col, ikey_col) = if o.rels.contains(&j0.left_rel) {
                    (j0.left_rel, j0.left_col, j0.right_col)
                } else {
                    (j0.right_rel, j0.right_col, j0.left_col)
                };
                let okey = self.offset(&o.rels, okey_rel, okey_col)?;
                let Some(ix) = t.indexes.get(&ikey_col.column) else {
                    return Err(Halt::Fault(PbError::UnindexedColumn(format!(
                        "rel {inner_rel} column {}",
                        ikey_col.column
                    ))));
                };
                let out_rels: Vec<RelIdx> = o.rels.iter().copied().chain([*inner_rel]).collect();
                let base = ctx.spent;
                let entry_rate = p.cpu_index_tuple + p.random_page * p.heap_fetch_factor;
                let (mut looks, mut probed, mut emitted) = (0u64, 0u64, 0u64);
                let mut rows = Vec::new();
                for orow in &o.rows {
                    looks += 1;
                    ctx.settle(lin3(
                        base,
                        looks,
                        p.index_lookup,
                        probed,
                        entry_rate,
                        emitted,
                        p.emit_tuple,
                    ))?;
                    let key = orow[okey];
                    let start = ix.partition_point(|&(v, _)| v < key);
                    for &(v, r) in &ix[start..] {
                        if v != key {
                            break;
                        }
                        probed += 1;
                        ctx.settle(lin3(
                            base,
                            looks,
                            p.index_lookup,
                            probed,
                            entry_rate,
                            emitted,
                            p.emit_tuple,
                        ))?;
                        let r = r as usize;
                        let ok = inner_preds
                            .iter()
                            .all(|pr| eval_pred(pr, t.columns[pr.column.column as usize][r]));
                        if !ok {
                            continue;
                        }
                        let joined: Vec<i64> = orow
                            .iter()
                            .copied()
                            .chain(t.columns.iter().map(|c| c[r]))
                            .collect();
                        if self.residual_ok(&out_rels, &joined, &edges[1..])? {
                            emitted += 1;
                            ctx.settle(lin3(
                                base,
                                looks,
                                p.index_lookup,
                                probed,
                                entry_rate,
                                emitted,
                                p.emit_tuple,
                            ))?;
                            if store {
                                rows.push(joined);
                            }
                            ctx.instr[my_id].output_tuples += 1;
                        }
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: out_rels,
                    rows,
                })
            }
            PlanNode::BlockNLJoin {
                outer,
                inner,
                edges,
            } => {
                let o = self.eval(outer, ctx, next_id, true)?;
                let inn = self.eval(inner, ctx, next_id, true)?;
                let out_rels: Vec<RelIdx> = o.rels.iter().chain(&inn.rels).copied().collect();
                let base = ctx.spent;
                let pair_rate = p.cpu_operator * edges.len().max(1) as f64;
                let (mut pairs, mut emitted) = (0u64, 0u64);
                let mut rows = Vec::new();
                for orow in &o.rows {
                    for irow in &inn.rows {
                        pairs += 1;
                        ctx.settle(lin2(base, pairs, pair_rate, emitted, p.emit_tuple))?;
                        let joined: Vec<i64> = orow.iter().chain(irow.iter()).copied().collect();
                        if self.residual_ok(&out_rels, &joined, edges)? {
                            emitted += 1;
                            ctx.settle(lin2(base, pairs, pair_rate, emitted, p.emit_tuple))?;
                            if store {
                                rows.push(joined);
                            }
                            ctx.instr[my_id].output_tuples += 1;
                        }
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel {
                    rels: out_rels,
                    rows,
                })
            }
            PlanNode::AntiJoin { left, right, edges } => {
                let l = self.eval(left, ctx, next_id, true)?;
                let r = self.eval(right, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (lkey, rkey) = self.key_offsets(&l.rels, &r.rels, j0)?;
                let base = ctx.spent;
                let build_rate = p.cpu_tuple + p.hash_build;
                let mut keys: std::collections::HashSet<i64> = std::collections::HashSet::new();
                for (i, row) in r.rows.iter().enumerate() {
                    ctx.settle(lin2(base, i as u64 + 1, build_rate, 0, 0.0))?;
                    keys.insert(row[rkey]);
                }
                let pbase = ctx.spent;
                let mut emitted = 0u64;
                let mut rows = Vec::new();
                for (i, lrow) in l.rows.iter().enumerate() {
                    ctx.settle(lin2(
                        pbase,
                        i as u64 + 1,
                        p.hash_probe,
                        emitted,
                        p.emit_tuple,
                    ))?;
                    if !keys.contains(&lrow[lkey]) {
                        emitted += 1;
                        ctx.settle(lin2(
                            pbase,
                            i as u64 + 1,
                            p.hash_probe,
                            emitted,
                            p.emit_tuple,
                        ))?;
                        if store {
                            rows.push(lrow.clone());
                        }
                        ctx.instr[my_id].output_tuples += 1;
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel { rels: l.rels, rows })
            }
            PlanNode::SemiJoin { left, right, edges } => {
                // Mirror of the anti-join kernel with the membership test
                // un-negated: keep each left row with at least one match.
                let l = self.eval(left, ctx, next_id, true)?;
                let r = self.eval(right, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (lkey, rkey) = self.key_offsets(&l.rels, &r.rels, j0)?;
                let base = ctx.spent;
                let build_rate = p.cpu_tuple + p.hash_build;
                let mut keys: std::collections::HashSet<i64> = std::collections::HashSet::new();
                for (i, row) in r.rows.iter().enumerate() {
                    ctx.settle(lin2(base, i as u64 + 1, build_rate, 0, 0.0))?;
                    keys.insert(row[rkey]);
                }
                let pbase = ctx.spent;
                let mut emitted = 0u64;
                let mut rows = Vec::new();
                for (i, lrow) in l.rows.iter().enumerate() {
                    ctx.settle(lin2(
                        pbase,
                        i as u64 + 1,
                        p.hash_probe,
                        emitted,
                        p.emit_tuple,
                    ))?;
                    if keys.contains(&lrow[lkey]) {
                        emitted += 1;
                        ctx.settle(lin2(
                            pbase,
                            i as u64 + 1,
                            p.hash_probe,
                            emitted,
                            p.emit_tuple,
                        ))?;
                        if store {
                            rows.push(lrow.clone());
                        }
                        ctx.instr[my_id].output_tuples += 1;
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(Rel { rels: l.rels, rows })
            }
            PlanNode::HashAggregate { input } => {
                let i = self.eval(input, ctx, next_id, true)?;
                let base = ctx.spent;
                let in_rate = p.cpu_tuple + p.hash_build;
                let key_offs: Vec<usize> = self
                    .query
                    .group_by
                    .iter()
                    .map(|&(r, c)| self.offset(&i.rels, r, c))
                    .collect::<Result<_, _>>()?;
                let mut groups: HashMap<Vec<i64>, i64> = HashMap::new();
                for (n, row) in i.rows.iter().enumerate() {
                    ctx.settle(lin2(base, n as u64 + 1, in_rate, 0, 0.0))?;
                    let key: Vec<i64> = key_offs.iter().map(|&c| row[c]).collect();
                    *groups.entry(key).or_insert(0) += 1;
                }
                let gbase = ctx.spent;
                let mut emitted = 0u64;
                let mut rows = Vec::new();
                for (key, count) in groups {
                    emitted += 1;
                    ctx.settle(lin2(gbase, emitted, p.emit_tuple, 0, 0.0))?;
                    if store {
                        let mut out_row = key;
                        out_row.push(count);
                        rows.push(out_row);
                    }
                    ctx.instr[my_id].output_tuples += 1;
                }
                ctx.instr[my_id].complete = true;
                // The aggregate is always the plan root; its synthetic
                // (group keys + count) schema is never consumed by a join.
                Ok(Rel {
                    rels: Vec::new(),
                    rows,
                })
            }
            PlanNode::Spill { input } => {
                // The input's output is counted but never materialized.
                let i = self.eval(input, ctx, next_id, false)?;
                let discarded = ctx.instr[my_id + 1].output_tuples as f64;
                ctx.charge(discarded * p.cpu_tuple)?;
                ctx.instr[my_id].output_tuples = 0;
                ctx.instr[my_id].complete = true;
                // Discard output (pipeline deliberately broken).
                Ok(Rel {
                    rels: i.rels,
                    rows: Vec::new(),
                })
            }
        }
    }

    /// Offsets of the primary join key on each side.
    pub(crate) fn key_offsets(
        &self,
        lrels: &[RelIdx],
        rrels: &[RelIdx],
        j: &pb_plan::JoinPredicate,
    ) -> Result<(usize, usize), Halt> {
        if lrels.contains(&j.left_rel) {
            Ok((
                self.offset(lrels, j.left_rel, j.left_col)?,
                self.offset(rrels, j.right_rel, j.right_col)?,
            ))
        } else {
            Ok((
                self.offset(lrels, j.right_rel, j.right_col)?,
                self.offset(rrels, j.left_rel, j.left_col)?,
            ))
        }
    }

    fn residual_ok(&self, rels: &[RelIdx], row: &[i64], edges: &[usize]) -> Result<bool, Halt> {
        for &e in edges {
            let j = &self.query.joins[e];
            let a = self.offset(rels, j.left_rel, j.left_col)?;
            let b = self.offset(rels, j.right_rel, j.right_col)?;
            let pass = match j.op {
                CmpOp::Lt => row[a] < row[b],
                CmpOp::Gt => row[a] > row[b],
                CmpOp::Eq | CmpOp::Between => row[a] == row[b],
            };
            if !pass {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

pub(crate) fn index_range(
    ix: &[(i64, u32)],
    pred: &pb_plan::SelectionPredicate,
) -> std::ops::Range<usize> {
    match pred.op {
        CmpOp::Lt => 0..ix.partition_point(|&(v, _)| (v as f64) < pred.constant),
        CmpOp::Gt => ix.partition_point(|&(v, _)| (v as f64) <= pred.constant)..ix.len(),
        CmpOp::Eq => {
            let lo = ix.partition_point(|&(v, _)| (v as f64) < pred.constant);
            let hi = ix.partition_point(|&(v, _)| (v as f64) <= pred.constant);
            lo..hi
        }
        CmpOp::Between => {
            let lo = ix.partition_point(|&(v, _)| (v as f64) < pred.constant2);
            let hi = ix.partition_point(|&(v, _)| (v as f64) <= pred.constant);
            lo..hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use pb_catalog::tpch;
    use pb_cost::CostModel;
    use pb_plan::{QueryBuilder, SelSpec};

    fn setup() -> (Database, QuerySpec, CostModel) {
        let cat = tpch::catalog(0.01);
        let db = Database::generate(&cat, 42, &[]).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "eq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1200.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        (db, qb.build(), CostModel::postgresish())
    }

    fn hj_plan() -> PlanNode {
        PlanNode::HashJoin {
            build: Box::new(PlanNode::SeqScan { rel: 0 }),
            probe: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
        }
    }

    #[test]
    fn join_algorithms_agree_on_result_cardinality() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let hj = eng.execute(&hj_plan(), f64::INFINITY);
        let smj = eng.execute(
            &PlanNode::SortMergeJoin {
                left: Box::new(PlanNode::SeqScan { rel: 0 }),
                right: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
                sort_left: true,
                sort_right: true,
            },
            f64::INFINITY,
        );
        let inl = eng.execute(
            &PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                inner_rel: 1,
                edges: vec![0],
            },
            f64::INFINITY,
        );
        let (
            EngineOutcome::Completed { rows: r1, .. },
            EngineOutcome::Completed { rows: r2, .. },
            EngineOutcome::Completed { rows: r3, .. },
        ) = (hj, smj, inl)
        else {
            panic!("all executions should complete without budget");
        };
        assert_eq!(r1, r2, "HJ vs SMJ");
        assert_eq!(r1, r3, "HJ vs INLJ");
        assert!(r1 > 0, "join should produce rows");
    }

    #[test]
    fn result_matches_brute_force() {
        let (db, q, _) = setup();
        // Brute force over raw columns.
        let part = db.table(q.relations[0].table);
        let line = db.table(q.relations[1].table);
        let price_col = 1; // p_retailprice
        let pkey = 0; // p_partkey
        let lpart = 1; // l_partkey
        let mut freq: HashMap<i64, u64> = HashMap::new();
        for r in 0..part.rows {
            if (part.columns[price_col][r] as f64) < 1200.0 {
                *freq.entry(part.columns[pkey][r]).or_insert(0) += 1;
            }
        }
        let expect: u64 = line.columns[lpart]
            .iter()
            .map(|v| freq.get(v).copied().unwrap_or(0))
            .sum();
        let m = CostModel::postgresish();
        let eng = Engine::new(&db, &q, &m.p);
        let EngineOutcome::Completed { rows, .. } = eng.execute(&hj_plan(), f64::INFINITY) else {
            panic!("should complete");
        };
        assert_eq!(rows as u64, expect);
    }

    #[test]
    fn budget_abort_happens_and_charges_exactly_budget() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let full = eng.execute(&hj_plan(), f64::INFINITY).cost();
        let out = eng.execute(&hj_plan(), full * 0.3);
        assert!(!out.completed());
        assert!((out.cost() - full * 0.3).abs() < 1e-9 * full);
    }

    #[test]
    fn tuple_and_vectorized_agree_on_basic_plan() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let full_t = eng.execute_tuple(&hj_plan(), f64::INFINITY);
        let full_v = eng.execute_vectorized(&hj_plan(), f64::INFINITY);
        assert_eq!(full_t, full_v);
        for frac in [0.9, 0.5, 0.2, 0.05, 0.001] {
            let budget = full_t.cost() * frac;
            assert_eq!(
                eng.execute_tuple(&hj_plan(), budget),
                eng.execute_vectorized(&hj_plan(), budget),
                "divergence at budget fraction {frac}"
            );
        }
    }

    #[test]
    fn merge_join_respects_store_flag() {
        // Regression: SortMergeJoin used to push joined rows even with
        // store == false, materializing the full result at the plan root.
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::SortMergeJoin {
            left: Box::new(PlanNode::SeqScan { rel: 0 }),
            right: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
            sort_left: true,
            sort_right: true,
        };
        let inert = FaultInjector::none();
        let mut ctx = Ctx {
            spent: 0.0,
            budget: f64::INFINITY,
            instr: vec![NodeStats::default(); plan.size()],
            faults: &inert,
            resume: None,
            reused: 0.0,
            cancel: None,
        };
        let mut next_id = 0usize;
        let rel = eng.eval(&plan, &mut ctx, &mut next_id, false).ok().unwrap();
        assert!(
            rel.rows.is_empty(),
            "store == false must not materialize merge-join output ({} rows kept)",
            rel.rows.len()
        );
        assert!(ctx.instr[0].output_tuples > 0, "rows must still be counted");
    }

    #[test]
    fn instrumentation_counts_are_plausible() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let out = eng.execute(&hj_plan(), f64::INFINITY);
        let instr = out.instr();
        // node 0 = HJ, node 1 = scan(part), node 2 = scan(lineitem)
        assert!(instr.nodes[1].complete && instr.nodes[2].complete);
        assert_eq!(instr.nodes[2].output_tuples, 60_000);
        assert!(instr.nodes[1].output_tuples < 2000);
        assert!(instr.nodes[0].output_tuples > 0);
    }

    #[test]
    fn observed_selectivity_is_lower_bound_and_exact_on_completion() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = hj_plan();
        let full = eng.execute(&plan, f64::INFINITY);
        let s_true = db.actual_join_selectivity(&q, 0)
            * db.actual_selection_selectivity(&q.relations[0].selections[0]);
        let s_obs = full
            .instr()
            .observed_selectivity(&plan, &q, &db, 1)
            .unwrap();
        // Join node output / (|part| · |lineitem|) ≈ s_join · s_selection.
        // (Not exactly equal: the per-key match density over the *selected*
        // parts differs from the overall density by finite-sample noise.)
        assert!(
            (s_obs - s_true).abs() < 0.02 * s_true,
            "obs {s_obs} vs true {s_true}"
        );
        // Partial execution observes a lower bound.
        let partial = eng.execute(&plan, full.cost() * 0.6);
        let s_part = partial
            .instr()
            .observed_selectivity(&plan, &q, &db, 1)
            .unwrap_or(0.0);
        assert!(s_part <= s_obs * (1.0 + 1e-9));
    }

    #[test]
    fn hash_aggregate_counts_groups() {
        let (db, _, m) = setup();
        let cat = db.catalog.clone();
        let mut qb = pb_plan::QueryBuilder::new(&cat, "agg");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.join(
            p,
            "p_partkey",
            l,
            "l_partkey",
            pb_plan::SelSpec::ErrorProne(0),
        );
        qb.group_by(p, "p_brand");
        let q = qb.build();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::HashAggregate {
            input: Box::new(PlanNode::HashJoin {
                build: Box::new(PlanNode::SeqScan { rel: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            }),
        };
        let EngineOutcome::Completed { rows, .. } = eng.execute(&plan, f64::INFINITY) else {
            panic!("aggregate should complete");
        };
        // Group count = distinct p_brand values among joined rows; every
        // part key matches (~30 lineitems), so all 25 brands appear.
        assert_eq!(rows, 25);
    }

    #[test]
    fn anti_join_matches_brute_force() {
        let (db, q0, m) = setup();
        // Rebuild the query with an anti edge: part rows with no lineitem.
        let cat = db.catalog.clone();
        let mut qb = pb_plan::QueryBuilder::new(&cat, "anti");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        let o = qb.rel("orders");
        qb.join(
            p,
            "p_partkey",
            o,
            "o_custkey",
            pb_plan::SelSpec::Fixed(1e-4),
        );
        qb.anti_join(
            p,
            "p_partkey",
            l,
            "l_partkey",
            pb_plan::SelSpec::ErrorProne(0),
        );
        let q = qb.build();
        let _ = q0;
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::AntiJoin {
            left: Box::new(PlanNode::HashJoin {
                build: Box::new(PlanNode::SeqScan { rel: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 2 }),
                edges: vec![0],
            }),
            right: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![1],
        };
        let EngineOutcome::Completed { rows, .. } = eng.execute(&plan, f64::INFINITY) else {
            panic!("anti join should complete");
        };
        // Brute force: (part ⋈ orders on p_partkey = o_custkey) rows whose
        // p_partkey has no lineitem match.
        let part = db.table(q.relations[0].table);
        let line = db.table(q.relations[1].table);
        let orders = db.table(q.relations[2].table);
        let lkeys: std::collections::HashSet<i64> = line.columns[1].iter().copied().collect();
        let mut ofreq: HashMap<i64, u64> = HashMap::new();
        for &v in &orders.columns[1] {
            *ofreq.entry(v).or_insert(0) += 1;
        }
        let expect: u64 = part.columns[0]
            .iter()
            .filter(|&&k| !lkeys.contains(&k))
            .map(|&k| ofreq.get(&k).copied().unwrap_or(0))
            .sum();
        assert_eq!(rows as u64, expect);
    }

    #[test]
    fn spill_discards_rows_but_counts_them() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::Spill {
            input: Box::new(hj_plan()),
        };
        let EngineOutcome::Completed { rows, instr, .. } = eng.execute(&plan, f64::INFINITY) else {
            panic!("should complete");
        };
        assert_eq!(rows, 0, "spill discards its output");
        // The inner hash join still counted its tuples.
        assert!(instr.nodes[1].output_tuples > 0);
    }

    #[test]
    fn engine_cost_tracks_cost_model_within_model_error() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = hj_plan();
        let engine_cost = eng.execute(&plan, f64::INFINITY).cost();
        // Model the same plan at the *actual* selectivities.
        let s0 = db.actual_selection_selectivity(&q.relations[0].selections[0]);
        let s1 = db.actual_join_selectivity(&q, 0);
        let cat = db.catalog.clone();
        let coster = pb_cost::Coster::new(&cat, &q, &m);
        let modeled = coster.plan_cost(&plan, &[s0, s1]);
        let ratio = engine_cost / modeled;
        assert!(
            (0.3..3.0).contains(&ratio),
            "engine and model disagree wildly: {ratio} ({engine_cost} vs {modeled})"
        );
    }
}
