//! Vectorized columnar execution engine.
//!
//! Intermediates are column-major [`VRel`] blocks; predicate evaluation,
//! hash-join build/probe, merge-join group expansion and index-NL lookups
//! run as batch kernels over whole columns, producing selection vectors of
//! qualifying row ids that are gathered into output columns at batch
//! granularity. Cost is charged per batch: each operator phase is linear in
//! its counters, so the batch-end ledger value is the closed form
//! [`lin2`]/[`lin3`] of the final counters — bit-identical to the reference
//! engine's last per-tuple settle (see `crate::ledger` for the argument).
//!
//! Budget aborts are exact: a batch whose end value stays within budget
//! cannot have crossed it at any interior tuple (monotonicity), and a batch
//! whose end value exceeds the budget is replayed tuple-at-a-time from the
//! batch start (merge join: from the last checkpoint), reproducing the
//! reference engine's abort tuple, instrumentation and clamped cost down to
//! the bit.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

use pb_faults::{FaultInjector, PbError};
use pb_plan::{CmpOp, PlanNode, RelIdx, SelectionPredicate};

use crate::data::eval_pred;
use crate::exec::{index_range, Engine, EngineOutcome, Instrumentation, NodeStats};
use crate::ledger::{lin2, lin3, replay_anomaly, Ctx, Halt, BATCH};
use crate::morsel::{
    charge_linear, drive_batches, drive_items, par_group_counts, par_key_set, par_stable_argsort,
    replay_rows, JoinTable, LinPhase,
};

/// Multiply–xorshift hasher for the vectorized engine's internal hash
/// tables. Join/aggregate tables are private state — only the *outcome*
/// must match the reference engine, which uses SipHash — so the batch
/// kernels get to trade DoS resistance for raw probe throughput.
#[derive(Default)]
pub(crate) struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
pub(crate) type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// Columnar intermediate: one `Vec<i64>` per physical column of the
/// concatenated base-relation blocks. With `store == false` (plan root,
/// spill input) only `rels` is meaningful — rows are counted, not kept.
#[derive(Clone)]
struct VRel {
    rels: Vec<RelIdx>,
    cols: Vec<Vec<i64>>,
    len: usize,
}

/// One completed-subtree checkpoint: the materialized intermediate, the
/// ledger endpoint and the subtree's instrumentation slice, all captured at
/// the subtree boundary. `checksum` guards integrity — a corrupted snapshot
/// fails validation at lookup and the subtree re-executes from scratch.
#[derive(Clone)]
struct Snapshot {
    spent_after: f64,
    vrel: VRel,
    stats: Vec<NodeStats>,
    checksum: u64,
}

fn snapshot_checksum(spent_after: f64, vrel: &VRel, stats: &[NodeStats]) -> u64 {
    use std::hash::Hasher;
    let mut h = FastHasher::default();
    h.write_u64(spent_after.to_bits());
    h.write_usize(vrel.len);
    h.write_usize(vrel.rels.len());
    for &r in &vrel.rels {
        h.write_usize(r);
    }
    for col in &vrel.cols {
        h.write_usize(col.len());
        for &v in col {
            h.write_i64(v);
        }
    }
    for s in stats {
        h.write_u64(s.output_tuples);
        h.write_u64(u64::from(s.complete));
    }
    h.finish()
}

/// Checkpoint book for resumable vectorized executions.
///
/// Keyed by `(subtree fingerprint, ledger value at subtree entry, store
/// flag)`: a hit means the exact same subtree previously ran to completion
/// from the exact same ledger state, so fast-forwarding the ledger to the
/// recorded endpoint and grafting the materialized intermediate is
/// bit-identical to re-executing it — same `spent` bits, same
/// instrumentation, same columns. Keying on the entry value is what makes
/// both reuse modes fall out of one mechanism: the *same* plan re-run at
/// the next contour budget hits every completed prefix in turn (each
/// subtree re-enters at the identical ledger value), and a *different*
/// plan sharing a completed join-subtree prefix grafts it because a shared
/// first-executed prefix starts from the same ledger value too.
///
/// A hit additionally requires the recorded endpoint to fit the current
/// budget (the closed-form ledger values inside a subtree are weakly
/// monotone, so endpoint ≤ budget guarantees a restart would complete the
/// subtree without aborting) and the snapshot to pass its checksum
/// (corrupt checkpoints fall back to restart — never a double charge).
#[derive(Default)]
pub struct ResumeBook {
    entries: FastMap<(u64, u64, bool), Snapshot>,
    /// Last-use tick per entry, for LRU eviction under the byte cap.
    stamps: FastMap<(u64, u64, bool), u64>,
    tick: u64,
    /// Approximate retained bytes across all snapshots.
    bytes: usize,
    /// Byte budget for retained snapshots; `0` means unbounded. A long-lived
    /// server sets this so books cannot grow without bound.
    byte_cap: usize,
    evictions: u64,
    hits: u64,
}

/// Approximate heap footprint of one snapshot: the materialized columns
/// dominate; stats and fixed overhead are charged flatly.
fn snapshot_bytes(s: &Snapshot) -> usize {
    let cols: usize = s.vrel.cols.iter().map(|c| c.len() * 8).sum();
    cols + s.vrel.rels.len() * 8 + s.stats.len() * 24 + 128
}

impl ResumeBook {
    pub fn new() -> Self {
        Self::default()
    }

    /// A book whose retained snapshots are bounded by `cap` bytes
    /// (approximate), evicting least-recently-used checkpoints when
    /// exceeded. Eviction only ever costs re-execution — a missing
    /// checkpoint falls back to restart semantics, never a wrong answer
    /// (see `tests/resume_eviction.rs`).
    pub fn with_byte_cap(cap: usize) -> Self {
        ResumeBook {
            byte_cap: cap,
            ..Self::default()
        }
    }

    /// Set or change the byte cap (`0` = unbounded); evicts immediately if
    /// the current contents exceed the new cap.
    pub fn set_byte_cap(&mut self, cap: usize) {
        self.byte_cap = cap;
        self.evict_over_cap();
    }

    /// Number of retained subtree checkpoints.
    pub fn checkpoints(&self) -> usize {
        self.entries.len()
    }

    /// Number of subtree fast-forwards served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Approximate bytes currently retained.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Checkpoints evicted to stay under the byte cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Chaos hook: invalidate every checkpoint's integrity checksum.
    /// Subsequent lookups fail validation and re-execute from scratch,
    /// re-capturing healthy snapshots as they complete.
    pub fn corrupt_all(&mut self) {
        for snap in self.entries.values_mut() {
            snap.checksum ^= 0x5EED_BAD0_DEAD_BEEF;
        }
    }

    fn lookup(&mut self, key: &(u64, u64, bool), budget: f64) -> Option<Snapshot> {
        let snap = self.entries.get(key)?;
        if snap.spent_after > budget
            || snapshot_checksum(snap.spent_after, &snap.vrel, &snap.stats) != snap.checksum
        {
            return None;
        }
        self.hits += 1;
        self.tick += 1;
        self.stamps.insert(*key, self.tick);
        Some(snap.clone())
    }

    fn insert(&mut self, key: (u64, u64, bool), snap: Snapshot) {
        self.bytes += snapshot_bytes(&snap);
        if let Some(old) = self.entries.insert(key, snap) {
            self.bytes -= snapshot_bytes(&old);
        }
        self.tick += 1;
        self.stamps.insert(key, self.tick);
        self.evict_over_cap();
    }

    /// Evict least-recently-used snapshots until under the byte cap. The
    /// cap is hard: even the just-inserted snapshot goes if it alone
    /// exceeds it (the book then simply stops accelerating that subtree).
    fn evict_over_cap(&mut self) {
        if self.byte_cap == 0 {
            return;
        }
        while self.bytes > self.byte_cap && !self.entries.is_empty() {
            let Some((&key, _)) = self.stamps.iter().min_by_key(|(_, &t)| t) else {
                break;
            };
            if let Some(old) = self.entries.remove(&key) {
                self.bytes -= snapshot_bytes(&old);
            }
            self.stamps.remove(&key);
            self.evictions += 1;
        }
    }
}

/// A residual join edge pre-resolved to (side, column) coordinates so the
/// probe kernels never re-derive offsets per tuple. `a` is always the
/// predicate's *left* column, so inequality ops keep their orientation.
struct ResCheck {
    a_left: bool,
    a: usize,
    b_left: bool,
    b: usize,
    op: CmpOp,
}

/// Does the (left row `li`, right row `ri`) pair satisfy every residual
/// join edge (equality or inequality, per its declared op)?
fn res_pass(
    res: &[ResCheck],
    lcols: &[Vec<i64>],
    li: usize,
    rcols: &[Vec<i64>],
    ri: usize,
) -> bool {
    res.iter().all(|rc| {
        let va = if rc.a_left {
            lcols[rc.a][li]
        } else {
            rcols[rc.a][ri]
        };
        let vb = if rc.b_left {
            lcols[rc.b][li]
        } else {
            rcols[rc.b][ri]
        };
        match rc.op {
            CmpOp::Lt => va < vb,
            CmpOp::Gt => va > vb,
            CmpOp::Eq | CmpOp::Between => va == vb,
        }
    })
}

/// Evaluate all predicates over a row range, producing a selection vector
/// of qualifying row ids. The first predicate scans its column densely;
/// the rest refine the (usually much smaller) selection in place.
fn filter_batch(
    preds: &[SelectionPredicate],
    cols: &[Vec<i64>],
    lo: usize,
    hi: usize,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    match preds.split_first() {
        None => sel.extend(lo as u32..hi as u32),
        Some((first, rest)) => {
            let col = &cols[first.column.column as usize];
            for (off, &v) in col[lo..hi].iter().enumerate() {
                if eval_pred(first, v) {
                    sel.push((lo + off) as u32);
                }
            }
            for pr in rest {
                let col = &cols[pr.column.column as usize];
                sel.retain(|&r| eval_pred(pr, col[r as usize]));
            }
        }
    }
}

/// Append the selected rows of every source column to the output columns.
fn gather(src: &[Vec<i64>], sel: &[u32], out: &mut [Vec<i64>]) {
    for (c, o) in src.iter().zip(out.iter_mut()) {
        o.extend(sel.iter().map(|&r| c[r as usize]));
    }
}

impl Engine<'_> {
    /// Vectorized execution (the default behind [`Engine::execute`]).
    pub fn execute_vectorized(&self, plan: &PlanNode, budget: f64) -> EngineOutcome {
        self.execute_vectorized_with(plan, budget, &FaultInjector::none())
    }

    /// Vectorized execution with an armed fault injector.
    pub fn execute_vectorized_with(
        &self,
        plan: &PlanNode,
        budget: f64,
        faults: &FaultInjector,
    ) -> EngineOutcome {
        self.vec_run(plan, budget, faults, None).0
    }

    /// Resumable vectorized execution: the outcome — cost bits, rows,
    /// instrumentation, abort point — is bit-identical to
    /// [`Engine::execute`] at the same budget, but subtrees checkpointed in
    /// `book` by earlier executions are fast-forwarded instead of
    /// re-executed. Returns the outcome plus the cost units reused; the
    /// reused units are *included* in the outcome's cost (restart
    /// accounting), so the caller charges `cost − reused` for the work
    /// actually performed. Checkpoints never inject faults, so this path
    /// always runs with an inert injector.
    pub fn execute_resumable(
        &self,
        plan: &PlanNode,
        budget: f64,
        book: &mut ResumeBook,
    ) -> (EngineOutcome, f64) {
        let inert = FaultInjector::none();
        self.vec_run(plan, budget, &inert, Some(book))
    }

    fn vec_run<'f>(
        &self,
        plan: &PlanNode,
        budget: f64,
        faults: &'f FaultInjector,
        resume: Option<&'f mut ResumeBook>,
    ) -> (EngineOutcome, f64) {
        let mut ctx = Ctx {
            spent: 0.0,
            budget,
            instr: vec![NodeStats::default(); plan.size()],
            faults,
            resume,
            reused: 0.0,
            cancel: self.cancel.as_ref(),
        };
        let mut next_id = 0usize;
        let res = self.veval(plan, &mut ctx, &mut next_id, false);
        let reused = ctx.reused;
        let outcome = match res {
            Ok(_) => {
                let rows = ctx.instr[0].output_tuples as usize;
                EngineOutcome::Completed {
                    rows,
                    cost: ctx.spent,
                    instr: Instrumentation { nodes: ctx.instr },
                }
            }
            Err(Halt::Abort) => EngineOutcome::Aborted {
                cost: ctx.spent,
                instr: Instrumentation { nodes: ctx.instr },
            },
            Err(Halt::Fault(error)) => EngineOutcome::Failed {
                error,
                cost: ctx.spent,
                instr: Instrumentation { nodes: ctx.instr },
            },
        };
        (outcome, reused)
    }

    fn resolve_residuals(
        &self,
        out_rels: &[RelIdx],
        lw: usize,
        edges: &[usize],
    ) -> Result<Vec<ResCheck>, Halt> {
        edges
            .iter()
            .map(|&e| {
                let j = &self.query.joins[e];
                let a = self.offset(out_rels, j.left_rel, j.left_col)?;
                let b = self.offset(out_rels, j.right_rel, j.right_col)?;
                Ok(ResCheck {
                    a_left: a < lw,
                    a: if a < lw { a } else { a - lw },
                    b_left: b < lw,
                    b: if b < lw { b } else { b - lw },
                    op: j.op,
                })
            })
            .collect()
    }

    /// Batched index-entry scan shared by `IndexScan` and `FullIndexScan`:
    /// walk `entries`, keep rows passing `pass`, settle once per batch.
    #[allow(clippy::too_many_arguments)]
    fn ventry_scan(
        &self,
        ctx: &mut Ctx<'_>,
        my_id: usize,
        entries: &[(i64, u32)],
        pass: &(dyn Fn(usize) -> bool + Sync),
        source: &[Vec<i64>],
        entry_rate: f64,
        store: bool,
    ) -> Result<(Vec<Vec<i64>>, u64), Halt> {
        let p = self.params;
        let base = ctx.spent;
        let mut cols = if store {
            vec![Vec::new(); source.len()]
        } else {
            Vec::new()
        };
        let compute = |lo: usize, hi: usize| -> (u64, Vec<Vec<i64>>) {
            let mut sel: Vec<u32> = Vec::with_capacity(hi - lo);
            for &(_, r) in &entries[lo..hi] {
                if pass(r as usize) {
                    sel.push(r);
                }
            }
            let k = sel.len() as u64;
            let data = if store {
                let mut d = vec![Vec::with_capacity(sel.len()); source.len()];
                gather(source, &sel, &mut d);
                d
            } else {
                Vec::new()
            };
            (k, data)
        };
        let par = self.mpar(entries.len());
        let ph = LinPhase {
            base,
            item_rate: entry_rate,
            emit_rate: p.emit_tuple,
        };
        let emitted = drive_batches(
            par,
            ctx,
            Some(my_id),
            entries.len(),
            &ph,
            compute,
            |data| {
                for (o, d) in cols.iter_mut().zip(data) {
                    o.extend(d);
                }
            },
            |ctx, lo, hi, emitted| {
                replay_rows(par, ctx, my_id, lo, hi, emitted, &ph, |i| {
                    u64::from(pass(entries[i].1 as usize))
                })
            },
        )?;
        ctx.instr[my_id].complete = true;
        Ok((cols, emitted))
    }

    /// Tuple-exact merge-join replay from the last settled checkpoint.
    /// Only called when the checkpoint's ledger value exceeds the budget,
    /// so the replay always aborts.
    #[allow(clippy::too_many_arguments)]
    fn smj_replay(
        &self,
        ctx: &mut Ctx<'_>,
        my_id: usize,
        base: f64,
        step_rate: f64,
        lk: &[i64],
        rk: &[i64],
        lperm: &[u32],
        rperm: &[u32],
        lcols: &[Vec<i64>],
        rcols: &[Vec<i64>],
        residuals: &[ResCheck],
        mut i: usize,
        mut j: usize,
        mut steps: u64,
        mut emitted: u64,
    ) -> Halt {
        let p = self.params;
        ctx.instr[my_id].output_tuples = emitted;
        while i < lk.len() && j < rk.len() {
            steps += 1;
            if let Err(h) = ctx.settle(lin2(base, steps, step_rate, emitted, p.emit_tuple)) {
                return h;
            }
            let (a, b) = (lk[i], rk[j]);
            if a < b {
                i += 1;
            } else if a > b {
                j += 1;
            } else {
                let i_end = i + lk[i..].iter().take_while(|&&x| x == a).count();
                let j_end = j + rk[j..].iter().take_while(|&&x| x == a).count();
                for &lp in &lperm[i..i_end] {
                    for &rp in &rperm[j..j_end] {
                        if res_pass(residuals, lcols, lp as usize, rcols, rp as usize) {
                            emitted += 1;
                            if let Err(h) =
                                ctx.settle(lin2(base, steps, step_rate, emitted, p.emit_tuple))
                            {
                                return h;
                            }
                            ctx.instr[my_id].output_tuples += 1;
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
        replay_anomaly()
    }

    /// Evaluate a subtree vectorized, consulting the checkpoint book when
    /// one is installed: a validated hit fast-forwards the ledger to the
    /// recorded endpoint and grafts the materialized intermediate; a miss
    /// runs [`Engine::veval_inner`] and checkpoints the subtree if it
    /// completes. With no book (or an armed injector) this is exactly
    /// `veval_inner` — the plain paths stay bit-identical.
    fn veval(
        &self,
        node: &PlanNode,
        ctx: &mut Ctx<'_>,
        next_id: &mut usize,
        store: bool,
    ) -> Result<VRel, Halt> {
        if ctx.resume.is_none() || ctx.faults.is_active() {
            return self.veval_inner(node, ctx, next_id, store);
        }
        let my_id = *next_id;
        let size = node.size();
        let key = (node.fingerprint().0, ctx.spent.to_bits(), store);
        let budget = ctx.budget;
        let hit = ctx
            .resume
            .as_deref_mut()
            .and_then(|book| book.lookup(&key, budget));
        if let Some(snap) = hit {
            ctx.reused += snap.spent_after - ctx.spent;
            ctx.spent = snap.spent_after;
            ctx.instr[my_id..my_id + size].clone_from_slice(&snap.stats);
            *next_id = my_id + size;
            return Ok(snap.vrel);
        }
        let out = self.veval_inner(node, ctx, next_id, store)?;
        if ctx.instr[my_id].complete {
            let stats = ctx.instr[my_id..my_id + size].to_vec();
            let checksum = snapshot_checksum(ctx.spent, &out, &stats);
            if let Some(book) = ctx.resume.as_deref_mut() {
                book.insert(
                    key,
                    Snapshot {
                        spent_after: ctx.spent,
                        vrel: out.clone(),
                        stats,
                        checksum,
                    },
                );
            }
        }
        Ok(out)
    }

    /// Evaluate a subtree vectorized. Mirrors `Engine::eval` operator by
    /// operator; every phase settles via the same closed forms.
    fn veval_inner(
        &self,
        node: &PlanNode,
        ctx: &mut Ctx<'_>,
        next_id: &mut usize,
        store: bool,
    ) -> Result<VRel, Halt> {
        let my_id = *next_id;
        *next_id += 1;
        let p = self.params;
        match node {
            PlanNode::SeqScan { rel } => {
                let t = self.db.table(self.query.relations[*rel].table);
                let table_meta = self
                    .db
                    .catalog
                    .table_by_id(self.query.relations[*rel].table);
                let preds = &self.query.relations[*rel].selections;
                ctx.charge(table_meta.pages() * p.seq_page)?;
                let base = ctx.spent;
                let row_rate = p.cpu_tuple + preds.len() as f64 * p.cpu_operator;
                let mut cols = if store {
                    vec![Vec::new(); t.columns.len()]
                } else {
                    Vec::new()
                };
                // Dense fast path: no predicates means the whole batch
                // qualifies and storing is a straight slice copy.
                let dense = preds.is_empty();
                let compute = |lo: usize, hi: usize| -> (u64, Vec<Vec<i64>>) {
                    if dense {
                        let data = if store {
                            t.columns.iter().map(|c| c[lo..hi].to_vec()).collect()
                        } else {
                            Vec::new()
                        };
                        ((hi - lo) as u64, data)
                    } else {
                        let mut sel: Vec<u32> = Vec::with_capacity(hi - lo);
                        filter_batch(preds, &t.columns, lo, hi, &mut sel);
                        let k = sel.len() as u64;
                        let data = if store {
                            let mut d = vec![Vec::with_capacity(sel.len()); t.columns.len()];
                            gather(&t.columns, &sel, &mut d);
                            d
                        } else {
                            Vec::new()
                        };
                        (k, data)
                    }
                };
                let par = self.mpar(t.rows);
                let ph = LinPhase {
                    base,
                    item_rate: row_rate,
                    emit_rate: p.emit_tuple,
                };
                let emitted =
                    drive_batches(
                        par,
                        ctx,
                        Some(my_id),
                        t.rows,
                        &ph,
                        compute,
                        |data| {
                            for (o, d) in cols.iter_mut().zip(data) {
                                o.extend(d);
                            }
                        },
                        |ctx, lo, hi, emitted| {
                            replay_rows(par, ctx, my_id, lo, hi, emitted, &ph, |r| {
                                u64::from(preds.iter().all(|pr| {
                                    eval_pred(pr, t.columns[pr.column.column as usize][r])
                                }))
                            })
                        },
                    )?;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: vec![*rel],
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::IndexScan { rel, sel_idx } => {
                let t = self.db.table(self.query.relations[*rel].table);
                let preds = &self.query.relations[*rel].selections;
                let key_pred = &preds[*sel_idx];
                let Some(ix) = t.indexes.get(&key_pred.column.column) else {
                    return Err(Halt::Fault(PbError::UnindexedColumn(format!(
                        "rel {rel} column {}",
                        key_pred.column.column
                    ))));
                };
                ctx.charge(3.0 * p.random_page)?;
                let entry_rate = p.cpu_index_tuple + p.random_page * p.heap_fetch_factor;
                let range = index_range(ix, key_pred);
                let pass = |r: usize| {
                    preds.iter().enumerate().all(|(i, pr)| {
                        i == *sel_idx || eval_pred(pr, t.columns[pr.column.column as usize][r])
                    })
                };
                let (cols, emitted) =
                    self.ventry_scan(ctx, my_id, &ix[range], &pass, &t.columns, entry_rate, store)?;
                Ok(VRel {
                    rels: vec![*rel],
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::FullIndexScan { rel, column } => {
                let t = self.db.table(self.query.relations[*rel].table);
                let preds = &self.query.relations[*rel].selections;
                let Some(ix) = t.indexes.get(&column.column) else {
                    return Err(Halt::Fault(PbError::UnindexedColumn(format!(
                        "rel {rel} column {}",
                        column.column
                    ))));
                };
                ctx.charge((t.rows as f64 / 256.0).max(1.0) * p.seq_page)?;
                let entry_rate = p.cpu_index_tuple
                    + p.random_page * p.heap_fetch_factor
                    + preds.len() as f64 * p.cpu_operator;
                let pass = |r: usize| {
                    preds
                        .iter()
                        .all(|pr| eval_pred(pr, t.columns[pr.column.column as usize][r]))
                };
                let (cols, emitted) =
                    self.ventry_scan(ctx, my_id, ix, &pass, &t.columns, entry_rate, store)?;
                Ok(VRel {
                    rels: vec![*rel],
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::HashJoin {
                build,
                probe,
                edges,
            } => {
                let b = self.veval(build, ctx, next_id, true)?;
                let pr = self.veval(probe, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (bkey, pkey) = self.key_offsets(&b.rels, &pr.rels, j0)?;
                let base = ctx.spent;
                let build_rate = p.cpu_tuple + p.hash_build;
                let bcol = &b.cols[bkey];
                // The build charge depends only on the row count, so the
                // ledger settles up front (identical event sequence — the
                // inserts emit no events) and the partitioned build runs
                // only if it fit the budget.
                charge_linear(ctx, base, build_rate, b.len)?;
                let table = JoinTable::build(self.mpar(b.len), bcol, b.len);
                let out_rels: Vec<RelIdx> = b.rels.iter().chain(&pr.rels).copied().collect();
                let lw: usize = b.rels.iter().map(|&x| self.ncols(x)).sum();
                let residuals = self.resolve_residuals(&out_rels, lw, &edges[1..])?;
                let pbase = ctx.spent;
                let mut cols = if store {
                    vec![Vec::new(); lw + pr.cols.len()]
                } else {
                    Vec::new()
                };
                let pcol = &pr.cols[pkey];
                let compute = |lo: usize, hi: usize| -> (u64, Vec<Vec<i64>>) {
                    let mut pairs: Vec<(u32, u32)> = Vec::new();
                    for (off, &v) in pcol[lo..hi].iter().enumerate() {
                        if let Some(bs) = table.get(v) {
                            let i = lo + off;
                            for &bi in bs {
                                if res_pass(&residuals, &b.cols, bi as usize, &pr.cols, i) {
                                    pairs.push((bi, i as u32));
                                }
                            }
                        }
                    }
                    let k = pairs.len() as u64;
                    let data = if store {
                        let mut d = vec![Vec::with_capacity(pairs.len()); lw + pr.cols.len()];
                        for (c, o) in b.cols.iter().zip(&mut d[..lw]) {
                            o.extend(pairs.iter().map(|&(bi, _)| c[bi as usize]));
                        }
                        for (c, o) in pr.cols.iter().zip(&mut d[lw..]) {
                            o.extend(pairs.iter().map(|&(_, pi)| c[pi as usize]));
                        }
                        d
                    } else {
                        Vec::new()
                    };
                    (k, data)
                };
                let par = self.mpar(pr.len);
                let ph = LinPhase {
                    base: pbase,
                    item_rate: p.hash_probe,
                    emit_rate: p.emit_tuple,
                };
                let emitted = drive_batches(
                    par,
                    ctx,
                    Some(my_id),
                    pr.len,
                    &ph,
                    compute,
                    |data| {
                        for (o, d) in cols.iter_mut().zip(data) {
                            o.extend(d);
                        }
                    },
                    |ctx, lo, hi, emitted| {
                        replay_rows(par, ctx, my_id, lo, hi, emitted, &ph, |i| {
                            let mut k = 0u64;
                            if let Some(bs) = table.get(pcol[i]) {
                                for &bi in bs {
                                    if res_pass(&residuals, &b.cols, bi as usize, &pr.cols, i) {
                                        k += 1;
                                    }
                                }
                            }
                            k
                        })
                    },
                )?;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: out_rels,
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::SortMergeJoin {
                left,
                right,
                edges,
                sort_left,
                sort_right,
            } => {
                let l = self.veval(left, ctx, next_id, true)?;
                let r = self.veval(right, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (lkey, rkey) = self.key_offsets(&l.rels, &r.rels, j0)?;
                if *sort_left {
                    let n = l.len.max(2) as f64;
                    ctx.charge(n * n.log2() * 2.0 * p.cpu_operator)?;
                }
                if *sort_right {
                    let n = r.len.max(2) as f64;
                    ctx.charge(n * n.log2() * 2.0 * p.cpu_operator)?;
                }
                // Stable argsort over the key column: a stable sort's output
                // permutation is unique, so the (possibly parallel) argsort
                // is the exact permutation the reference engine's
                // `sort_by_key` row sort applies.
                let lperm = par_stable_argsort(self.mpar(l.len), &l.cols[lkey][..l.len]);
                let rperm = par_stable_argsort(self.mpar(r.len), &r.cols[rkey][..r.len]);
                let lk: Vec<i64> = lperm.iter().map(|&x| l.cols[lkey][x as usize]).collect();
                let rk: Vec<i64> = rperm.iter().map(|&x| r.cols[rkey][x as usize]).collect();
                let out_rels: Vec<RelIdx> = l.rels.iter().chain(&r.rels).copied().collect();
                let lw: usize = l.rels.iter().map(|&x| self.ncols(x)).sum();
                let residuals = self.resolve_residuals(&out_rels, lw, &edges[1..])?;
                let base = ctx.spent;
                let step_rate = 2.0 * p.cpu_operator;
                let (ln, rn) = (lk.len(), rk.len());
                let (mut i, mut j) = (0usize, 0usize);
                let (mut steps, mut emitted) = (0u64, 0u64);
                // Checkpoint = merge state at the last successful settle.
                let (mut ci, mut cj, mut csteps, mut cemitted) = (0usize, 0usize, 0u64, 0u64);
                let mut pending: Vec<(u32, u32)> = Vec::new();
                let mut cols = if store {
                    vec![Vec::new(); lw + r.cols.len()]
                } else {
                    Vec::new()
                };
                while i < ln && j < rn {
                    steps += 1;
                    let (a, b) = (lk[i], rk[j]);
                    if a < b {
                        i += 1;
                    } else if a > b {
                        j += 1;
                    } else {
                        let i_end = i + lk[i..].iter().take_while(|&&x| x == a).count();
                        let j_end = j + rk[j..].iter().take_while(|&&x| x == a).count();
                        if residuals.is_empty() {
                            emitted += ((i_end - i) * (j_end - j)) as u64;
                            if store {
                                for &lp in &lperm[i..i_end] {
                                    for &rp in &rperm[j..j_end] {
                                        pending.push((lp, rp));
                                    }
                                }
                            }
                        } else {
                            for &lp in &lperm[i..i_end] {
                                for &rp in &rperm[j..j_end] {
                                    if res_pass(
                                        &residuals,
                                        &l.cols,
                                        lp as usize,
                                        &r.cols,
                                        rp as usize,
                                    ) {
                                        emitted += 1;
                                        if store {
                                            pending.push((lp, rp));
                                        }
                                    }
                                }
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                    if (steps - csteps) + (emitted - cemitted) >= BATCH as u64 {
                        let end = lin2(base, steps, step_rate, emitted, p.emit_tuple);
                        if end > ctx.budget {
                            return Err(self.smj_replay(
                                ctx, my_id, base, step_rate, &lk, &rk, &lperm, &rperm, &l.cols,
                                &r.cols, &residuals, ci, cj, csteps, cemitted,
                            ));
                        }
                        ctx.commit(end)?;
                        ctx.instr[my_id].output_tuples = emitted;
                        if store {
                            for (c, o) in l.cols.iter().zip(&mut cols[..lw]) {
                                o.extend(pending.iter().map(|&(li, _)| c[li as usize]));
                            }
                            for (c, o) in r.cols.iter().zip(&mut cols[lw..]) {
                                o.extend(pending.iter().map(|&(_, rj)| c[rj as usize]));
                            }
                            pending.clear();
                        }
                        ci = i;
                        cj = j;
                        csteps = steps;
                        cemitted = emitted;
                    }
                }
                if steps > csteps {
                    let end = lin2(base, steps, step_rate, emitted, p.emit_tuple);
                    if end > ctx.budget {
                        return Err(self.smj_replay(
                            ctx, my_id, base, step_rate, &lk, &rk, &lperm, &rperm, &l.cols,
                            &r.cols, &residuals, ci, cj, csteps, cemitted,
                        ));
                    }
                    ctx.commit(end)?;
                    ctx.instr[my_id].output_tuples = emitted;
                    if store {
                        for (c, o) in l.cols.iter().zip(&mut cols[..lw]) {
                            o.extend(pending.iter().map(|&(li, _)| c[li as usize]));
                        }
                        for (c, o) in r.cols.iter().zip(&mut cols[lw..]) {
                            o.extend(pending.iter().map(|&(_, rj)| c[rj as usize]));
                        }
                    }
                }
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: out_rels,
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::IndexNLJoin {
                outer,
                inner_rel,
                edges,
            } => {
                let o = self.veval(outer, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let t = self.db.table(self.query.relations[*inner_rel].table);
                let inner_preds = &self.query.relations[*inner_rel].selections;
                let (okey_rel, okey_col, ikey_col) = if o.rels.contains(&j0.left_rel) {
                    (j0.left_rel, j0.left_col, j0.right_col)
                } else {
                    (j0.right_rel, j0.right_col, j0.left_col)
                };
                let okey = self.offset(&o.rels, okey_rel, okey_col)?;
                let Some(ix) = t.indexes.get(&ikey_col.column) else {
                    return Err(Halt::Fault(PbError::UnindexedColumn(format!(
                        "rel {inner_rel} column {}",
                        ikey_col.column
                    ))));
                };
                let out_rels: Vec<RelIdx> = o.rels.iter().copied().chain([*inner_rel]).collect();
                let ow: usize = o.rels.iter().map(|&x| self.ncols(x)).sum();
                let residuals = self.resolve_residuals(&out_rels, ow, &edges[1..])?;
                let base = ctx.spent;
                let entry_rate = p.cpu_index_tuple + p.random_page * p.heap_fetch_factor;
                let mut cols = if store {
                    vec![Vec::new(); ow + t.columns.len()]
                } else {
                    Vec::new()
                };
                let okeys = &o.cols[okey];
                let compute = |oi: usize, matches: &mut Vec<u32>| -> u64 {
                    let key = okeys[oi];
                    let start = ix.partition_point(|&(v, _)| v < key);
                    let mut nprobe = 0u64;
                    for &(v, r) in &ix[start..] {
                        if v != key {
                            break;
                        }
                        nprobe += 1;
                        let r = r as usize;
                        if inner_preds
                            .iter()
                            .all(|pr| eval_pred(pr, t.columns[pr.column.column as usize][r]))
                            && res_pass(&residuals, &o.cols, oi, &t.columns, r)
                        {
                            matches.push(r as u32);
                        }
                    }
                    nprobe
                };
                let emitted = drive_items(
                    self.mpar(okeys.len()),
                    ctx,
                    my_id,
                    okeys.len(),
                    compute,
                    |looks, probed, emitted| {
                        lin3(
                            base,
                            looks,
                            p.index_lookup,
                            probed,
                            entry_rate,
                            emitted,
                            p.emit_tuple,
                        )
                    },
                    |oi, matches| {
                        if store {
                            for (c, out) in o.cols.iter().zip(&mut cols[..ow]) {
                                out.extend(std::iter::repeat_n(c[oi], matches.len()));
                            }
                            for (c, out) in t.columns.iter().zip(&mut cols[ow..]) {
                                out.extend(matches.iter().map(|&r| c[r as usize]));
                            }
                        }
                    },
                    |ctx, oi, mut probed, mut emitted| {
                        let key = okeys[oi];
                        let start = ix.partition_point(|&(v, _)| v < key);
                        let looks = oi as u64 + 1;
                        ctx.settle(lin3(
                            base,
                            looks,
                            p.index_lookup,
                            probed,
                            entry_rate,
                            emitted,
                            p.emit_tuple,
                        ))?;
                        for &(v, r) in &ix[start..] {
                            if v != key {
                                break;
                            }
                            probed += 1;
                            ctx.settle(lin3(
                                base,
                                looks,
                                p.index_lookup,
                                probed,
                                entry_rate,
                                emitted,
                                p.emit_tuple,
                            ))?;
                            let r = r as usize;
                            if !inner_preds
                                .iter()
                                .all(|pr| eval_pred(pr, t.columns[pr.column.column as usize][r]))
                            {
                                continue;
                            }
                            if res_pass(&residuals, &o.cols, oi, &t.columns, r) {
                                emitted += 1;
                                ctx.settle(lin3(
                                    base,
                                    looks,
                                    p.index_lookup,
                                    probed,
                                    entry_rate,
                                    emitted,
                                    p.emit_tuple,
                                ))?;
                                ctx.instr[my_id].output_tuples += 1;
                            }
                        }
                        Ok(())
                    },
                )?;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: out_rels,
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::BlockNLJoin {
                outer,
                inner,
                edges,
            } => {
                let o = self.veval(outer, ctx, next_id, true)?;
                let inn = self.veval(inner, ctx, next_id, true)?;
                let out_rels: Vec<RelIdx> = o.rels.iter().chain(&inn.rels).copied().collect();
                let ow: usize = o.rels.iter().map(|&x| self.ncols(x)).sum();
                let residuals = self.resolve_residuals(&out_rels, ow, edges)?;
                let base = ctx.spent;
                let pair_rate = p.cpu_operator * edges.len().max(1) as f64;
                let mut cols = if store {
                    vec![Vec::new(); ow + inn.cols.len()]
                } else {
                    Vec::new()
                };
                let inn_len = inn.len as u64;
                let compute = |oi: usize, matches: &mut Vec<u32>| -> u64 {
                    for ii in 0..inn.len {
                        if res_pass(&residuals, &o.cols, oi, &inn.cols, ii) {
                            matches.push(ii as u32);
                        }
                    }
                    0
                };
                let emitted = drive_items(
                    self.mpar(o.len),
                    ctx,
                    my_id,
                    o.len,
                    compute,
                    // The pairs counter advances `inn.len` per outer row, so
                    // at `items` processed rows it is `items * inn.len`.
                    |items, _c1, emitted| {
                        lin2(base, items * inn_len, pair_rate, emitted, p.emit_tuple)
                    },
                    |oi, matches| {
                        if store {
                            for (c, out) in o.cols.iter().zip(&mut cols[..ow]) {
                                out.extend(std::iter::repeat_n(c[oi], matches.len()));
                            }
                            for (c, out) in inn.cols.iter().zip(&mut cols[ow..]) {
                                out.extend(matches.iter().map(|&r| c[r as usize]));
                            }
                        }
                    },
                    |ctx, oi, _c1, mut emitted| {
                        let mut pairs_n = oi as u64 * inn_len;
                        for ii in 0..inn.len {
                            pairs_n += 1;
                            ctx.settle(lin2(base, pairs_n, pair_rate, emitted, p.emit_tuple))?;
                            if res_pass(&residuals, &o.cols, oi, &inn.cols, ii) {
                                emitted += 1;
                                ctx.settle(lin2(base, pairs_n, pair_rate, emitted, p.emit_tuple))?;
                                ctx.instr[my_id].output_tuples += 1;
                            }
                        }
                        Ok(())
                    },
                )?;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: out_rels,
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::AntiJoin { left, right, edges } => {
                let l = self.veval(left, ctx, next_id, true)?;
                let r = self.veval(right, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (lkey, rkey) = self.key_offsets(&l.rels, &r.rels, j0)?;
                let base = ctx.spent;
                let build_rate = p.cpu_tuple + p.hash_build;
                let rcol = &r.cols[rkey];
                charge_linear(ctx, base, build_rate, r.len)?;
                let keys: FastSet<i64> = par_key_set(self.mpar(r.len), rcol, r.len);
                let pbase = ctx.spent;
                let mut cols = if store {
                    vec![Vec::new(); l.cols.len()]
                } else {
                    Vec::new()
                };
                let lcol = &l.cols[lkey];
                let compute = |lo: usize, hi: usize| -> (u64, Vec<Vec<i64>>) {
                    let mut sel: Vec<u32> = Vec::with_capacity(hi - lo);
                    for (off, v) in lcol[lo..hi].iter().enumerate() {
                        if !keys.contains(v) {
                            sel.push((lo + off) as u32);
                        }
                    }
                    let k = sel.len() as u64;
                    let data = if store {
                        let mut d = vec![Vec::with_capacity(sel.len()); l.cols.len()];
                        gather(&l.cols, &sel, &mut d);
                        d
                    } else {
                        Vec::new()
                    };
                    (k, data)
                };
                let par = self.mpar(l.len);
                let ph = LinPhase {
                    base: pbase,
                    item_rate: p.hash_probe,
                    emit_rate: p.emit_tuple,
                };
                let emitted = drive_batches(
                    par,
                    ctx,
                    Some(my_id),
                    l.len,
                    &ph,
                    compute,
                    |data| {
                        for (o, d) in cols.iter_mut().zip(data) {
                            o.extend(d);
                        }
                    },
                    |ctx, lo, hi, emitted| {
                        replay_rows(par, ctx, my_id, lo, hi, emitted, &ph, |i| {
                            u64::from(!keys.contains(&lcol[i]))
                        })
                    },
                )?;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: l.rels,
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::SemiJoin { left, right, edges } => {
                // Anti-join kernel with the membership test un-negated.
                let l = self.veval(left, ctx, next_id, true)?;
                let r = self.veval(right, ctx, next_id, true)?;
                let j0 = &self.query.joins[edges[0]];
                let (lkey, rkey) = self.key_offsets(&l.rels, &r.rels, j0)?;
                let base = ctx.spent;
                let build_rate = p.cpu_tuple + p.hash_build;
                let rcol = &r.cols[rkey];
                charge_linear(ctx, base, build_rate, r.len)?;
                let keys: FastSet<i64> = par_key_set(self.mpar(r.len), rcol, r.len);
                let pbase = ctx.spent;
                let mut cols = if store {
                    vec![Vec::new(); l.cols.len()]
                } else {
                    Vec::new()
                };
                let lcol = &l.cols[lkey];
                let compute = |lo: usize, hi: usize| -> (u64, Vec<Vec<i64>>) {
                    let mut sel: Vec<u32> = Vec::with_capacity(hi - lo);
                    for (off, v) in lcol[lo..hi].iter().enumerate() {
                        if keys.contains(v) {
                            sel.push((lo + off) as u32);
                        }
                    }
                    let k = sel.len() as u64;
                    let data = if store {
                        let mut d = vec![Vec::with_capacity(sel.len()); l.cols.len()];
                        gather(&l.cols, &sel, &mut d);
                        d
                    } else {
                        Vec::new()
                    };
                    (k, data)
                };
                let par = self.mpar(l.len);
                let ph = LinPhase {
                    base: pbase,
                    item_rate: p.hash_probe,
                    emit_rate: p.emit_tuple,
                };
                let emitted = drive_batches(
                    par,
                    ctx,
                    Some(my_id),
                    l.len,
                    &ph,
                    compute,
                    |data| {
                        for (o, d) in cols.iter_mut().zip(data) {
                            o.extend(d);
                        }
                    },
                    |ctx, lo, hi, emitted| {
                        replay_rows(par, ctx, my_id, lo, hi, emitted, &ph, |i| {
                            u64::from(keys.contains(&lcol[i]))
                        })
                    },
                )?;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: l.rels,
                    cols,
                    len: if store { emitted as usize } else { 0 },
                })
            }
            PlanNode::HashAggregate { input } => {
                let i = self.veval(input, ctx, next_id, true)?;
                let base = ctx.spent;
                let in_rate = p.cpu_tuple + p.hash_build;
                let key_offs: Vec<usize> = self
                    .query
                    .group_by
                    .iter()
                    .map(|&(r, c)| self.offset(&i.rels, r, c))
                    .collect::<Result<_, _>>()?;
                // The input charge depends only on the row count: settle the
                // ledger up front (identical event sequence), then count
                // groups — in parallel when the input clears the morsel
                // gate. The merged maps replicate the serial maps' distinct-
                // key insertion sequence (global first-occurrence order), so
                // their layout and iteration order are bit-identical to a
                // serial build (see `morsel::par_group_counts`).
                charge_linear(ctx, base, in_rate, i.len)?;
                // Group keys: the general path hashes a Vec<i64> per row;
                // zero- and one-column keys (the common shapes) skip that.
                let mut groups: FastMap<Vec<i64>, i64> = FastMap::default();
                let mut groups1: FastMap<i64, i64> = FastMap::default();
                match key_offs.as_slice() {
                    [] => {
                        if i.len > 0 {
                            *groups.entry(Vec::new()).or_insert(0) += i.len as i64;
                        }
                    }
                    [c] => {
                        let col = &i.cols[*c];
                        par_group_counts(self.mpar(i.len), i.len, |row| col[row], &mut groups1);
                    }
                    _ => {
                        par_group_counts(
                            self.mpar(i.len),
                            i.len,
                            |row| -> Vec<i64> {
                                key_offs.iter().map(|&c| i.cols[c][row]).collect()
                            },
                            &mut groups,
                        );
                    }
                }
                for (k, c) in groups1 {
                    groups.insert(vec![k], c);
                }
                let gbase = ctx.spent;
                let ng = groups.len() as u64;
                let mut emitted = 0u64;
                let mut cols = if store {
                    vec![Vec::new(); key_offs.len() + 1]
                } else {
                    Vec::new()
                };
                let mut giter = groups.iter();
                while emitted < ng {
                    let chunk = (ng - emitted).min(BATCH as u64);
                    let end = lin2(gbase, emitted + chunk, p.emit_tuple, 0, 0.0);
                    if end > ctx.budget {
                        for g in emitted + 1..=ng {
                            ctx.settle(lin2(gbase, g, p.emit_tuple, 0, 0.0))?;
                            ctx.instr[my_id].output_tuples += 1;
                        }
                        return Err(replay_anomaly());
                    }
                    ctx.commit(end)?;
                    if store {
                        for _ in 0..chunk {
                            let Some((key, count)) = giter.next() else {
                                return Err(Halt::Fault(PbError::Internal(
                                    "group under-count".into(),
                                )));
                            };
                            for (c, v) in cols.iter_mut().zip(key.iter().chain([count])) {
                                c.push(*v);
                            }
                        }
                    }
                    emitted += chunk;
                    ctx.instr[my_id].output_tuples = emitted;
                }
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: Vec::new(),
                    cols,
                    len: if store { ng as usize } else { 0 },
                })
            }
            PlanNode::Spill { input } => {
                let i = self.veval(input, ctx, next_id, false)?;
                let discarded = ctx.instr[my_id + 1].output_tuples as f64;
                ctx.charge(discarded * p.cpu_tuple)?;
                ctx.instr[my_id].output_tuples = 0;
                ctx.instr[my_id].complete = true;
                Ok(VRel {
                    rels: i.rels,
                    cols: Vec::new(),
                    len: 0,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use pb_catalog::tpch;
    use pb_cost::CostModel;
    use pb_plan::{CmpOp, QueryBuilder, QuerySpec, SelSpec};

    fn setup() -> (Database, QuerySpec, CostModel) {
        let cat = tpch::catalog(0.005);
        let db = Database::generate(&cat, 7, &[]).expect("generate");
        let mut qb = QueryBuilder::new(&cat, "vq");
        let p = qb.rel("part");
        let l = qb.rel("lineitem");
        qb.select(
            p,
            "p_retailprice",
            CmpOp::Lt,
            1400.0,
            SelSpec::ErrorProne(0),
        );
        qb.join(p, "p_partkey", l, "l_partkey", SelSpec::ErrorProne(1));
        (db, qb.build(), CostModel::postgresish())
    }

    #[test]
    fn vectorized_merge_join_respects_store_flag() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let plan = PlanNode::SortMergeJoin {
            left: Box::new(PlanNode::SeqScan { rel: 0 }),
            right: Box::new(PlanNode::SeqScan { rel: 1 }),
            edges: vec![0],
            sort_left: true,
            sort_right: true,
        };
        let inert = FaultInjector::none();
        let mut ctx = Ctx {
            spent: 0.0,
            budget: f64::INFINITY,
            instr: vec![NodeStats::default(); plan.size()],
            faults: &inert,
            resume: None,
            reused: 0.0,
            cancel: None,
        };
        let mut next_id = 0usize;
        let rel = eng
            .veval(&plan, &mut ctx, &mut next_id, false)
            .ok()
            .unwrap();
        assert!(rel.cols.is_empty() && rel.len == 0);
        assert!(ctx.instr[0].output_tuples > 0);
    }

    #[test]
    fn vectorized_matches_tuple_on_all_operators() {
        let (db, q, m) = setup();
        let eng = Engine::new(&db, &q, &m.p);
        let plans = [
            PlanNode::HashJoin {
                build: Box::new(PlanNode::SeqScan { rel: 0 }),
                probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
            },
            PlanNode::SortMergeJoin {
                left: Box::new(PlanNode::IndexScan { rel: 0, sel_idx: 0 }),
                right: Box::new(PlanNode::SeqScan { rel: 1 }),
                edges: vec![0],
                sort_left: true,
                sort_right: true,
            },
            PlanNode::IndexNLJoin {
                outer: Box::new(PlanNode::SeqScan { rel: 0 }),
                inner_rel: 1,
                edges: vec![0],
            },
            PlanNode::Spill {
                input: Box::new(PlanNode::HashJoin {
                    build: Box::new(PlanNode::SeqScan { rel: 0 }),
                    probe: Box::new(PlanNode::SeqScan { rel: 1 }),
                    edges: vec![0],
                }),
            },
        ];
        for plan in &plans {
            let full = eng.execute_tuple(plan, f64::INFINITY);
            assert_eq!(full, eng.execute_vectorized(plan, f64::INFINITY));
            for frac in [0.999, 0.7, 0.35, 0.1, 0.01, 1e-4] {
                let b = full.cost() * frac;
                assert_eq!(
                    eng.execute_tuple(plan, b),
                    eng.execute_vectorized(plan, b),
                    "divergence at fraction {frac}"
                );
            }
        }
    }
}
