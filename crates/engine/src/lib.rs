//! Execution engine over generated in-memory data.
//!
//! The cost-unit simulator (`pb-executor`) is sufficient for the paper's
//! grid metrics, which are defined in optimizer cost units. This crate goes
//! further and validates the run-time machinery end to end on real tuples
//! (the paper's Section 6.7 experiment): it generates data conforming to the
//! catalog statistics — with optional *correlation overrides* that
//! manufacture the AVI estimation errors the experiment needs — and executes
//! physical plans with:
//!
//! * per-node tuple counters (PostgreSQL `Instrumentation` analogue),
//! * cost-limited execution: work is charged in the optimizer's cost units
//!   and the run aborts mid-operator once the budget is exhausted,
//! * spill directives that count and discard an error node's output,
//! * observed-selectivity extraction from the counters (Section 5.2).
//!
//! Two execution paths share one budget ledger ([`ledger`]): the vectorized
//! columnar engine ([`vec_exec`], the default behind [`Engine::execute`])
//! and the tuple-at-a-time reference ([`Engine::execute_tuple`]). Their
//! outcomes — cost, rows, instrumentation, and abort point under finite
//! budgets — are bit-identical by construction.

pub mod data;
pub mod exec;
mod ledger;
mod morsel;
mod vec_exec;

pub use data::{ColumnOverride, Database, TableData};
pub use exec::{Engine, EngineOutcome, Instrumentation, NodeStats};
pub use vec_exec::ResumeBook;
