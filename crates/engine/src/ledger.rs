//! Shared budget ledger for the two execution engines.
//!
//! Both the tuple-at-a-time reference engine ([`crate::exec`]) and the
//! vectorized engine ([`crate::vec_exec`]) account work through this module
//! and only through it. Every charge is either a one-off ([`Ctx::charge`]:
//! scan setup, sorts, spill penalties) or part of a *linear phase*: a
//! closed-form `base + Σ counterᵢ·rateᵢ` value computed by [`lin2`]/[`lin3`]
//! and installed with [`Ctx::settle`]. The tuple engine settles after every
//! counter increment; the vectorized engine settles once per batch with the
//! same closed form and the same counters — so both observe bit-identical
//! `spent` values at every shared program point.
//!
//! Why aborts stay exact: all rates are non-negative, so the closed form is
//! weakly monotone in each counter even under floating-point rounding
//! (`c as f64` is monotone in `c`, `c·r` rounds monotonically for `r ≥ 0`,
//! and `x + t` rounds monotonically in `t`). A batch whose settled end value
//! is within budget therefore cannot have crossed it at any interior tuple,
//! and when the end value exceeds the budget the batch is replayed
//! tuple-at-a-time — the replay's final settle recomputes the very value
//! that crossed, so the replay is guaranteed to abort, at the identical
//! tuple, with the identical instrumentation and the identical clamped cost
//! the reference engine produces.

use crate::exec::NodeStats;

/// Rows per vectorized batch — the cadence of budget settlement and the
/// bound on wasted work past an abort point.
pub(crate) const BATCH: usize = 4096;

/// Budget exhausted mid-execution.
pub(crate) struct Abort;

/// Execution context: the ledger plus per-node counters.
pub(crate) struct Ctx {
    pub spent: f64,
    pub budget: f64,
    pub instr: Vec<NodeStats>,
}

impl Ctx {
    /// Add a one-off charge (operator setup, sorts, spill penalties).
    #[inline]
    pub fn charge(&mut self, c: f64) -> Result<(), Abort> {
        self.spent += c;
        if self.spent > self.budget {
            self.spent = self.budget;
            Err(Abort)
        } else {
            Ok(())
        }
    }

    /// Install an absolute ledger value computed by [`lin2`]/[`lin3`].
    #[inline]
    pub fn settle(&mut self, s: f64) -> Result<(), Abort> {
        if s > self.budget {
            self.spent = self.budget;
            Err(Abort)
        } else {
            self.spent = s;
            Ok(())
        }
    }
}

/// Two-counter linear phase. The left-to-right evaluation order is part of
/// the contract: both engines must produce bit-identical values.
#[inline]
pub(crate) fn lin2(base: f64, c0: u64, r0: f64, c1: u64, r1: f64) -> f64 {
    (base + c0 as f64 * r0) + c1 as f64 * r1
}

/// Three-counter linear phase (index nested-loops: lookups, probed entries,
/// emitted tuples advance independently within one phase).
#[inline]
pub(crate) fn lin3(base: f64, c0: u64, r0: f64, c1: u64, r1: f64, c2: u64, r2: f64) -> f64 {
    ((base + c0 as f64 * r0) + c1 as f64 * r1) + c2 as f64 * r2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settle_clamps_to_budget_on_abort() {
        let mut ctx = Ctx {
            spent: 0.0,
            budget: 10.0,
            instr: Vec::new(),
        };
        assert!(ctx.settle(9.5).is_ok());
        assert_eq!(ctx.spent, 9.5);
        assert!(ctx.settle(10.0 + 1e-9).is_err());
        assert_eq!(ctx.spent, 10.0);
    }

    #[test]
    fn lin_phases_are_monotone_in_each_counter() {
        let base = 123.456;
        let (r0, r1, r2) = (0.01, 0.005, 1e-7);
        let mut prev = f64::NEG_INFINITY;
        for c in 0..10_000u64 {
            let v = lin3(base, c, r0, c / 2, r1, c / 3, r2);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn lin2_equals_lin3_with_zero_third_term() {
        // The engines rely on phases with an unused counter charging nothing.
        assert_eq!(lin2(5.0, 3, 0.5, 0, 0.0), (5.0 + 3.0 * 0.5));
    }
}
