//! Shared budget ledger for the two execution engines.
//!
//! Both the tuple-at-a-time reference engine ([`crate::exec`]) and the
//! vectorized engine ([`crate::vec_exec`]) account work through this module
//! and only through it. Every charge is either a one-off ([`Ctx::charge`]:
//! scan setup, sorts, spill penalties) or part of a *linear phase*: a
//! closed-form `base + Σ counterᵢ·rateᵢ` value computed by [`lin2`]/[`lin3`]
//! and installed with [`Ctx::settle`]. The tuple engine settles after every
//! counter increment; the vectorized engine settles once per batch with the
//! same closed form and the same counters — so both observe bit-identical
//! `spent` values at every shared program point.
//!
//! Why aborts stay exact: all rates are non-negative, so the closed form is
//! weakly monotone in each counter even under floating-point rounding
//! (`c as f64` is monotone in `c`, `c·r` rounds monotonically for `r ≥ 0`,
//! and `x + t` rounds monotonically in `t`). A batch whose settled end value
//! is within budget therefore cannot have crossed it at any interior tuple,
//! and when the end value exceeds the budget the batch is replayed
//! tuple-at-a-time — the replay's final settle recomputes the very value
//! that crossed, so the replay is guaranteed to abort, at the identical
//! tuple, with the identical instrumentation and the identical clamped cost
//! the reference engine produces.
//!
//! Fault injection enters here and only here: every ledger event consults
//! the context's [`FaultInjector`]. An inert injector short-circuits before
//! touching any arithmetic, keeping the no-fault paths bit-identical.

use pb_faults::{CancelToken, FaultInjector, PbError};

use crate::exec::NodeStats;

/// Rows per vectorized batch — the cadence of budget settlement and the
/// bound on wasted work past an abort point.
pub(crate) const BATCH: usize = 4096;

/// Why execution stopped early: the budget ran out (the normal, accounted
/// outcome the bouquet drivers rely on) or an injected/real fault fired.
pub(crate) enum Halt {
    Abort,
    Fault(PbError),
}

/// The replay of an over-budget batch ran to completion without aborting —
/// the ledger's monotonicity argument (or an injected ledger fault) has been
/// violated; surface it as a typed error instead of dying.
pub(crate) fn replay_anomaly() -> Halt {
    Halt::Fault(PbError::MonotonicityViolation(
        "batch-end ledger value exceeded the budget but replay completed".into(),
    ))
}

/// Execution context: the ledger plus per-node counters.
pub(crate) struct Ctx<'f> {
    pub spent: f64,
    pub budget: f64,
    pub instr: Vec<NodeStats>,
    pub faults: &'f FaultInjector,
    /// Checkpoint book for resumable executions (`None` on the plain paths,
    /// which stay bit-identical to the pre-resume code). Lookups and
    /// captures happen at subtree boundaries in the vectorized engine.
    pub resume: Option<&'f mut crate::vec_exec::ResumeBook>,
    /// Cost units fast-forwarded from checkpoints instead of re-executed.
    /// Part of `spent` (the outcome stays restart-identical); the substrate
    /// subtracts it to charge only the un-executed suffix.
    pub reused: f64,
    /// Cooperative cancellation token (`None` on the plain paths, which
    /// stay bit-identical to the pre-cancellation code). Polled at batch
    /// commits and one-off charges — coarse enough to stay off the
    /// per-tuple hot path, fine enough to bound post-trip work by one
    /// batch. Completed-subtree checkpoints captured before the trip
    /// survive, so a resubmitted execution resumes instead of restarting.
    pub cancel: Option<&'f CancelToken>,
}

impl Ctx<'_> {
    /// Poll the cancellation token; `Some` holds the halt to surface.
    #[inline]
    fn cancelled(&self) -> Option<Halt> {
        self.cancel
            .and_then(CancelToken::cancel_error)
            .map(Halt::Fault)
    }

    /// Fault hook shared by every ledger event: may scale the prospective
    /// value (transient over-charge) or kill the operator outright.
    #[inline]
    fn taxed(&mut self, v: f64) -> Result<f64, Halt> {
        if let Some(e) = self.faults.tuple_failure("engine:ledger") {
            self.spent = self.spent.min(self.budget);
            return Err(Halt::Fault(e));
        }
        Ok(v * self.faults.ledger_factor())
    }

    /// Add a one-off charge (operator setup, sorts, spill penalties).
    #[inline]
    pub fn charge(&mut self, c: f64) -> Result<(), Halt> {
        if let Some(h) = self.cancelled() {
            return Err(h);
        }
        let c = if self.faults.is_active() {
            self.taxed(c)?
        } else {
            c
        };
        self.spent += c;
        if self.spent > self.budget {
            self.spent = self.budget;
            Err(Halt::Abort)
        } else {
            Ok(())
        }
    }

    /// Install an absolute ledger value computed by [`lin2`]/[`lin3`].
    #[inline]
    pub fn settle(&mut self, s: f64) -> Result<(), Halt> {
        let s = if self.faults.is_active() {
            self.taxed(s)?
        } else {
            s
        };
        if s > self.budget {
            self.spent = self.budget;
            Err(Halt::Abort)
        } else {
            self.spent = s;
            Ok(())
        }
    }

    /// Batch-end settlement for the vectorized path. The caller has already
    /// verified the raw closed-form value fits the budget, so with an inert
    /// injector this is a plain store; armed faults route through
    /// [`Ctx::settle`] and may abort or fail the batch.
    #[inline]
    pub fn commit(&mut self, end: f64) -> Result<(), Halt> {
        if let Some(h) = self.cancelled() {
            // The batch's work happened; charge it (clamped) before
            // surfacing the cancellation so spend accounting stays honest.
            self.spent = end.min(self.budget);
            return Err(h);
        }
        if self.faults.is_active() {
            self.settle(end)
        } else {
            self.spent = end;
            Ok(())
        }
    }
}

/// Two-counter linear phase. The left-to-right evaluation order is part of
/// the contract: both engines must produce bit-identical values.
#[inline]
pub(crate) fn lin2(base: f64, c0: u64, r0: f64, c1: u64, r1: f64) -> f64 {
    (base + c0 as f64 * r0) + c1 as f64 * r1
}

/// Three-counter linear phase (index nested-loops: lookups, probed entries,
/// emitted tuples advance independently within one phase).
#[inline]
pub(crate) fn lin3(base: f64, c0: u64, r0: f64, c1: u64, r1: f64, c2: u64, r2: f64) -> f64 {
    ((base + c0 as f64 * r0) + c1 as f64 * r1) + c2 as f64 * r2
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_faults::{FaultKind, FaultPlan, Trigger};

    fn ctx(faults: &FaultInjector) -> Ctx<'_> {
        Ctx {
            spent: 0.0,
            budget: 10.0,
            instr: Vec::new(),
            faults,
            resume: None,
            reused: 0.0,
            cancel: None,
        }
    }

    #[test]
    fn settle_clamps_to_budget_on_abort() {
        let inert = FaultInjector::none();
        let mut ctx = ctx(&inert);
        assert!(ctx.settle(9.5).is_ok());
        assert_eq!(ctx.spent, 9.5);
        assert!(matches!(ctx.settle(10.0 + 1e-9), Err(Halt::Abort)));
        assert_eq!(ctx.spent, 10.0);
    }

    #[test]
    fn operator_failure_fires_on_nth_ledger_event() {
        let plan = FaultPlan::new(1).with(
            FaultKind::OperatorFailure { waste_frac: 0.0 },
            Trigger::Nth(3),
        );
        let inj = FaultInjector::new(&plan);
        let mut ctx = ctx(&inj);
        assert!(ctx.settle(1.0).is_ok());
        assert!(ctx.settle(2.0).is_ok());
        match ctx.settle(3.0) {
            Err(Halt::Fault(PbError::OperatorFailure { .. })) => {}
            _ => panic!("third ledger event should fault"),
        }
        // Spend stays clamped within budget: no double-charging on faults.
        assert!(ctx.spent <= ctx.budget);
    }

    #[test]
    fn ledger_overcharge_can_force_an_abort() {
        let plan = FaultPlan::new(1).with(
            FaultKind::LedgerOverCharge { factor: 100.0 },
            Trigger::Nth(2),
        );
        let inj = FaultInjector::new(&plan);
        let mut ctx = ctx(&inj);
        assert!(ctx.settle(0.5).is_ok());
        // 0.6 × 100 > budget ⇒ abort with spend clamped.
        assert!(matches!(ctx.settle(0.6), Err(Halt::Abort)));
        assert_eq!(ctx.spent, 10.0);
    }

    #[test]
    fn tripped_token_halts_commit_with_work_charged() {
        let inert = FaultInjector::none();
        let tok = CancelToken::new();
        let mut c = ctx(&inert);
        c.cancel = Some(&tok);
        assert!(c.commit(3.0).is_ok());
        tok.cancel();
        match c.commit(4.0) {
            Err(Halt::Fault(PbError::Cancelled(_))) => {}
            _ => panic!("commit after cancel must surface Cancelled"),
        }
        // The interrupted batch's work is still charged, clamped to budget.
        assert_eq!(c.spent, 4.0);
        match c.charge(1.0) {
            Err(Halt::Fault(PbError::Cancelled(_))) => {}
            _ => panic!("charge after cancel must surface Cancelled"),
        }
    }

    #[test]
    fn commit_is_a_plain_store_when_inert() {
        let inert = FaultInjector::none();
        let mut ctx = ctx(&inert);
        assert!(ctx.commit(7.25).is_ok());
        assert_eq!(ctx.spent.to_bits(), 7.25f64.to_bits());
    }

    #[test]
    fn lin_phases_are_monotone_in_each_counter() {
        let base = 123.456;
        let (r0, r1, r2) = (0.01, 0.005, 1e-7);
        let mut prev = f64::NEG_INFINITY;
        for c in 0..10_000u64 {
            let v = lin3(base, c, r0, c / 2, r1, c / 3, r2);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn lin2_equals_lin3_with_zero_third_term() {
        // The engines rely on phases with an unused counter charging nothing.
        assert_eq!(lin2(5.0, 3, 0.5, 0, 0.0), (5.0 + 3.0 * 0.5));
    }
}
